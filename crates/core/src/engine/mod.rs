//! # The unified STUC engine
//!
//! One façade over every uncertain representation and every probability
//! back-end in the workspace. The paper's claim is that a *single*
//! structural pipeline — instance → tree decomposition → automaton/lineage →
//! circuit → weighted model counting — uniformly covers tuple-independent
//! instances, c-/pc-/pcc-instances and probabilistic XML; this module is
//! that uniformity as an API:
//!
//! * [`Representation`] — what the engine needs from a representation
//!   (structure graph, lineage constructor, weights, identity). Implemented
//!   by `TidInstance`, `CInstance`, `PcInstance`, `PccInstance` and
//!   `PrXmlDocument`.
//! * [`Backend`] — one probability strategy. Four implementations:
//!   [`SafePlanBackend`], [`TreewidthWmcBackend`], [`DpllBackend`],
//!   [`EnumerationBackend`].
//! * [`Engine`] / [`EngineBuilder`] — configuration (heuristic, width
//!   budget, back-end policy, batch worker count) plus two fingerprint-keyed
//!   caches: structure decompositions per instance, and compiled lineage
//!   circuits per `(instance, query)` pair. [`Engine::evaluate`] is the
//!   single-query entry point; it returns an [`EvaluationReport`] naming the
//!   back-end that actually ran, the decomposition width, the lineage gate
//!   count and the wall time.
//! * [`Engine::evaluate_batch`] — the same pipeline over a whole query
//!   batch at once: a scoped-thread worker pool shares both caches and
//!   returns a [`BatchReport`] of per-query reports plus aggregate
//!   cache-hit and thread statistics.
//! * [`Engine::reevaluate_with_weights`] — the what-if fast path: re-runs a
//!   previously evaluated query under a different weight table, reusing the
//!   cached compiled lineage so only the counting sweep is paid.
//! * [`Engine::evaluate_text`] — the textual front-end (`stuc-lang`): a
//!   datalog/UCQ program is parsed, safety-checked and lowered to signed
//!   sums of conjunctive queries, and a cost model routes each goal to the
//!   safe plan or the compiled circuit, recorded in
//!   [`EvaluationReport::route`].
//! * [`Engine::marginals`] / [`Engine::sample_worlds`] /
//!   [`Engine::most_probable_world`] — the posterior-inference modes
//!   (`stuc-infer`): all-fact marginals in one backward sweep, exact world
//!   sampling by top-down descent, and max-product most-probable-world.
//!   All three run on the same cached compiled lineage as the counting
//!   modes and return an [`InferenceReport`].
//! * [`StucError`] — the single error enum every per-crate error converts
//!   into.
//!
//! ## Automatic strategy selection
//!
//! Under [`BackendPolicy::Auto`] (the default), [`Engine::evaluate`]:
//!
//! 1. tries the **safe plan** when the representation offers an extensional
//!    fast path (TID instances) and the query is hierarchical and
//!    self-join-free — no circuit is built at all;
//! 2. otherwise builds the lineage circuit (decomposition-guided automaton
//!    run for TIDs, match enumeration or shared-annotation extension for the
//!    other formalisms) and runs **treewidth WMC** when the circuit's
//!    estimated width fits the budget;
//! 3. otherwise falls back to **DPLL**, which assumes nothing about width.
//!
//! Every decision is recorded in [`EvaluationReport::notes`].
//!
//! ```
//! use stuc_core::engine::Engine;
//! use stuc_data::tid::TidInstance;
//! use stuc_query::cq::ConjunctiveQuery;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a", "b"], 0.5);
//! tid.add_fact_named("R", &["b", "c"], 0.5);
//! let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
//!
//! let engine = Engine::new();
//! let report = engine.evaluate(&tid, &query).unwrap();
//! assert!((report.probability - 0.25).abs() < 1e-9);
//! println!("computed by {}", report.backend_name());
//! ```

pub mod backend;
pub mod batch;
pub mod cache;
pub mod error;
pub mod explain;
pub(crate) mod metrics;
pub mod report;
pub mod representation;
pub mod text;
pub mod update;

pub use backend::{
    Backend, DpllBackend, EnumerationBackend, EvaluationTask, SafePlanBackend, TreewidthWmcBackend,
};
pub use cache::{CacheCounters, EngineCacheStats};
pub use error::StucError;
pub use explain::{
    CacheExplanation, CacheSideExplanation, CircuitExplanation, ExplainOutcome, QueryExplanation,
    RouteExplanation, SafePlanEligibility, SweepPlanStats,
};
pub use report::{BackendKind, BackendPolicy, BatchReport, EvaluationReport};
pub use representation::{ExtensionalInput, LineageOutcome, ReprKind, Representation};
pub use stuc_fault::{BudgetError, CancelHandle, EvalBudget};
pub use stuc_incr::{Delta, DeltaOp, Updatable, UpdateLog};
pub use stuc_infer::{
    InferError, InferenceReport, Marginals, MostProbableWorld, SampledWorlds, World, WorldSampler,
};
pub use stuc_obs::timer::{Stage, StageTimings};
pub use text::{GoalEvaluation, TextEvaluation};
pub use update::UpdateReport;

use cache::ShardedCache;
use metrics::{decomposition_cache_metrics, engine_metrics, lineage_cache_metrics};
use representation::{fingerprint_debug, fingerprint_debug_pair_with, FNV_OFFSET_BASIS};
use std::sync::Arc;
use std::time::Duration;
use stuc_circuit::circuit::Circuit;
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::weights::Weights;
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::TreeDecomposition;
use stuc_obs::timer::{StageRecorder, Stopwatch};
use stuc_obs::{slowlog, trace};
use stuc_query::safe::is_hierarchical;

/// Builder for [`Engine`]: heuristic, width budget, back-end policy and
/// cache behaviour.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    heuristic: EliminationHeuristic,
    width_budget: usize,
    policy: BackendPolicy,
    cache_decompositions: bool,
    cache_lineages: bool,
    cache_capacity: usize,
    cache_shards: usize,
    batch_threads: usize,
    dpll_max_branches: u64,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            heuristic: EliminationHeuristic::MinDegree,
            width_budget: 22,
            policy: BackendPolicy::Auto,
            cache_decompositions: true,
            cache_lineages: true,
            cache_capacity: 1024,
            cache_shards: cache::DEFAULT_SHARDS,
            batch_threads: 0,
            dpll_max_branches: DpllBackend::default().max_branches,
        }
    }
}

impl EngineBuilder {
    /// Elimination heuristic for structure and circuit decompositions.
    pub fn heuristic(mut self, heuristic: EliminationHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Bag-size budget for the treewidth back-end; wider circuits make Auto
    /// fall back to DPLL (a fixed treewidth policy fails instead).
    pub fn width_budget(mut self, budget: usize) -> Self {
        self.width_budget = budget;
        self
    }

    /// Back-end selection policy (default: [`BackendPolicy::Auto`]).
    pub fn policy(mut self, policy: BackendPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(BackendPolicy::Fixed(kind))`.
    pub fn backend(self, kind: BackendKind) -> Self {
        self.policy(BackendPolicy::Fixed(kind))
    }

    /// Branch budget of the DPLL back-end.
    pub fn dpll_max_branches(mut self, budget: u64) -> Self {
        self.dpll_max_branches = budget;
        self
    }

    /// Disables the fingerprint-keyed decomposition cache.
    pub fn without_decomposition_cache(mut self) -> Self {
        self.cache_decompositions = false;
        self
    }

    /// Disables the compiled-lineage cache: every evaluation rebuilds the
    /// lineage circuit, and [`Engine::reevaluate_with_weights`] loses its
    /// fast path (it still answers correctly, it just recompiles).
    pub fn without_lineage_cache(mut self) -> Self {
        self.cache_lineages = false;
        self
    }

    /// Maximum number of entries in each engine cache (decompositions,
    /// compiled lineages); default 1024. When a cache is full, inserting a
    /// new entry evicts the **oldest-inserted** one first (FIFO), so
    /// long-running engines serving evolving instances stay memory-bounded
    /// without manual [`Engine::clear_cache`] calls and churn cannot evict
    /// what was just cached. A capacity of 0 disables caching.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Number of lock shards in each engine cache (default 16). More shards
    /// means concurrent readers and writers on *different* fingerprints are
    /// less likely to touch the same lock; the capacity bound stays global
    /// regardless of the shard count. Clamped to at least 1.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Number of worker threads for [`Engine::evaluate_batch`]; `0` (the
    /// default) uses [`std::thread::available_parallelism`]. The count is
    /// always additionally capped by the batch size.
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = threads;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Engine {
        // A disabled cache is a capacity-0 cache: same no-storage behaviour,
        // one code path.
        let decomposition_capacity = if self.cache_decompositions {
            self.cache_capacity
        } else {
            0
        };
        let lineage_capacity = if self.cache_lineages {
            self.cache_capacity
        } else {
            0
        };
        let shards = self.cache_shards;
        Engine {
            config: self,
            cache: ShardedCache::with_metrics(
                decomposition_capacity,
                shards,
                decomposition_cache_metrics(),
            ),
            lineage_cache: ShardedCache::with_metrics(
                lineage_capacity,
                shards,
                lineage_cache_metrics(),
            ),
        }
    }
}

/// The unified evaluation engine: one `evaluate` call over every uncertain
/// representation, with pluggable and auto-selected back-ends. See the
/// [module docs](self) for the selection rules.
///
/// The engine is `Send + Sync` and cheaply shareable behind an
/// `Arc<Engine>`: both caches are [sharded, clone-on-read maps](cache)
/// whose hot path (a warm hit) takes only one shard's read lock for the
/// duration of an `Arc` clone, and whose miss path never holds any lock
/// across compilation — workers compile privately and publish under
/// first-writer-wins. [`Engine::evaluate_batch`] and the `stuc-serve`
/// worker pool both hammer one engine from many threads this way;
/// [`Engine::cache_stats`] exposes hit/miss counters so tests can prove
/// the sharing happened.
#[derive(Debug)]
pub struct Engine {
    config: EngineBuilder,
    /// Decompositions of structure graphs, keyed by representation
    /// fingerprint + heuristic. Entries are validated against the structure
    /// graph before reuse, so a fingerprint collision can never corrupt a
    /// result — it only costs a recomputation.
    cache: ShardedCache<(u64, EliminationHeuristic), Arc<TreeDecomposition>>,
    /// Compiled lineage circuits, keyed by `(instance fingerprint, query
    /// fingerprint, heuristic)`. A hit skips decomposition *and* lineage
    /// construction — probability re-evaluation under changed weights
    /// (what-if analysis, [`Engine::reevaluate_with_weights`]) pays only
    /// for the counting sweep. Entries additionally store the query's exact
    /// `Debug` rendering and a second, differently-seeded instance hash;
    /// both are checked on lookup, so a wrong reuse would need two
    /// simultaneous 64-bit hash collisions on the same query text.
    lineage_cache: ShardedCache<LineageKey, Arc<CompiledLineage>>,
}

/// Compile-time proof of the sharing contract: one `Arc<Engine>` may be
/// handed to any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>()
};

/// Key of the compiled-lineage cache: instance fingerprint, query
/// fingerprint, elimination heuristic.
type LineageKey = (u64, u64, EliminationHeuristic);

/// Offset basis of the secondary instance hash stored in lineage-cache
/// entries (the primary uses the standard FNV-1a basis).
const LINEAGE_CHECK_BASIS: u64 = 0x6c62_272e_07bb_0142;

/// A cached compiled lineage: everything about an `(instance, query)` pair
/// that does not depend on the probability weights.
#[derive(Debug)]
pub(crate) struct CompiledLineage {
    /// The compiled circuit (shared structure, cached circuit-graph
    /// decomposition).
    pub(crate) compiled: CompiledCircuit,
    /// Width of the structure-graph decomposition the lineage was built
    /// from, reported in [`EvaluationReport::decomposition_width`].
    pub(crate) decomposition_width: Option<usize>,
    /// Build-time strategy notes (e.g. an automaton-lineage fallback).
    pub(crate) build_notes: Vec<String>,
    /// Exact `Debug` rendering of the query, validated on every hit.
    pub(crate) query_repr: String,
    /// Secondary instance hash, validated on every hit.
    pub(crate) instance_check: u64,
    /// The query itself (type-erased): [`Engine::apply_update`] downcasts
    /// it back to re-derive delta lineages when the instance changes.
    pub(crate) query: Arc<dyn std::any::Any + Send + Sync>,
    /// Gate count of the circuit when it was last compiled cold. Patches
    /// only ever grow a circuit (deleted cones become constants, inserted
    /// cones are appended), so [`Engine::apply_update`] compares against
    /// this watermark and schedules a fresh compile once a patched circuit
    /// has bloated past a fixed factor — sustained churn degrades to an
    /// amortized rebuild, never to an unboundedly slower sweep.
    pub(crate) cold_gates: usize,
}

impl CompiledLineage {
    /// A rekeyed copy for an update that left the lineage intact: only the
    /// secondary instance hash changes.
    pub(crate) fn reusing(&self, instance_check: u64) -> CompiledLineage {
        CompiledLineage {
            compiled: self.compiled.clone(),
            decomposition_width: self.decomposition_width,
            build_notes: self.build_notes.clone(),
            query_repr: self.query_repr.clone(),
            instance_check,
            query: Arc::clone(&self.query),
            cold_gates: self.cold_gates,
        }
    }

    /// A copy carrying a patched circuit (and, when known, the patched
    /// structure-decomposition width).
    pub(crate) fn with_patched_circuit(
        &self,
        compiled: CompiledCircuit,
        instance_check: u64,
        decomposition_width: Option<usize>,
    ) -> CompiledLineage {
        CompiledLineage {
            compiled,
            decomposition_width: decomposition_width.or(self.decomposition_width),
            build_notes: self.build_notes.clone(),
            query_repr: self.query_repr.clone(),
            instance_check,
            query: Arc::clone(&self.query),
            cold_gates: self.cold_gates,
        }
    }

    /// True when patched growth has outrun the cold-compiled size enough
    /// that a fresh compile beats further patching.
    pub(crate) fn is_bloated(&self, patched_gates: usize) -> bool {
        patched_gates > self.cold_gates.saturating_mul(4) + 64
    }
}

/// The (primary, check) instance hashes of the lineage cache, computed in
/// one `Debug` pass — shared by the lookup path and the update path.
pub(crate) fn lineage_fingerprint_pair<R: Representation + ?Sized>(
    representation: &R,
) -> (u64, u64) {
    fingerprint_debug_pair_with(representation, FNV_OFFSET_BASIS, LINEAGE_CHECK_BASIS)
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default configuration (min-degree heuristic, width
    /// budget 22, automatic back-end selection, caching on).
    pub fn new() -> Engine {
        EngineBuilder::default().build()
    }

    /// An engine with default configuration that additionally switches the
    /// **process-global** span tracer on ([`stuc_obs::trace`]): every
    /// evaluation records named stage spans into the bounded ring buffer,
    /// exportable as Chrome trace-event JSON via
    /// [`stuc_obs::trace::chrome_trace_json`] (or `stuc-serve
    /// --trace-out=FILE`). The tracer outlives the engine; turn it back off
    /// with `stuc_obs::trace::set_enabled(false)`.
    pub fn with_tracing() -> Engine {
        trace::set_enabled(true);
        Engine::new()
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The configured back-end policy.
    pub fn policy(&self) -> BackendPolicy {
        self.config.policy
    }

    /// Number of cached decompositions.
    pub fn cached_decompositions(&self) -> usize {
        self.cache.len()
    }

    /// Number of cached compiled lineages.
    pub fn cached_lineages(&self) -> usize {
        self.lineage_cache.len()
    }

    /// Hit/miss/entry counters of both engine caches — lifetime totals of
    /// validated hits and of misses (absent or failed-revalidation), plus
    /// lost publish races. Concurrency tests use these to prove that
    /// parallel workers actually shared compiled entries instead of each
    /// compiling privately.
    pub fn cache_stats(&self) -> EngineCacheStats {
        EngineCacheStats {
            decompositions: self.cache.counters(),
            lineages: self.lineage_cache.counters(),
        }
    }

    /// Drops all cached decompositions and compiled lineages.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.lineage_cache.clear();
    }

    /// Drops the cached decompositions and compiled lineages of **one**
    /// instance, identified by its [`Representation::fingerprint`] — the
    /// targeted alternative to the all-or-nothing [`Engine::clear_cache`].
    /// Returns the number of entries evicted.
    ///
    /// [`Engine::apply_update`] uses this on its fallback path: when an
    /// update cannot be patched, the stale instance's entries are evicted
    /// and rebuilt on demand instead of poisoning the caches.
    ///
    /// For the built-in representations the lineage cache shares the same
    /// instance hash, so both caches are swept; a custom
    /// [`Representation::fingerprint`] override only controls the
    /// decomposition cache.
    pub fn evict_instance(&self, fingerprint: u64) -> usize {
        self.cache.drain_matching(|key| key.0 == fingerprint).len()
            + self
                .lineage_cache
                .drain_matching(|key| key.0 == fingerprint)
                .len()
    }

    /// Evaluates a Boolean query on any [`Representation`], returning the
    /// probability together with full provenance of how it was computed.
    ///
    /// This is the one public entry point of the STUC system: TID,
    /// c-/pc-/pcc-instances and PrXML documents all go through here, with
    /// the back-end picked by the configured [`BackendPolicy`].
    pub fn evaluate<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<EvaluationReport, StucError> {
        let _span = trace::span("evaluate");
        let watch = Stopwatch::start();
        let result = self.evaluate_inner(representation, query, None);
        engine_metrics().evaluate.observe(&result, watch.elapsed());
        match &result {
            Ok(report) => {
                slowlog::global().note("evaluate", report.wall_time, report.trace_id, || {
                    format!(
                        "backend={} gates={} facts={}",
                        report.backend.name(),
                        report.circuit_gates,
                        report.fact_count
                    )
                });
            }
            Err(err) => note_eval_failure("evaluate", err, watch.elapsed()),
        }
        result
    }

    /// [`Engine::evaluate`] under a cooperative [`EvalBudget`]: the budget
    /// is installed for the calling thread and polled at bounded intervals
    /// inside every long-running stage (ordering, compilation, sweeps,
    /// branching). A tripped deadline surfaces as
    /// [`StucError::DeadlineExceeded`], a raised cancel flag as
    /// [`StucError::Cancelled`] — both name the stage that noticed. Partial
    /// artifacts of a tripped run are never published to the caches, so an
    /// identical re-run without the budget produces the exact answer.
    pub fn evaluate_with_budget<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        budget: &EvalBudget,
    ) -> Result<EvaluationReport, StucError> {
        self.budgeted(budget, || self.evaluate(representation, query))
    }

    /// Installs `budget` around `f`, records budget-check overhead into the
    /// `stuc_engine_budget_check_seconds` histogram, and counts trips.
    fn budgeted<T>(
        &self,
        budget: &EvalBudget,
        f: impl FnOnce() -> Result<T, StucError>,
    ) -> Result<T, StucError> {
        let (result, stats) = stuc_fault::budget::scope_with_stats(budget.clone(), f);
        let metrics = engine_metrics();
        metrics.budget_check_seconds.observe(stats.spent);
        match &result {
            Err(StucError::DeadlineExceeded { .. }) => metrics.deadline_exceeded.inc(),
            Err(StucError::Cancelled { .. }) => metrics.cancelled.inc(),
            _ => {}
        }
        result
    }

    /// Re-evaluates a query under a different weight table — the what-if
    /// fast path.
    ///
    /// The lineage circuit of a query depends only on the instance's *facts*
    /// and their correlation structure, never on the probabilities, so when
    /// only the weights change (sensitivity analysis, conditioning sweeps,
    /// weight-learning loops) the compiled lineage can be reused verbatim.
    /// This method looks the `(instance, query)` pair up in the engine's
    /// lineage cache — compiling it on a miss — and then runs only the
    /// counting back-end under `weights`, skipping decomposition and lineage
    /// construction entirely.
    ///
    /// `weights` must cover every event variable of the lineage; the
    /// extensional safe plan never runs here (it reads the instance's own
    /// probabilities), so the result is always computed from the circuit.
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(6, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// engine.evaluate(&tid, &query).unwrap(); // compiles + caches the lineage
    ///
    /// // What if every fact were certain? Reuses the compiled lineage.
    /// let mut certain = tid.clone();
    /// for i in 0..certain.fact_count() {
    ///     certain.set_probability(stuc_data::instance::FactId(i), 1.0);
    /// }
    /// let report = engine
    ///     .reevaluate_with_weights(&tid, &query, &certain.fact_weights())
    ///     .unwrap();
    /// assert!(report.lineage_cached);
    /// assert!((report.probability - 1.0).abs() < 1e-9);
    /// ```
    pub fn reevaluate_with_weights<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        weights: &Weights,
    ) -> Result<EvaluationReport, StucError> {
        let _span = trace::span("reevaluate_with_weights");
        let watch = Stopwatch::start();
        let result = self.evaluate_inner(representation, query, Some(weights));
        engine_metrics()
            .reevaluate
            .observe(&result, watch.elapsed());
        result
    }

    /// Re-evaluates a query under **K** different weight tables in a single
    /// counting sweep — the multi-scenario what-if fast path.
    ///
    /// Where K calls to [`Engine::reevaluate_with_weights`] pay K cache
    /// lookups and K message-passing sweeps, this method fetches the
    /// compiled lineage once and runs the treewidth back-end's scenario
    /// lanes ([`CompiledCircuit::run_many`]): one traversal of the sweep
    /// plan with K `f64` lanes per table slot, so the structural work
    /// (masks, permutations, constraint checks) is shared by all scenarios.
    /// The per-scenario probabilities are identical to K sequential calls.
    ///
    /// One report is returned per scenario, in input order; shared fields
    /// (backend, widths, wall time of the whole call) are replicated.
    /// Back-ends without a lanes implementation (a fixed DPLL/enumeration
    /// policy, or Auto on an over-budget circuit) fall back to a sequential
    /// per-scenario loop. Like [`Engine::reevaluate_with_weights`], the
    /// extensional safe plan never runs here.
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(6, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// engine.evaluate(&tid, &query).unwrap(); // compiles + caches the lineage
    ///
    /// // Sweep 8 what-if scenarios in one pass.
    /// let scenarios: Vec<_> = (1..=8)
    ///     .map(|k| {
    ///         let mut w = tid.clone();
    ///         for i in 0..w.fact_count() {
    ///             w.set_probability(stuc_data::instance::FactId(i), 0.1 * k as f64);
    ///         }
    ///         w.fact_weights()
    ///     })
    ///     .collect();
    /// let reports = engine
    ///     .reevaluate_with_weights_many(&tid, &query, &scenarios)
    ///     .unwrap();
    /// assert_eq!(reports.len(), 8);
    /// ```
    pub fn reevaluate_with_weights_many<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        scenarios: &[Weights],
    ) -> Result<Vec<EvaluationReport>, StucError> {
        let _span = trace::span("reevaluate_with_weights_many");
        let watch = Stopwatch::start();
        let result = self.reevaluate_many_inner(representation, query, scenarios);
        engine_metrics()
            .reevaluate
            .observe(&result, watch.elapsed());
        result
    }

    fn reevaluate_many_inner<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        scenarios: &[Weights],
    ) -> Result<Vec<EvaluationReport>, StucError> {
        if scenarios.is_empty() {
            return Ok(Vec::new());
        }
        if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
            return Err(StucError::BackendUnsupported {
                backend: BackendKind::SafePlan.name(),
                reason: "weight re-evaluation runs on the lineage circuit; the extensional \
                         safe plan reads the instance's own probabilities"
                    .into(),
            });
        }
        let mut rec = StageRecorder::new();
        let mut notes = Vec::new();
        let (entry, cache_flags) = self.compiled_lineage(representation, query, &mut rec)?;
        if cache_flags.lineage_cached {
            notes.push("compiled lineage served from cache".to_string());
        }
        notes.extend(entry.build_notes.iter().cloned());

        let use_lanes = match self.config.policy {
            BackendPolicy::Fixed(BackendKind::TreewidthWmc) => true,
            BackendPolicy::Auto => entry.compiled.width() < self.config.width_budget,
            _ => false,
        };
        let (probabilities, backend) = if use_lanes {
            notes.push(format!(
                "{} scenarios evaluated in one lane sweep",
                scenarios.len()
            ));
            let many = entry
                .compiled
                .run_many(scenarios, self.config.width_budget)?;
            (many.probabilities, BackendKind::TreewidthWmc)
        } else {
            // No lanes implementation for this back-end: sequential loop.
            let chosen: Box<dyn Backend> = match self.config.policy {
                BackendPolicy::Fixed(BackendKind::Dpll) | BackendPolicy::Auto => {
                    Box::new(DpllBackend {
                        max_branches: self.config.dpll_max_branches,
                    })
                }
                BackendPolicy::Fixed(BackendKind::Enumeration) => Box::new(EnumerationBackend),
                _ => unreachable!("treewidth and safe-plan handled above"),
            };
            notes.push(format!(
                "{} scenarios evaluated sequentially by {} (no lane support)",
                scenarios.len(),
                chosen.kind()
            ));
            let mut probabilities = Vec::with_capacity(scenarios.len());
            for weights in scenarios {
                let task = EvaluationTask::Compiled {
                    lineage: &entry.compiled,
                    weights,
                };
                probabilities.push(chosen.solve(&task)?);
            }
            (probabilities, chosen.kind())
        };
        rec.mark("sweep");
        let wall_time = rec.elapsed();
        let timings = rec.finish();
        Ok(probabilities
            .into_iter()
            .map(|probability| {
                self.report(
                    probability,
                    backend,
                    entry.decomposition_width,
                    entry.compiled.len(),
                    representation.fact_count(),
                    wall_time,
                    timings.clone(),
                    cache_flags,
                    notes.clone(),
                )
            })
            .collect())
    }

    /// Posterior marginals `P(fact | query)` of **every** fact variable, in
    /// one backward (outward) sweep over the compiled lineage — the first
    /// of the engine's three posterior-inference modes (see also
    /// [`Engine::sample_worlds`] and [`Engine::most_probable_world`]).
    ///
    /// Where n conditioned evaluations would pay n counting sweeps, the
    /// backward pass retains the upward sweep's node tables and reads off
    /// all n unnormalised marginals in a single reverse traversal: ~2–3×
    /// one WMC sweep in total. Fact variables the lineage never mentions
    /// are independent of the query and report their prior. The compiled
    /// lineage is shared with every other evaluation mode through the
    /// engine's lineage cache, so a warm what-if workload gets marginals
    /// for just the sweeps.
    ///
    /// Fails with [`StucError::Infer`] when `P(query) = 0` (the posterior
    /// is undefined) and refuses under a fixed safe-plan policy (no circuit
    /// is ever built there).
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(5, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// let marginals = engine.marginals(&tid, &query).unwrap();
    /// assert_eq!(marginals.len(), tid.fact_count());
    /// // Every fact is at least as likely once we know the query holds.
    /// for (v, posterior) in marginals.iter() {
    ///     assert!(posterior + 1e-9 >= tid.fact_weights().get(v).unwrap());
    /// }
    /// assert_eq!(marginals.report.sweeps_run, 2);
    /// ```
    pub fn marginals<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<Marginals, StucError> {
        let _span = trace::span("marginals");
        let watch = Stopwatch::start();
        let result = self.inference_input(representation, query).and_then(
            |(entry, weights, lineage_cached)| {
                let mut result =
                    stuc_infer::marginals(&entry.compiled, &weights, self.config.width_budget)?;
                result.report.lineage_cached = lineage_cached;
                Ok(result)
            },
        );
        engine_metrics().marginals.observe(&result, watch.elapsed());
        result
    }

    /// Draws `count` i.i.d. possible worlds **exactly** proportional to
    /// their probability, conditioned on the query holding — no Markov
    /// chain, no rejection. One table-retaining sweep is paid up front;
    /// each world is then a cheap top-down descent. Deterministic per
    /// `seed` ([`rand::rngs::SplitMix64`]).
    ///
    /// For a long-lived sampler that amortises the sweep across many
    /// batches, use [`Engine::world_sampler`].
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(5, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// let sampled = engine.sample_worlds(&tid, &query, 100, 42).unwrap();
    /// assert_eq!(sampled.worlds.len(), 100);
    /// let lineage = engine.lineage(&tid, &query).unwrap();
    /// for world in &sampled.worlds {
    ///     assert!(world.satisfies(&lineage).unwrap()); // query holds in every draw
    /// }
    /// ```
    pub fn sample_worlds<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        count: usize,
        seed: u64,
    ) -> Result<SampledWorlds, StucError> {
        let _span = trace::span("sample_worlds");
        let watch = Stopwatch::start();
        let result = self.inference_input(representation, query).and_then(
            |(entry, weights, lineage_cached)| {
                let mut result = stuc_infer::sample_worlds(
                    &entry.compiled,
                    &weights,
                    self.config.width_budget,
                    count,
                    seed,
                )?;
                result.report.lineage_cached = lineage_cached;
                Ok(result)
            },
        );
        engine_metrics()
            .sample_worlds
            .observe(&result, watch.elapsed());
        result
    }

    /// Builds a reusable exact [`WorldSampler`] for `(representation,
    /// query)`: the streaming twin of [`Engine::sample_worlds`]. The
    /// sampler owns its retained tables and RNG stream, so it keeps drawing
    /// (and replaying, given the same `seed`) without touching the engine
    /// again.
    pub fn world_sampler<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        seed: u64,
    ) -> Result<WorldSampler, StucError> {
        let _span = trace::span("world_sampler");
        let watch = Stopwatch::start();
        let result = self.inference_input(representation, query).and_then(
            |(entry, weights, lineage_cached)| {
                let mut sampler =
                    WorldSampler::new(&entry.compiled, &weights, self.config.width_budget, seed)?;
                sampler.report_mut().lineage_cached = lineage_cached;
                Ok(sampler)
            },
        );
        engine_metrics()
            .sample_worlds
            .observe(&result, watch.elapsed());
        result
    }

    /// The single most probable world in which the query holds, and its
    /// probability — the max-product (Viterbi) variant of the counting
    /// sweep, decoded by an argmax descent over the retained tables.
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(5, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// let mpe = engine.most_probable_world(&tid, &query).unwrap();
    /// let lineage = engine.lineage(&tid, &query).unwrap();
    /// assert!(mpe.world.satisfies(&lineage).unwrap());
    /// assert!(mpe.probability > 0.0);
    /// ```
    pub fn most_probable_world<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<MostProbableWorld, StucError> {
        let _span = trace::span("most_probable_world");
        let watch = Stopwatch::start();
        let result = self.inference_input(representation, query).and_then(
            |(entry, weights, lineage_cached)| {
                let mut result = stuc_infer::most_probable_world(
                    &entry.compiled,
                    &weights,
                    self.config.width_budget,
                )?;
                result.report.lineage_cached = lineage_cached;
                Ok(result)
            },
        );
        engine_metrics()
            .most_probable_world
            .observe(&result, watch.elapsed());
        result
    }

    /// Shared entry of the posterior-inference modes: refuse the (circuitless)
    /// fixed safe-plan policy, then fetch the compiled lineage — served from
    /// the same cache as every counting mode — and the representation's
    /// weights.
    fn inference_input<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<(Arc<CompiledLineage>, Weights, bool), StucError> {
        if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
            return Err(StucError::BackendUnsupported {
                backend: BackendKind::SafePlan.name(),
                reason: "posterior inference (marginals, sampling, most-probable-world) runs on \
                         the lineage circuit; the extensional safe plan never builds one"
                    .into(),
            });
        }
        // Inference reports carry their own sweep counters, so the stage
        // recorder here only feeds the tracer.
        let mut rec = StageRecorder::new();
        let (entry, flags) = self.compiled_lineage(representation, query, &mut rec)?;
        let weights = representation.weights()?;
        Ok((entry, weights, flags.lineage_cached))
    }

    fn evaluate_inner<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        weight_override: Option<&Weights>,
    ) -> Result<EvaluationReport, StucError> {
        // Fail fast when the caller's deadline already passed (e.g. the
        // request waited out its budget in the server's accept queue).
        stuc_fault::budget::check("evaluation start")?;
        let mut rec = StageRecorder::new();
        let mut notes = Vec::new();

        // Stage 1: the extensional fast path, which skips decomposition and
        // circuit construction entirely. It evaluates directly on the
        // instance's own probabilities, so it is off the table when the
        // caller supplied a weight override.
        if weight_override.is_some() {
            if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
                return Err(StucError::BackendUnsupported {
                    backend: BackendKind::SafePlan.name(),
                    reason: "weight re-evaluation runs on the lineage circuit; the extensional \
                             safe plan reads the instance's own probabilities"
                        .into(),
                });
            }
        } else if let Some(extensional) = representation.extensional(query) {
            match self.config.policy {
                BackendPolicy::Fixed(BackendKind::SafePlan) => {
                    let task = EvaluationTask::Extensional {
                        tid: extensional.tid,
                        query: extensional.query,
                    };
                    let probability = SafePlanBackend.solve(&task)?;
                    rec.mark("safe-plan");
                    return Ok(self.report(
                        probability,
                        BackendKind::SafePlan,
                        None,
                        0,
                        representation.fact_count(),
                        rec.elapsed(),
                        rec.finish(),
                        CacheFlags::default(),
                        notes,
                    ));
                }
                BackendPolicy::Auto => {
                    if is_hierarchical(extensional.query) {
                        let task = EvaluationTask::Extensional {
                            tid: extensional.tid,
                            query: extensional.query,
                        };
                        match SafePlanBackend.solve(&task) {
                            Ok(probability) => {
                                notes.push(
                                    "query is hierarchical; extensional safe plan selected"
                                        .to_string(),
                                );
                                rec.mark("safe-plan");
                                return Ok(self.report(
                                    probability,
                                    BackendKind::SafePlan,
                                    None,
                                    0,
                                    representation.fact_count(),
                                    rec.elapsed(),
                                    rec.finish(),
                                    CacheFlags::default(),
                                    notes,
                                ));
                            }
                            Err(refusal) => {
                                notes.push(format!("safe plan refused ({refusal}); using lineage"))
                            }
                        }
                    } else {
                        notes.push(
                            "query is not hierarchical; extensional safe plan skipped".to_string(),
                        );
                    }
                }
                BackendPolicy::Fixed(_) => {}
            }
        } else if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
            return Err(StucError::BackendUnsupported {
                backend: BackendKind::SafePlan.name(),
                reason: format!(
                    "{} offers no extensional evaluation; only TID instances do",
                    representation.kind()
                ),
            });
        }

        self.evaluate_on_circuit(representation, query, weight_override, rec, notes)
    }

    /// Stages 2–4 of an evaluation: compiled lineage → weights → counting
    /// back-end. Shared by [`Engine::evaluate_inner`] (after its stage-1
    /// extensional fast path) and by the textual front-end
    /// ([`Engine::evaluate_text`]), whose cost model makes its own stage-1
    /// decision per inclusion–exclusion term.
    fn evaluate_on_circuit<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        weight_override: Option<&Weights>,
        mut rec: StageRecorder,
        mut notes: Vec<String>,
    ) -> Result<EvaluationReport, StucError> {
        // Stages 2 + 3: fetch (or build) the compiled lineage — the
        // decomposition of the structure graph, the lineage circuit, and the
        // decomposition of the circuit graph, all weight-independent.
        let (entry, cache_flags) = self.compiled_lineage(representation, query, &mut rec)?;
        if cache_flags.lineage_cached {
            notes.push("compiled lineage served from cache".to_string());
        } else if cache_flags.decomposition_cached {
            notes.push("structure decomposition served from cache".to_string());
        }
        notes.extend(entry.build_notes.iter().cloned());

        // Collect the weights (the caller's override wins).
        let own_weights;
        let weights = match weight_override {
            Some(weights) => weights,
            None => {
                own_weights = representation.weights()?;
                &own_weights
            }
        };

        // Stage 4: pick and run a counting back-end.
        let task = EvaluationTask::Compiled {
            lineage: &entry.compiled,
            weights,
        };
        let treewidth = TreewidthWmcBackend {
            heuristic: self.config.heuristic,
            max_bag_size: self.config.width_budget,
        };
        let chosen: Box<dyn Backend> = match self.config.policy {
            BackendPolicy::Fixed(BackendKind::TreewidthWmc) => Box::new(treewidth),
            BackendPolicy::Fixed(BackendKind::Dpll) => Box::new(DpllBackend {
                max_branches: self.config.dpll_max_branches,
            }),
            BackendPolicy::Fixed(BackendKind::Enumeration) => Box::new(EnumerationBackend),
            BackendPolicy::Fixed(BackendKind::SafePlan) => unreachable!("handled in stage 1"),
            BackendPolicy::Auto => {
                // `width()` reports decomposition *width*; the WMC back-end
                // refuses on *bag size* (width + 1), so the strict comparison
                // here, or Auto would pick a back-end that refuses.
                let width = entry.compiled.width();
                if width < self.config.width_budget {
                    notes.push(format!(
                        "lineage width estimate {width} within budget {}; treewidth WMC selected",
                        self.config.width_budget
                    ));
                    Box::new(treewidth)
                } else {
                    notes.push(format!(
                        "lineage width estimate {width} exceeds budget {}; DPLL selected",
                        self.config.width_budget
                    ));
                    Box::new(DpllBackend {
                        max_branches: self.config.dpll_max_branches,
                    })
                }
            }
        };
        rec.skip();
        let probability = chosen.solve(&task)?;
        rec.mark("sweep");
        Ok(self.report(
            probability,
            chosen.kind(),
            entry.decomposition_width,
            entry.compiled.len(),
            representation.fact_count(),
            rec.elapsed(),
            rec.finish(),
            cache_flags,
            notes,
        ))
    }

    /// Fetches the compiled lineage of `(representation, query)` from the
    /// lineage cache, or builds and caches it: structure decomposition →
    /// lineage circuit → compiled circuit.
    fn compiled_lineage<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        rec: &mut StageRecorder,
    ) -> Result<(Arc<CompiledLineage>, CacheFlags), StucError> {
        // The instance is hashed over its `Debug` rendering (primary + check
        // hash in one pass); unlike the decomposition cache this does not go
        // through `Representation::fingerprint`, because the entry cannot be
        // re-validated structurally on a hit — the dual hash plus the exact
        // query text is the validation. With caching off, none of this
        // (instance rendering included) is paid at all.
        let identity = if self.config.cache_lineages && self.config.cache_capacity > 0 {
            let (instance_fp, instance_check) =
                fingerprint_debug_pair_with(representation, FNV_OFFSET_BASIS, LINEAGE_CHECK_BASIS);
            let query_repr = format!("{query:?}");
            let key: LineageKey = (
                instance_fp,
                fingerprint_debug(&query_repr),
                self.config.heuristic,
            );
            if let Some(entry) = self.lineage_cache.get(&key) {
                if entry.query_repr == query_repr && entry.instance_check == instance_check {
                    self.lineage_cache.note_hit();
                    rec.mark("cache-lookup");
                    return Ok((
                        entry,
                        CacheFlags {
                            lineage_cached: true,
                            // No decomposition lookup happened at all;
                            // report it as served-from-cache, which is
                            // what it is morally.
                            decomposition_cached: true,
                        },
                    ));
                }
            }
            self.lineage_cache.note_miss();
            Some((key, query_repr, instance_check))
        } else {
            None
        };
        rec.mark("cache-lookup");
        let (decomposition, decomposition_cached) = self.decomposition_for(representation);
        rec.mark("decompose");
        // A tripped budget degrades min-fill to a cheap ordering rather than
        // erroring mid-loop; this checkpoint is where the degraded run turns
        // into the typed error (before any lineage work is attempted).
        stuc_fault::budget::check("structure decomposition")?;
        let outcome = representation.lineage(query, &decomposition)?;
        let build_notes = outcome.note.into_iter().collect();
        // Constant-fold and prune the raw lineage before compiling:
        // automaton-built circuits carry a constant gate per decomposition
        // node, so for selective (e.g. anchored) queries the reachable
        // non-constant core is a tiny fraction of the raw circuit, and both
        // the circuit-graph decomposition and every later counting sweep
        // shrink with it.
        let simplified = outcome.circuit.simplify()?;
        stuc_fault::budget::check("lineage construction")?;
        stuc_fault::failpoint!("lineage-compile", |m| StucError::Internal {
            message: format!("injected fault: {m}"),
        });
        let compiled = CompiledCircuit::compile(Arc::new(simplified), self.config.heuristic)?;
        rec.mark("compile-lineage");
        stuc_fault::budget::check("lineage compilation")?;
        let (query_repr, instance_check, key) = match identity {
            Some((key, query_repr, instance_check)) => (query_repr, instance_check, Some(key)),
            None => (String::new(), 0, None),
        };
        let cold_gates = compiled.len();
        let entry = Arc::new(CompiledLineage {
            compiled,
            decomposition_width: Some(decomposition.width()),
            build_notes,
            query_repr,
            instance_check,
            query: Arc::new(query.clone()),
            cold_gates,
        });
        let flags = CacheFlags {
            lineage_cached: false,
            decomposition_cached,
        };
        if let Some(key) = key {
            // Publish under first-writer-wins: if another worker compiled the
            // same pair concurrently, adopt its entry (identical semantics —
            // same instance rendering, same query text, same heuristic) so
            // every thread converges on one shared circuit.
            let (winner, won) = self.lineage_cache.publish(key, Arc::clone(&entry));
            if !won {
                if winner.query_repr == entry.query_repr
                    && winner.instance_check == entry.instance_check
                {
                    return Ok((winner, flags));
                }
                // The key is held by a fingerprint-colliding stranger (which
                // is also why the lookup above missed): replace it — our
                // entry is the one matching the live `(instance, query)`.
                self.lineage_cache.insert_replacing(key, Arc::clone(&entry));
            }
        }
        Ok((entry, flags))
    }

    /// True when the lineage cache already holds a compiled circuit for
    /// `(representation, query)` — the same dual-hash lookup
    /// [`Engine::compiled_lineage`] performs, without building anything on a
    /// miss. The textual front-end's cost model uses this to discount the
    /// circuit route for already-compiled goals.
    fn has_cached_lineage<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> bool {
        if !self.config.cache_lineages || self.config.cache_capacity == 0 {
            return false;
        }
        let (instance_fp, instance_check) =
            fingerprint_debug_pair_with(representation, FNV_OFFSET_BASIS, LINEAGE_CHECK_BASIS);
        let query_repr = format!("{query:?}");
        let key: LineageKey = (
            instance_fp,
            fingerprint_debug(&query_repr),
            self.config.heuristic,
        );
        self.lineage_cache.get(&key).is_some_and(|entry| {
            entry.query_repr == query_repr && entry.instance_check == instance_check
        })
    }

    /// Builds (or fetches) the lineage circuit of a query without computing
    /// its probability — for callers that want to inspect, transform or
    /// re-weight the circuit themselves. Shares the engine's lineage cache.
    pub fn lineage<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<Circuit, StucError> {
        let mut rec = StageRecorder::new();
        let (entry, _) = self.compiled_lineage(representation, query, &mut rec)?;
        Ok(entry.compiled.source().as_ref().clone())
    }

    /// The tree decomposition of the representation's structure graph,
    /// served from the cache when the fingerprint matches a prior call.
    ///
    /// A cache hit amortizes the decomposition itself (the superlinear
    /// part), but still pays two linear passes per call: the `Debug`-based
    /// fingerprint and the structure-graph rebuild for collision-safe
    /// validation. Making hits O(1) needs an incremental content hash on
    /// each representation and a graph cached alongside the decomposition —
    /// planned for the batching/caching PRs that build on this engine.
    pub fn decomposition_for<R: Representation + ?Sized>(
        &self,
        representation: &R,
    ) -> (Arc<TreeDecomposition>, bool) {
        let graph = representation.structure_graph();
        let key = (representation.fingerprint(), self.config.heuristic);
        let mut stale_resident = false;
        if self.config.cache_decompositions {
            if let Some(cached) = self.cache.get(&key) {
                // Fingerprints are not cryptographic: re-validate the
                // cached decomposition against today's graph so a
                // collision degrades to a recomputation, never to a
                // wrong width or an invalid lineage run.
                if cached.validate(&graph).is_ok() {
                    self.cache.note_hit();
                    return (cached, true);
                }
                stale_resident = true;
            }
            self.cache.note_miss();
        }
        let decomposition = Arc::new(decompose_with_heuristic(&graph, self.config.heuristic));
        if stuc_fault::budget::tripped() {
            // The ordering may have taken the budget-tripped degraded path:
            // keep the possibly low-quality decomposition out of the cache
            // so an un-budgeted re-run rebuilds it at full quality.
            return (decomposition, false);
        }
        if stale_resident {
            // A fingerprint-colliding stranger holds the key: replace it, or
            // every future lookup would keep missing.
            self.cache.insert_replacing(key, Arc::clone(&decomposition));
            return (decomposition, false);
        }
        // First-writer-wins publish: concurrent workers that raced on the
        // same fingerprint all converge on whichever decomposition landed
        // first (any valid decomposition of the graph is equally correct).
        let (decomposition, _won) = self.cache.publish(key, decomposition);
        (decomposition, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        probability: f64,
        backend: BackendKind,
        decomposition_width: Option<usize>,
        circuit_gates: usize,
        fact_count: usize,
        wall_time: Duration,
        stage_timings: StageTimings,
        cache_flags: CacheFlags,
        notes: Vec<String>,
    ) -> EvaluationReport {
        EvaluationReport {
            probability,
            backend,
            decomposition_width,
            circuit_gates,
            fact_count,
            wall_time,
            decomposition_cached: cache_flags.decomposition_cached,
            lineage_cached: cache_flags.lineage_cached,
            notes,
            // Only the textual front-end routes through the cost model;
            // `Engine::evaluate_text` fills this in after the fact.
            route: None,
            trace_id: stuc_obs::next_trace_id(),
            stage_timings,
        }
    }
}

/// Which engine caches served (parts of) one evaluation.
#[derive(Debug, Clone, Copy, Default)]
struct CacheFlags {
    decomposition_cached: bool,
    lineage_cached: bool,
}

/// Panic-isolation boundary: runs `f`, converting a panic into
/// [`StucError::Internal`] carrying the panic payload (when it is a string)
/// and bumping `stuc_engine_panics_caught_total`. The engine's caches are
/// panic-safe by construction — entries are published atomically after being
/// fully built, and the FIFO ledger is only appended under its own
/// poison-recovering lock — so a caught panic leaves the engine usable.
pub(crate) fn catch_panic<T>(f: impl FnOnce() -> Result<T, StucError>) -> Result<T, StucError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            engine_metrics().panics_caught.inc();
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            slowlog::global()
                .note_failure("evaluate", "panic", Duration::ZERO, 0, || message.clone());
            Err(StucError::Internal { message })
        }
    }
}

/// Report a failed evaluation to the slow log: deadline trips, cancellations
/// and caught panics are outliers regardless of how quickly they died, so
/// `GET /debug/slow` should show them next to the slow successes. Other
/// error kinds (parse errors, unsafe queries…) are ordinary outcomes and are
/// not logged.
pub(crate) fn note_eval_failure(what: &'static str, err: &StucError, wall: Duration) {
    let (outcome, stage) = match err {
        StucError::DeadlineExceeded { stage } => ("deadline-exceeded", *stage),
        StucError::Cancelled { stage } => ("cancelled", *stage),
        _ => return,
    };
    slowlog::global().note_failure(what, outcome, wall, 0, || format!("stage={stage}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use stuc_query::cq::ConjunctiveQuery;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn auto_uses_safe_plan_for_hierarchical_queries() {
        let tid = workloads::rst_star_tid(4, 0.4, 3);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let engine = Engine::new();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::SafePlan);
        assert_eq!(report.decomposition_width, None);
        assert_eq!(report.circuit_gates, 0);
        // Cross-check against a forced circuit back-end.
        let forced = Engine::builder().backend(BackendKind::Dpll).build();
        let reference = forced.evaluate(&tid, &query).unwrap();
        assert_eq!(reference.backend, BackendKind::Dpll);
        assert!(close(report.probability, reference.probability));
    }

    #[test]
    fn auto_uses_treewidth_for_unsafe_queries_on_narrow_data() {
        let tid = workloads::rst_path_tid(6, 0.5, 5);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let engine = Engine::new();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::TreewidthWmc);
        assert!(report.decomposition_width.unwrap() <= 2);
        assert!(report.circuit_gates > 0);
        let brute = Engine::builder()
            .backend(BackendKind::Enumeration)
            .build()
            .evaluate(&tid, &query)
            .unwrap();
        assert!(close(report.probability, brute.probability));
    }

    #[test]
    fn auto_falls_back_to_dpll_when_width_budget_is_tiny() {
        let tid = workloads::path_tid(8, 0.5, 11);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::builder().width_budget(1).build();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::Dpll);
        assert!(report.notes.iter().any(|n| n.contains("DPLL selected")));
        let reference = Engine::new().evaluate(&tid, &query).unwrap();
        assert!(close(report.probability, reference.probability));
    }

    #[test]
    fn fixed_safe_plan_refuses_unsafe_queries_and_non_tid() {
        let tid = workloads::rst_path_tid(4, 0.5, 5);
        let unsafe_query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let engine = Engine::builder().backend(BackendKind::SafePlan).build();
        assert!(matches!(
            engine.evaluate(&tid, &unsafe_query),
            Err(StucError::SafePlan(_))
        ));
        let pcc = workloads::contributor_pcc(4, 2, 0.8, 0.9, 21);
        let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
        assert!(matches!(
            engine.evaluate(&pcc, &query),
            Err(StucError::BackendUnsupported { .. })
        ));
    }

    #[test]
    fn decomposition_cache_hits_on_repeat_evaluations() {
        let tid = workloads::path_tid(10, 0.5, 7);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::builder().backend(BackendKind::TreewidthWmc).build();
        let first = engine.evaluate(&tid, &query).unwrap();
        assert!(!first.decomposition_cached);
        assert_eq!(engine.cached_decompositions(), 1);
        let second = engine.evaluate(&tid, &query).unwrap();
        assert!(second.decomposition_cached);
        assert!(close(first.probability, second.probability));
        engine.clear_cache();
        assert_eq!(engine.cached_decompositions(), 0);
    }

    #[test]
    fn engine_is_sync_and_shareable_across_threads() {
        let engine = std::sync::Arc::new(Engine::new());
        let tid = std::sync::Arc::new(workloads::path_tid(8, 0.5, 13));
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let baseline = engine.evaluate(&*tid, &query).unwrap().probability;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let tid = std::sync::Arc::clone(&tid);
                let query = query.clone();
                std::thread::spawn(move || engine.evaluate(&*tid, &query).unwrap().probability)
            })
            .collect();
        for handle in handles {
            assert!(close(handle.join().unwrap(), baseline));
        }
    }

    fn reweight_scenarios(tid: &stuc_data::tid::TidInstance, count: usize) -> Vec<Weights> {
        (1..=count)
            .map(|k| {
                let mut shadow = tid.clone();
                for i in 0..shadow.fact_count() {
                    shadow.set_probability(
                        stuc_data::instance::FactId(i),
                        (0.07 * k as f64).min(1.0),
                    );
                }
                shadow.fact_weights()
            })
            .collect()
    }

    #[test]
    fn reevaluate_many_matches_sequential_reevaluation_exactly() {
        let tid = workloads::path_tid(10, 0.5, 7);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        engine.evaluate(&tid, &query).unwrap();
        let scenarios = reweight_scenarios(&tid, 5);
        let many = engine
            .reevaluate_with_weights_many(&tid, &query, &scenarios)
            .unwrap();
        assert_eq!(many.len(), 5);
        for (weights, lane) in scenarios.iter().zip(&many) {
            assert_eq!(lane.backend, BackendKind::TreewidthWmc);
            assert!(lane.notes.iter().any(|n| n.contains("one lane sweep")));
            let single = engine
                .reevaluate_with_weights(&tid, &query, weights)
                .unwrap();
            assert_eq!(
                single.probability.to_bits(),
                lane.probability.to_bits(),
                "{} vs {}",
                single.probability,
                lane.probability
            );
        }
    }

    #[test]
    fn reevaluate_many_handles_empty_and_fixed_policies() {
        let tid = workloads::path_tid(6, 0.5, 3);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        assert!(engine
            .reevaluate_with_weights_many(&tid, &query, &[])
            .unwrap()
            .is_empty());

        // A fixed DPLL policy has no lane support: sequential fallback, same
        // probabilities as one-at-a-time re-evaluation.
        let scenarios = reweight_scenarios(&tid, 3);
        let dpll = Engine::builder().backend(BackendKind::Dpll).build();
        let many = dpll
            .reevaluate_with_weights_many(&tid, &query, &scenarios)
            .unwrap();
        for (weights, lane) in scenarios.iter().zip(&many) {
            assert_eq!(lane.backend, BackendKind::Dpll);
            let single = dpll.reevaluate_with_weights(&tid, &query, weights).unwrap();
            assert!(close(single.probability, lane.probability));
        }

        // The safe plan can never serve weight overrides.
        let safe = Engine::builder().backend(BackendKind::SafePlan).build();
        assert!(matches!(
            safe.reevaluate_with_weights_many(&tid, &query, &scenarios),
            Err(StucError::BackendUnsupported { .. })
        ));
    }

    #[test]
    fn wall_time_and_fact_count_are_populated() {
        let tid = workloads::path_tid(6, 0.3, 2);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let report = Engine::new().evaluate(&tid, &query).unwrap();
        assert_eq!(report.fact_count, 6);
        assert!(report.wall_time.as_nanos() > 0);
        assert!(!report.notes.is_empty());
    }
}
