//! What an evaluation returns besides the probability itself: the
//! per-query [`EvaluationReport`], the per-batch [`BatchReport`], and the
//! [`BackendKind`] / [`BackendPolicy`] vocabulary both use.

use super::error::StucError;
use std::time::Duration;
use stuc_obs::StageTimings;

/// The back-ends an [`crate::engine::Engine`] can dispatch to, and the
/// policy values a caller can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Dalvi–Suciu extensional safe-plan evaluation (TID + hierarchical
    /// self-join-free CQs only; no circuit is built at all).
    SafePlan,
    /// Exact weighted model counting by message passing over a tree
    /// decomposition of the lineage circuit (the paper's flagship method).
    TreewidthWmc,
    /// Shannon-expansion / DPLL counting with memoisation: no width
    /// assumption, exponential in the worst case.
    Dpll,
    /// Possible-world enumeration over the lineage variables: the paper's
    /// "cannot represent them all, much less query them" strawman, kept as a
    /// ground-truth baseline.
    Enumeration,
}

impl BackendKind {
    /// Stable human-readable name, used in reports and error messages.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::SafePlan => "safe-plan",
            BackendKind::TreewidthWmc => "treewidth-wmc",
            BackendKind::Dpll => "dpll",
            BackendKind::Enumeration => "enumeration",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the engine picks a back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendPolicy {
    /// Inspect the task and pick automatically: safe-plan when the query is
    /// hierarchical and self-join-free on a TID, else treewidth WMC when the
    /// lineage circuit's estimated width fits the budget, else DPLL.
    /// Enumeration is never auto-selected.
    #[default]
    Auto,
    /// Always use the given back-end; fail with
    /// [`crate::engine::StucError::BackendUnsupported`] if it cannot run.
    Fixed(BackendKind),
}

/// The outcome of one [`crate::engine::Engine::evaluate`] call, with full
/// provenance of *how* the answer was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The probability that the Boolean query holds.
    pub probability: f64,
    /// The back-end that actually computed the probability (after automatic
    /// selection, this is the choice that ran — not the policy requested).
    pub backend: BackendKind,
    /// Width of the tree decomposition of the representation's structure
    /// graph; `None` when no decomposition was needed (safe-plan path).
    pub decomposition_width: Option<usize>,
    /// Gate count of the lineage circuit handed to the back-end (0 on the
    /// safe-plan path, which never builds a circuit).
    pub circuit_gates: usize,
    /// Number of facts (relational) or nodes (PrXML) in the representation.
    pub fact_count: usize,
    /// Wall-clock time of the whole evaluation, including decomposition,
    /// lineage construction and back-end execution.
    pub wall_time: Duration,
    /// True when the structure decomposition came from the engine's cache
    /// (also set on a lineage-cache hit, which skips the decomposition
    /// lookup altogether).
    pub decomposition_cached: bool,
    /// True when the compiled lineage circuit came from the engine's
    /// lineage cache, skipping decomposition and lineage construction
    /// entirely — only the counting back-end ran.
    pub lineage_cached: bool,
    /// Human-readable trace of the strategy decisions taken (safe-plan
    /// refusals, width-budget fallbacks, lineage fallbacks).
    pub notes: Vec<String>,
    /// The cost-model route chosen for this evaluation, when it came in
    /// through the textual front-end ([`crate::engine::Engine::evaluate_text`]).
    /// `None` for programmatic [`crate::engine::Engine::evaluate`] calls,
    /// which bypass the cost model.
    pub route: Option<stuc_lang::cost::Route>,
    /// Process-unique id of this evaluation, correlating the report with
    /// the slow-query log and the span tracer.
    pub trace_id: u64,
    /// Per-stage wall-time breakdown (`parse`, `safe-plan`, `cache-lookup`,
    /// `decompose`, `compile-lineage`, `sweep`, …), recorded on the same
    /// monotonic clock as [`EvaluationReport::wall_time`], so
    /// `stage_timings.total() <= wall_time` holds by construction.
    pub stage_timings: StageTimings,
}

impl EvaluationReport {
    /// The query is possible (holds in some world).
    pub fn is_possible(&self) -> bool {
        self.probability > 0.0
    }

    /// The query is certain (holds in every world), up to rounding.
    pub fn is_certain(&self) -> bool {
        (self.probability - 1.0).abs() < 1e-9
    }

    /// Stable name of the back-end that ran.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }
}

/// The outcome of one [`crate::engine::Engine::evaluate_batch`] call:
/// per-query results in input order plus aggregate statistics about how the
/// batch was executed (worker threads, cache sharing).
///
/// A batch never fails as a whole — a query that errors (unparseable for
/// its backend, width budget exceeded under a fixed policy, …) carries its
/// [`StucError`] in its slot while the rest of the batch completes.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One result per input query, in the order the queries were given.
    pub reports: Vec<Result<EvaluationReport, StucError>>,
    /// Wall-clock time of the whole batch, spawn to join.
    pub wall_time: Duration,
    /// Number of worker threads the batch actually ran on.
    pub threads: usize,
    /// How many queries were answered from the compiled-lineage cache.
    pub lineage_cache_hits: usize,
    /// How many queries reused a cached (or lineage-cache-implied)
    /// structure decomposition.
    pub decomposition_cache_hits: usize,
}

impl BatchReport {
    /// Assembles a report from per-query results, deriving the aggregate
    /// cache statistics from the per-query flags.
    pub(crate) fn assemble(
        reports: Vec<Result<EvaluationReport, StucError>>,
        threads: usize,
        wall_time: Duration,
    ) -> Self {
        let lineage_cache_hits = reports
            .iter()
            .filter(|r| matches!(r, Ok(report) if report.lineage_cached))
            .count();
        let decomposition_cache_hits = reports
            .iter()
            .filter(|r| matches!(r, Ok(report) if report.decomposition_cached))
            .count();
        BatchReport {
            reports,
            wall_time,
            threads,
            lineage_cache_hits,
            decomposition_cache_hits,
        }
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Number of queries that evaluated successfully.
    pub fn succeeded(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of queries that failed.
    pub fn failed(&self) -> usize {
        self.len() - self.succeeded()
    }

    /// The probability of each query, `None` where evaluation failed.
    pub fn probabilities(&self) -> Vec<Option<f64>> {
        self.reports
            .iter()
            .map(|r| r.as_ref().ok().map(|report| report.probability))
            .collect()
    }

    /// Iterates over the successful reports in input order.
    pub fn successes(&self) -> impl Iterator<Item = &EvaluationReport> {
        self.reports.iter().filter_map(|r| r.as_ref().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(BackendKind::SafePlan.name(), "safe-plan");
        assert_eq!(BackendKind::TreewidthWmc.name(), "treewidth-wmc");
        assert_eq!(BackendKind::Dpll.to_string(), "dpll");
        assert_eq!(BackendKind::Enumeration.name(), "enumeration");
    }

    #[test]
    fn default_policy_is_auto() {
        assert_eq!(BackendPolicy::default(), BackendPolicy::Auto);
    }
}
