//! The probabilistic chase: bounded-depth forward application of
//! probabilistic existential rules with lineage tracking.

use crate::rule::Rule;
use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_data::instance::{FactId, Instance};
use stuc_data::tid::TidInstance;
use stuc_query::cq::{ConjunctiveQuery, Term};
use stuc_query::eval::all_matches;

/// Configuration of the probabilistic chase.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Maximum number of rounds (each round applies every rule to every new
    /// match found so far). Bounding the depth is the paper's "truncate it
    /// and control the error" option for possibly non-terminating chases.
    pub max_rounds: usize,
    /// Hard cap on the number of derived facts, as a safety valve.
    pub max_derived_facts: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 3,
            max_derived_facts: 10_000,
        }
    }
}

/// The outcome of a probabilistic chase: the completed instance, the shared
/// lineage circuit, one gate per fact, and the event probabilities.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The completed instance (base facts first, derived facts after).
    pub instance: Instance,
    /// Shared lineage circuit over base-fact events and rule-application
    /// events.
    pub circuit: Circuit,
    /// For every fact of `instance`, the gate computing its presence.
    pub fact_gates: Vec<GateId>,
    /// Probabilities of all events (base facts and rule applications).
    pub weights: Weights,
    /// Number of base facts (facts `0..base_fact_count` come from the input).
    pub base_fact_count: usize,
    /// Number of rule applications performed.
    pub applications: usize,
}

stuc_errors::stuc_error! {
    /// Errors raised by chase-based reasoning.
    #[derive(Clone, PartialEq)]
    pub enum ChaseError {
        /// The derived-fact budget was exhausted.
        TooManyDerivedFacts,
        /// A probability computation failed (width or size limits).
        Probability(String),
        /// The ambient evaluation budget (deadline or cancellation) tripped
        /// mid-chase.
        Budget(stuc_fault::BudgetError),
    }
    display {
        Self::TooManyDerivedFacts => "too many derived facts",
        Self::Probability(e) => "probability computation failed: {e}",
        Self::Budget(e) => "{e}",
    }
    from {
        stuc_fault::BudgetError => Budget,
    }
}

/// The probabilistic chase engine.
#[derive(Debug, Clone, Default)]
pub struct ProbabilisticChase {
    rules: Vec<Rule>,
    config: ChaseConfig,
}

impl ProbabilisticChase {
    /// Creates a chase engine with the given rules and default configuration.
    pub fn new(rules: Vec<Rule>) -> Self {
        ProbabilisticChase {
            rules,
            config: ChaseConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: ChaseConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the chase on a TID instance (each base fact keeps its own
    /// independent presence event).
    pub fn run(&self, base: &TidInstance) -> Result<ChaseResult, ChaseError> {
        let mut instance = Instance::new();
        let mut circuit = Circuit::new();
        let mut weights = Weights::new();
        let mut fact_gates: Vec<GateId> = Vec::new();
        // Derivations collected per fact (base facts have a single input gate).
        let mut derivations: BTreeMap<usize, Vec<GateId>> = BTreeMap::new();
        let mut next_event = 0usize;
        let mut next_null = 0usize;
        let mut applications = 0usize;

        // Import the base facts.
        for (fid, fact) in base.instance().facts() {
            let relation = base.instance().relation_name(fact.relation).to_string();
            let args: Vec<String> = fact
                .args
                .iter()
                .map(|&c| base.instance().constant_name(c).to_string())
                .collect();
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            instance.add_fact_named(&relation, &arg_refs);
            let event = VarId(next_event);
            next_event += 1;
            weights.set(event, base.probability(fid));
            let gate = circuit.add_input(event);
            fact_gates.push(gate);
        }
        let base_fact_count = fact_gates.len();

        // Applied matches, identified by (rule index, witness facts, frontier bindings).
        type AppliedMatch = (usize, Vec<FactId>, Vec<(String, String)>);
        let mut applied: BTreeSet<AppliedMatch> = BTreeSet::new();

        let mut budget_gate = stuc_fault::budget::Gate::every(64);
        for _round in 0..self.config.max_rounds {
            stuc_fault::budget::check("chase round")?;
            let mut new_facts_this_round = 0usize;
            for (rule_index, rule) in self.rules.iter().enumerate() {
                let matches = all_matches(&instance, &rule.body_query());
                for m in matches {
                    budget_gate.check("chase matches")?;
                    let bindings: Vec<(String, String)> = m
                        .assignment
                        .iter()
                        .map(|(v, &c)| (v.clone(), instance.constant_name(c).to_string()))
                        .collect();
                    let key = (rule_index, m.witnesses.clone(), bindings.clone());
                    if applied.contains(&key) {
                        continue;
                    }
                    applied.insert(key);
                    applications += 1;

                    // Fresh application event.
                    let event = VarId(next_event);
                    next_event += 1;
                    weights.set(event, rule.confidence);
                    let event_gate = circuit.add_input(event);

                    // Derivation gate: premises AND the application event.
                    let mut premise_gates: Vec<GateId> =
                        m.witnesses.iter().map(|&f| fact_gates[f.0]).collect();
                    premise_gates.push(event_gate);
                    premise_gates.sort();
                    premise_gates.dedup();
                    let derivation_gate = circuit.add_and(premise_gates);

                    // Instantiate the head, inventing nulls for existential variables.
                    let mut null_names: BTreeMap<String, String> = BTreeMap::new();
                    for head_atom in &rule.head {
                        let args: Vec<String> = head_atom
                            .args
                            .iter()
                            .map(|t| match t {
                                Term::Const(c) => c.clone(),
                                Term::Var(v) => {
                                    if let Some((_, constant)) =
                                        bindings.iter().find(|(name, _)| name == v)
                                    {
                                        constant.clone()
                                    } else {
                                        null_names
                                            .entry(v.clone())
                                            .or_insert_with(|| {
                                                let name = format!("_null{next_null}");
                                                next_null += 1;
                                                name
                                            })
                                            .clone()
                                    }
                                }
                            })
                            .collect();
                        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();

                        // Reuse an existing identical fact if the head has no
                        // existential variables; otherwise always create a
                        // fresh fact (fresh nulls are never equal to anything).
                        let relation_id = instance.find_relation(&head_atom.relation);
                        let existing = if null_names.is_empty() {
                            relation_id.and_then(|r| {
                                instance.facts_of(r).into_iter().find(|&f| {
                                    let fact = instance.fact(f);
                                    fact.args.len() == args.len()
                                        && fact
                                            .args
                                            .iter()
                                            .zip(&args)
                                            .all(|(&c, a)| instance.constant_name(c) == a)
                                })
                            })
                        } else {
                            None
                        };
                        match existing {
                            Some(f) => {
                                derivations.entry(f.0).or_default().push(derivation_gate);
                            }
                            None => {
                                if fact_gates.len() - base_fact_count
                                    >= self.config.max_derived_facts
                                {
                                    return Err(ChaseError::TooManyDerivedFacts);
                                }
                                instance.add_fact_named(&head_atom.relation, &arg_refs);
                                fact_gates.push(derivation_gate);
                                derivations
                                    .entry(fact_gates.len() - 1)
                                    .or_default()
                                    .push(derivation_gate);
                                new_facts_this_round += 1;
                            }
                        }
                    }
                }
            }
            if new_facts_this_round == 0 {
                break;
            }
        }

        // Finalise gates: facts with several derivations get an OR.
        for (fact, gates) in &derivations {
            if *fact < base_fact_count {
                // Base facts additionally stay present by their own event.
                let mut inputs = vec![fact_gates[*fact]];
                inputs.extend(gates.iter().copied());
                inputs.sort();
                inputs.dedup();
                fact_gates[*fact] = circuit.add_or(inputs);
            } else if gates.len() > 1 {
                let mut inputs = gates.clone();
                inputs.sort();
                inputs.dedup();
                fact_gates[*fact] = circuit.add_or(inputs);
            }
        }

        Ok(ChaseResult {
            instance,
            circuit,
            fact_gates,
            weights,
            base_fact_count,
            applications,
        })
    }
}

impl ChaseResult {
    /// The probability that a given fact (base or derived) is present.
    pub fn fact_probability(&self, fact: FactId) -> Result<f64, ChaseError> {
        let mut circuit = self.circuit.clone();
        circuit.set_output(self.fact_gates[fact.0]);
        evaluate(&circuit, &self.weights)
    }

    /// The probability that a Boolean conjunctive query holds on the
    /// completed instance (base and derived facts together).
    pub fn query_probability(&self, query: &ConjunctiveQuery) -> Result<f64, ChaseError> {
        let mut circuit = self.circuit.clone();
        let matches = all_matches(&self.instance, query);
        let mut disjuncts = Vec::with_capacity(matches.len());
        for m in matches {
            let mut gates: Vec<GateId> =
                m.witnesses.iter().map(|&f| self.fact_gates[f.0]).collect();
            gates.sort();
            gates.dedup();
            disjuncts.push(circuit.add_and(gates));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        evaluate(&circuit, &self.weights)
    }

    /// Number of derived (non-base) facts.
    pub fn derived_fact_count(&self) -> usize {
        self.fact_gates.len() - self.base_fact_count
    }
}

/// Evaluates a lineage circuit with the treewidth back-end, falling back to
/// DPLL when the circuit is too wide.
fn evaluate(circuit: &Circuit, weights: &Weights) -> Result<f64, ChaseError> {
    match TreewidthWmc::default().probability(circuit, weights) {
        Ok(p) => Ok(p),
        Err(_) => DpllCounter::default()
            .probability(circuit, weights)
            .map_err(|e| ChaseError::Probability(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> TidInstance {
        let mut tid = TidInstance::new();
        tid.add_fact_named("Citizen", &["alice", "france"], 0.9);
        tid.add_fact_named("Citizen", &["bob", "france"], 0.6);
        tid.add_fact_named("OfficialLanguage", &["france", "french"], 1.0);
        tid
    }

    #[test]
    fn single_rule_derivation_probability() {
        // Citizens usually live in their country (confidence 0.8).
        let rule = Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap();
        let chase = ProbabilisticChase::new(vec![rule]);
        let result = chase.run(&kb()).unwrap();
        assert_eq!(result.derived_fact_count(), 2);
        // P(Lives(alice, france)) = 0.9 · 0.8.
        let lives = result.instance.find_relation("Lives").unwrap();
        let alice_lives = result
            .instance
            .facts_of(lives)
            .into_iter()
            .find(|&f| result.instance.render_fact(f).contains("alice"))
            .unwrap();
        let p = result.fact_probability(alice_lives).unwrap();
        assert!((p - 0.72).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn chained_rules_multiply_confidences() {
        // Citizens usually live in the country; residents usually speak the
        // official language.
        let rules = vec![
            Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap(),
            Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.7).unwrap(),
        ];
        let chase = ProbabilisticChase::new(rules);
        let result = chase.run(&kb()).unwrap();
        let q = ConjunctiveQuery::parse("Speaks(\"alice\", \"french\")").unwrap();
        let p = result.query_probability(&q).unwrap();
        assert!((p - 0.9 * 0.8 * 0.7).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn existential_rules_invent_nulls() {
        let rule = Rule::parse("CoAuthored(x, y, p) :- Advises(x, y)", 0.5).unwrap();
        let mut tid = TidInstance::new();
        tid.add_fact_named("Advises", &["prof", "student"], 1.0);
        let chase = ProbabilisticChase::new(vec![rule]);
        let result = chase.run(&tid).unwrap();
        assert_eq!(result.derived_fact_count(), 1);
        let coauthored = result.instance.find_relation("CoAuthored").unwrap();
        let fact = result.instance.facts_of(coauthored)[0];
        assert!(result.instance.render_fact(fact).contains("_null"));
        let p = result.fact_probability(fact).unwrap();
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_derivations_combine_by_or() {
        // Two independent ways to derive Reachable(a, c).
        let rules = vec![Rule::parse("Reachable(x, z) :- Edge(x, y), Edge(y, z)", 1.0).unwrap()];
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b1"], 0.5);
        tid.add_fact_named("Edge", &["b1", "c"], 0.5);
        tid.add_fact_named("Edge", &["a", "b2"], 0.5);
        tid.add_fact_named("Edge", &["b2", "c"], 0.5);
        let chase = ProbabilisticChase::new(rules);
        let result = chase.run(&tid).unwrap();
        let q = ConjunctiveQuery::parse("Reachable(\"a\", \"c\")").unwrap();
        let p = result.query_probability(&q).unwrap();
        // Two independent paths each with probability 0.25: 1 - 0.75² = 0.4375.
        assert!((p - 0.4375).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn transitive_rules_respect_round_bound() {
        let rules = vec![Rule::parse("Edge(x, z) :- Edge(x, y), Edge(y, z)", 1.0).unwrap()];
        let mut tid = TidInstance::new();
        for i in 0..4 {
            tid.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)], 1.0);
        }
        let one_round = ProbabilisticChase::new(rules.clone()).with_config(ChaseConfig {
            max_rounds: 1,
            max_derived_facts: 100,
        });
        let many_rounds = ProbabilisticChase::new(rules).with_config(ChaseConfig {
            max_rounds: 5,
            max_derived_facts: 100,
        });
        let few = one_round.run(&tid).unwrap().derived_fact_count();
        let more = many_rounds.run(&tid).unwrap().derived_fact_count();
        assert!(more >= few);
        // Full transitive closure of a 5-vertex path adds 6 pairs.
        assert_eq!(more, 6);
    }

    #[test]
    fn derived_fact_budget_is_enforced() {
        let rules = vec![Rule::parse("Bigger(x, y) :- Bigger(y, x)", 1.0).unwrap()];
        let mut tid = TidInstance::new();
        tid.add_fact_named("Bigger", &["a", "b"], 1.0);
        // The rule flips arguments forever (fresh matches each round);
        // a tiny budget must stop it.
        let chase = ProbabilisticChase::new(rules).with_config(ChaseConfig {
            max_rounds: 50,
            max_derived_facts: 1,
        });
        // Either it converges quickly (the flipped fact already exists) or
        // the budget triggers; both are acceptable, but it must not hang.
        let _ = chase.run(&tid);
    }

    #[test]
    fn base_facts_keep_their_probability_without_rules() {
        let chase = ProbabilisticChase::new(vec![]);
        let result = chase.run(&kb()).unwrap();
        assert_eq!(result.derived_fact_count(), 0);
        let p = result.fact_probability(FactId(0)).unwrap();
        assert!((p - 0.9).abs() < 1e-9);
    }
}
