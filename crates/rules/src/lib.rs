//! # stuc-rules — reasoning under probabilistic rules
//!
//! The paper's Section 2.3 vision: completing an incomplete knowledge base by
//! applying *soft* (probabilistic) deduction rules, where each rule states
//! that its head *usually* follows from its body — the rule applies, on
//! average, in a given fraction of cases, independently across matches.
//!
//! This crate implements that semantics for existential rules
//! (tuple-generating dependencies) with a bounded-depth chase:
//!
//! * every rule application (a homomorphism of the rule body into the known
//!   facts) fires with its own fresh independent event of probability equal
//!   to the rule's confidence;
//! * derived facts receive *lineage circuits*: the OR over their derivations
//!   of the AND of the premises' lineages and the application event;
//! * head variables that do not occur in the body are instantiated with
//!   fresh labelled nulls (existential semantics);
//! * probabilities of derived facts and of queries over the completed
//!   instance are computed with the `stuc-circuit` back-ends, so the
//!   treewidth-based tractability transfers whenever the derivations stay
//!   tree-like (experiment E10).
//!
//! Around the probabilistic chase, the crate also covers the neighbouring
//! pieces of the paper's Section 2.3 programme:
//!
//! * [`constraints`] — the classical baseline the soft-rule vision
//!   generalises: *hard* rules, the certain chase, and open-world certain
//!   answers;
//! * [`mining`] — producing soft rules from the data by association-rule
//!   mining (support / confidence / head coverage), the paper's suggested
//!   source of rule confidences;
//! * [`truncation`] — truncating a possibly non-terminating chase with
//!   certified lower/upper bounds on query probabilities ("truncate it and
//!   control the error").

pub mod chase;
pub mod constraints;
pub mod mining;
pub mod rule;
pub mod truncation;

pub use chase::{ChaseConfig, ChaseResult, ProbabilisticChase};
pub use constraints::HardConstraints;
pub use mining::{MinedRule, RuleMiner};
pub use rule::Rule;
pub use truncation::{TruncatedChase, TruncationReport};
