//! Probabilistic existential rules.

use stuc_query::cq::{Atom, ConjunctiveQuery, QueryParseError, Term};

/// A probabilistic existential rule `body → head` with a confidence.
///
/// Variables occurring in the head but not in the body are existential: each
/// application invents a fresh null for them (e.g. "a PhD student and their
/// advisor have probably co-authored *some* paper").
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The body atoms (the premises).
    pub body: Vec<Atom>,
    /// The head atoms (the conclusions).
    pub head: Vec<Atom>,
    /// The probability that any given match of the body actually produces
    /// the head facts (the "usually applies" semantics of the paper).
    pub confidence: f64,
}

impl Rule {
    /// Parses a rule of the form `head :- body` (both comma-separated atom
    /// lists, same atom syntax as conjunctive queries) with a confidence.
    ///
    /// Example: `Lives(x, y) :- Citizen(x, y)` with confidence `0.8`.
    pub fn parse(text: &str, confidence: f64) -> Result<Rule, QueryParseError> {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence {confidence} outside [0, 1]"
        );
        let (head_text, body_text) = text
            .split_once(":-")
            .ok_or_else(|| QueryParseError::Syntax("expected ':-' in rule".to_string()))?;
        let head = ConjunctiveQuery::parse(head_text.trim())?.atoms;
        let body = ConjunctiveQuery::parse(body_text.trim())?.atoms;
        Ok(Rule {
            body,
            head,
            confidence,
        })
    }

    /// The body as a Boolean conjunctive query (used to find matches).
    pub fn body_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(self.body.clone())
    }

    /// The head variables that do not occur in the body (existential
    /// variables, instantiated by fresh nulls at application time).
    pub fn existential_variables(&self) -> Vec<String> {
        let body_vars: std::collections::BTreeSet<String> =
            self.body.iter().flat_map(|a| a.variables()).collect();
        let mut existential: Vec<String> = self
            .head
            .iter()
            .flat_map(|a| a.variables())
            .filter(|v| !body_vars.contains(v))
            .collect();
        existential.sort();
        existential.dedup();
        existential
    }

    /// True if the rule is *guarded*: some body atom contains every body
    /// variable (the fragment for which the paper hopes to preserve
    /// treewidth-based tractability).
    pub fn is_guarded(&self) -> bool {
        let body_vars: std::collections::BTreeSet<String> =
            self.body.iter().flat_map(|a| a.variables()).collect();
        self.body.iter().any(|a| a.variables() == body_vars)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(
            f,
            "{} :- {} [{}]",
            head.join(", "),
            body.join(", "),
            self.confidence
        )
    }
}

/// Convenience: a term that is a variable (used when building rules in code).
pub fn var(name: &str) -> Term {
    Term::Var(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_rule() {
        let rule = Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap();
        assert_eq!(rule.body.len(), 1);
        assert_eq!(rule.head.len(), 1);
        assert_eq!(rule.confidence, 0.8);
        assert!(rule.existential_variables().is_empty());
        assert!(rule.is_guarded());
    }

    #[test]
    fn existential_variables_are_detected() {
        let rule = Rule::parse("CoAuthored(x, y, p) :- Advises(x, y)", 0.7).unwrap();
        assert_eq!(rule.existential_variables(), vec!["p".to_string()]);
    }

    #[test]
    fn guardedness() {
        let guarded = Rule::parse("R(x) :- S(x, y), T(y)", 0.5);
        // S(x, y) does not contain all body vars? It contains x and y — T(y) ⊆ it.
        assert!(guarded.unwrap().is_guarded());
        let unguarded = Rule::parse("R(x) :- S(x, y), T(y, z)", 0.5).unwrap();
        assert!(!unguarded.is_guarded());
    }

    #[test]
    fn parse_errors() {
        assert!(Rule::parse("no separator here", 0.5).is_err());
        assert!(Rule::parse("R(x) :- S(x", 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_confidence_panics() {
        let _ = Rule::parse("R(x) :- S(x)", 1.5);
    }

    #[test]
    fn display_shows_rule() {
        let rule = Rule::parse("R(x) :- S(x)", 0.25).unwrap();
        assert_eq!(rule.to_string(), "R(x) :- S(x) [0.25]");
    }
}
