//! Hard constraints and open-world query answering.
//!
//! The paper's Section 2.3 starts from the classical setting its soft-rule
//! vision generalises: "if we know some hard constraints about the KB (e.g.,
//! the 'located in' relation is transitive), it makes more sense to say that a
//! query is true if it is certain under the constraints, namely, if it is
//! satisfied by all completions of the KB that obey the constraints. This is
//! called open world query answering."
//!
//! This module implements that baseline: a set of *hard* existential rules, a
//! bounded certain chase that completes an instance with everything the rules
//! entail (inventing labelled nulls for existential variables), and certain
//! answering of conjunctive queries on the completion. Probabilistic rules
//! (the paper's actual proposal) live in [`crate::chase`]; comparing the two
//! on the same knowledge base is experiment material for the benchmarks and
//! examples.

use std::collections::BTreeMap;

use crate::rule::Rule;
use stuc_data::instance::Instance;
use stuc_query::cq::{ConjunctiveQuery, Term};
use stuc_query::eval::{all_matches, query_holds};

stuc_errors::stuc_error! {
    /// Errors raised by hard-constraint reasoning.
    #[derive(Clone, PartialEq, Eq)]
    pub enum ConstraintError {
        /// The chase exceeded its fact budget without terminating.
        ChaseBudgetExceeded { facts: usize, limit: usize },
    }
    display {
        Self::ChaseBudgetExceeded { facts, limit } => "certain chase produced {facts} facts, exceeding the limit of {limit}",
    }
}

/// A set of hard existential rules with a bounded certain chase.
#[derive(Debug, Clone)]
pub struct HardConstraints {
    rules: Vec<Rule>,
    /// Maximum number of chase rounds.
    pub max_rounds: usize,
    /// Hard cap on the number of facts of the completion.
    pub max_facts: usize,
}

impl HardConstraints {
    /// Creates a constraint set. The rules' confidences are ignored: every
    /// rule is treated as always applying.
    pub fn new(rules: Vec<Rule>) -> Self {
        HardConstraints {
            rules,
            max_rounds: 8,
            max_facts: 50_000,
        }
    }

    /// Overrides the round bound.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The rules of the constraint set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Completes the instance with everything the rules entail (the certain
    /// chase, restricted chase variant: a rule is not fired when its head is
    /// already satisfied by existing facts). Existential head variables are
    /// instantiated by fresh labelled nulls named `_null<N>`.
    pub fn saturate(&self, instance: &Instance) -> Result<Instance, ConstraintError> {
        let mut completion = instance.clone();
        let mut next_null = 0usize;
        for _ in 0..self.max_rounds {
            let mut changed = false;
            for rule in &self.rules {
                let matches = all_matches(&completion, &rule.body_query());
                for homomorphism in matches {
                    // Restricted chase: skip the application when the head is
                    // already satisfiable with the current bindings.
                    if head_satisfied(&completion, rule, &homomorphism.assignment) {
                        continue;
                    }
                    let mut null_names: BTreeMap<String, String> = BTreeMap::new();
                    for head_atom in &rule.head {
                        let arguments: Vec<String> = head_atom
                            .args
                            .iter()
                            .map(|term| match term {
                                Term::Const(constant) => constant.clone(),
                                Term::Var(variable) => {
                                    if let Some(&constant) = homomorphism.assignment.get(variable) {
                                        completion.constant_name(constant).to_string()
                                    } else {
                                        null_names
                                            .entry(variable.clone())
                                            .or_insert_with(|| {
                                                let name = format!("_null{next_null}");
                                                next_null += 1;
                                                name
                                            })
                                            .clone()
                                    }
                                }
                            })
                            .collect();
                        let argument_refs: Vec<&str> =
                            arguments.iter().map(String::as_str).collect();
                        let relation = completion.relation(&head_atom.relation);
                        let constants: Vec<_> = argument_refs
                            .iter()
                            .map(|a| completion.constant(a))
                            .collect();
                        if !completion.contains(relation, &constants) {
                            completion.add_fact(relation, constants);
                            changed = true;
                        }
                    }
                    if completion.fact_count() > self.max_facts {
                        return Err(ConstraintError::ChaseBudgetExceeded {
                            facts: completion.fact_count(),
                            limit: self.max_facts,
                        });
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(completion)
    }

    /// Open-world certain answering of a Boolean query: true iff the query
    /// holds on the chased completion of the instance (hence in every model
    /// of the instance and the rules, up to the round bound).
    pub fn certain(
        &self,
        instance: &Instance,
        query: &ConjunctiveQuery,
    ) -> Result<bool, ConstraintError> {
        let completion = self.saturate(instance)?;
        Ok(query_holds(&completion, query))
    }

    /// Certain answers of a non-Boolean query: the answers over the chased
    /// completion that do not mention invented nulls (a null is not a certain
    /// constant, only a witness of existence).
    pub fn certain_answers(
        &self,
        instance: &Instance,
        query: &ConjunctiveQuery,
    ) -> Result<Vec<Vec<String>>, ConstraintError> {
        let completion = self.saturate(instance)?;
        let mut answers: Vec<Vec<String>> = stuc_query::eval::all_answers(&completion, query)
            .into_iter()
            .map(|answer| {
                answer
                    .iter()
                    .map(|&constant| completion.constant_name(constant).to_string())
                    .collect::<Vec<String>>()
            })
            .filter(|answer| answer.iter().all(|constant| !constant.starts_with("_null")))
            .collect();
        answers.sort();
        answers.dedup();
        Ok(answers)
    }
}

/// True if the rule head is already satisfied under the given body bindings
/// (checking only the frontier variables; existential positions may be
/// witnessed by any constant).
fn head_satisfied(
    completion: &Instance,
    rule: &Rule,
    assignment: &BTreeMap<String, stuc_data::instance::ConstId>,
) -> bool {
    // Build a conjunctive query from the head with frontier variables
    // replaced by their bound constants and existential variables left free.
    let atoms = rule
        .head
        .iter()
        .map(|atom| stuc_query::cq::Atom {
            relation: atom.relation.clone(),
            args: atom
                .args
                .iter()
                .map(|term| match term {
                    Term::Const(constant) => Term::Const(constant.clone()),
                    Term::Var(variable) => match assignment.get(variable) {
                        Some(&constant) => {
                            Term::Const(completion.constant_name(constant).to_string())
                        }
                        None => Term::Var(variable.clone()),
                    },
                })
                .collect(),
        })
        .collect();
    query_holds(completion, &ConjunctiveQuery::boolean(atoms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn located_in_kb() -> Instance {
        let mut instance = Instance::new();
        instance.add_fact_named("LocatedIn", &["paris", "france"]);
        instance.add_fact_named("LocatedIn", &["france", "europe"]);
        instance.add_fact_named("LocatedIn", &["tokyo", "japan"]);
        instance
    }

    fn transitivity() -> Rule {
        Rule::parse("LocatedIn(x, z) :- LocatedIn(x, y), LocatedIn(y, z)", 1.0).unwrap()
    }

    #[test]
    fn transitive_constraint_completes_the_kb() {
        let constraints = HardConstraints::new(vec![transitivity()]);
        let completion = constraints.saturate(&located_in_kb()).unwrap();
        let query = ConjunctiveQuery::parse("LocatedIn(\"paris\", \"europe\")").unwrap();
        assert!(query_holds(&completion, &query));
    }

    #[test]
    fn certain_answering_uses_the_completion() {
        let constraints = HardConstraints::new(vec![transitivity()]);
        let certain = constraints
            .certain(
                &located_in_kb(),
                &ConjunctiveQuery::parse("LocatedIn(\"paris\", \"europe\")").unwrap(),
            )
            .unwrap();
        assert!(certain);
        let not_certain = constraints
            .certain(
                &located_in_kb(),
                &ConjunctiveQuery::parse("LocatedIn(\"tokyo\", \"europe\")").unwrap(),
            )
            .unwrap();
        assert!(!not_certain);
    }

    #[test]
    fn existential_rules_fire_but_nulls_are_not_certain_answers() {
        // Every city is located in some country.
        let rule = Rule::parse("LocatedIn(x, c) :- City(x)", 1.0).unwrap();
        let mut instance = Instance::new();
        instance.add_fact_named("City", &["paris"]);
        instance.add_fact_named("City", &["lyon"]);
        instance.add_fact_named("LocatedIn", &["paris", "france"]);
        let constraints = HardConstraints::new(vec![rule]);
        // Boolean query "lyon is located somewhere" is certain (witnessed by
        // a null) …
        let certain = constraints
            .certain(
                &instance,
                &ConjunctiveQuery::parse("LocatedIn(\"lyon\", x)").unwrap(),
            )
            .unwrap();
        assert!(certain);
        // … but the null is not a certain *answer*.
        let answers = constraints
            .certain_answers(
                &instance,
                &ConjunctiveQuery::parse("ans(y) <- LocatedIn(\"lyon\", y)").unwrap(),
            )
            .unwrap();
        assert!(answers.is_empty());
        let paris_answers = constraints
            .certain_answers(
                &instance,
                &ConjunctiveQuery::parse("ans(y) <- LocatedIn(\"paris\", y)").unwrap(),
            )
            .unwrap();
        assert_eq!(paris_answers, vec![vec!["france".to_string()]]);
    }

    #[test]
    fn restricted_chase_does_not_invent_redundant_nulls() {
        // paris already has a country: the existential rule must not add a
        // second (null) one.
        let rule = Rule::parse("LocatedIn(x, c) :- City(x)", 1.0).unwrap();
        let mut instance = Instance::new();
        instance.add_fact_named("City", &["paris"]);
        instance.add_fact_named("LocatedIn", &["paris", "france"]);
        let constraints = HardConstraints::new(vec![rule]);
        let completion = constraints.saturate(&instance).unwrap();
        assert_eq!(completion.fact_count(), 2);
    }

    #[test]
    fn chase_budget_is_enforced() {
        // A rule that keeps inventing new elements: x is succeeded by some y,
        // which is itself a Node, forever.
        let rules = vec![Rule::parse("Succ(x, y), Node(y) :- Node(x)", 1.0).unwrap()];
        let mut instance = Instance::new();
        instance.add_fact_named("Node", &["n0"]);
        let constraints = HardConstraints {
            rules,
            max_rounds: 1_000,
            max_facts: 50,
        };
        assert!(matches!(
            constraints.saturate(&instance),
            Err(ConstraintError::ChaseBudgetExceeded { .. })
        ));
    }

    #[test]
    fn round_bound_truncates_non_terminating_chases() {
        let rules = vec![Rule::parse("Succ(x, y), Node(y) :- Node(x)", 1.0).unwrap()];
        let mut instance = Instance::new();
        instance.add_fact_named("Node", &["n0"]);
        let constraints = HardConstraints::new(rules).with_max_rounds(3);
        let completion = constraints.saturate(&instance).unwrap();
        // Each round adds one Succ fact and one Node fact.
        assert_eq!(completion.fact_count(), 1 + 2 * 3);
    }

    #[test]
    fn no_rules_means_plain_query_evaluation() {
        let constraints = HardConstraints::new(vec![]);
        let instance = located_in_kb();
        let held = constraints
            .certain(
                &instance,
                &ConjunctiveQuery::parse("LocatedIn(\"paris\", \"france\")").unwrap(),
            )
            .unwrap();
        assert!(held);
        let not_held = constraints
            .certain(
                &instance,
                &ConjunctiveQuery::parse("LocatedIn(\"paris\", \"europe\")").unwrap(),
            )
            .unwrap();
        assert!(!not_held);
    }
}
