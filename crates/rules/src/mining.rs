//! Association-rule mining: producing probabilistic rules from the data.
//!
//! The paper's Section 2.3 says that soft rules "could be produced by
//! association rule mining \[3\], or using KB-specific methods \[23\]" (AMIE).
//! This module closes that loop: it mines candidate existential-free rules
//! from a plain instance, scores them by support and confidence, and emits
//! them as [`Rule`]s whose confidence is the observed conditional frequency —
//! exactly the "applies, on average, in X% of cases" semantics the paper
//! argues for.
//!
//! The candidate shapes are the ones AMIE-style miners consider first:
//!
//! * projection rules `S(x) :- R(x)` and `S(x) :- R(x, y)` / `S(y) :- R(x, y)`;
//! * translation rules `S(x, y) :- R(x, y)` and inversion `S(y, x) :- R(x, y)`;
//! * path (composition) rules `S(x, z) :- R(x, y), Q(y, z)`.

use std::collections::BTreeSet;

use crate::rule::Rule;
use stuc_data::instance::Instance;
use stuc_query::cq::{Atom, ConjunctiveQuery, Term};
use stuc_query::eval::all_matches;

/// A mined rule together with its quality measures.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRule {
    /// The rule, with its confidence set to the observed confidence.
    pub rule: Rule,
    /// Number of body matches whose head fact is present (the support).
    pub support: usize,
    /// Total number of body matches.
    pub body_matches: usize,
    /// Support divided by the number of facts of the head relation
    /// (AMIE's head coverage).
    pub head_coverage: f64,
}

impl MinedRule {
    /// The observed confidence (support / body matches).
    pub fn confidence(&self) -> f64 {
        self.rule.confidence
    }
}

/// Configuration of the rule miner.
#[derive(Debug, Clone)]
pub struct RuleMiner {
    /// Minimum number of positive examples a rule must have.
    pub min_support: usize,
    /// Minimum observed confidence.
    pub min_confidence: f64,
    /// Whether two-atom (path / composition) bodies are explored.
    pub mine_path_rules: bool,
}

impl Default for RuleMiner {
    fn default() -> Self {
        RuleMiner {
            min_support: 2,
            min_confidence: 0.5,
            mine_path_rules: true,
        }
    }
}

impl RuleMiner {
    /// Mines rules from the instance, sorted by decreasing confidence then
    /// support. Rules whose head relation equals their (single) body relation
    /// are skipped (they are trivially confident).
    pub fn mine(&self, instance: &Instance) -> Vec<MinedRule> {
        let mut mined = Vec::new();
        let relations: Vec<(String, usize)> = relation_arities(instance);
        for (head_name, head_arity) in &relations {
            for candidate in self.candidate_bodies(&relations, head_name, *head_arity) {
                if let Some(result) = self.score(instance, head_name, &candidate) {
                    mined.push(result);
                }
            }
        }
        mined.sort_by(|a, b| {
            b.rule
                .confidence
                .partial_cmp(&a.rule.confidence)
                .expect("confidences are finite")
                .then(b.support.cmp(&a.support))
        });
        mined
    }

    /// The candidate rule bodies for a given head, as `(body atoms, head args)`.
    fn candidate_bodies(
        &self,
        relations: &[(String, usize)],
        head_name: &str,
        head_arity: usize,
    ) -> Vec<(Vec<Atom>, Vec<Term>)> {
        let x = || Term::Var("x".to_string());
        let y = || Term::Var("y".to_string());
        let z = || Term::Var("z".to_string());
        let mut candidates = Vec::new();
        for (body_name, body_arity) in relations {
            if body_name == head_name {
                continue;
            }
            match (body_arity, head_arity) {
                (1, 1) => {
                    candidates.push((
                        vec![Atom {
                            relation: body_name.clone(),
                            args: vec![x()],
                        }],
                        vec![x()],
                    ));
                }
                (2, 1) => {
                    candidates.push((
                        vec![Atom {
                            relation: body_name.clone(),
                            args: vec![x(), y()],
                        }],
                        vec![x()],
                    ));
                    candidates.push((
                        vec![Atom {
                            relation: body_name.clone(),
                            args: vec![x(), y()],
                        }],
                        vec![y()],
                    ));
                }
                (2, 2) => {
                    candidates.push((
                        vec![Atom {
                            relation: body_name.clone(),
                            args: vec![x(), y()],
                        }],
                        vec![x(), y()],
                    ));
                    candidates.push((
                        vec![Atom {
                            relation: body_name.clone(),
                            args: vec![x(), y()],
                        }],
                        vec![y(), x()],
                    ));
                }
                _ => {}
            }
        }
        if self.mine_path_rules && head_arity == 2 {
            for (first, first_arity) in relations {
                if *first_arity != 2 {
                    continue;
                }
                for (second, second_arity) in relations {
                    if *second_arity != 2 {
                        continue;
                    }
                    if first == head_name && second == head_name {
                        continue;
                    }
                    candidates.push((
                        vec![
                            Atom {
                                relation: first.clone(),
                                args: vec![x(), y()],
                            },
                            Atom {
                                relation: second.clone(),
                                args: vec![y(), z()],
                            },
                        ],
                        vec![x(), z()],
                    ));
                }
            }
        }
        candidates
    }

    /// Scores one candidate rule; returns it if it passes the thresholds.
    fn score(
        &self,
        instance: &Instance,
        head_name: &str,
        candidate: &(Vec<Atom>, Vec<Term>),
    ) -> Option<MinedRule> {
        let (body, head_args) = candidate;
        let head = Atom {
            relation: head_name.to_string(),
            args: head_args.clone(),
        };
        let body_query = ConjunctiveQuery::boolean(body.clone());
        let matches = all_matches(instance, &body_query);
        if matches.is_empty() {
            return None;
        }
        let head_relation = instance.find_relation(head_name)?;
        let head_facts = instance.facts_of(head_relation);
        if head_facts.is_empty() {
            return None;
        }
        // Distinct head instantiations produced by the body, and how many of
        // them are actual facts.
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut support_instantiations: BTreeSet<Vec<String>> = BTreeSet::new();
        for homomorphism in &matches {
            let instantiation: Option<Vec<String>> = head_args
                .iter()
                .map(|term| match term {
                    Term::Const(constant) => Some(constant.clone()),
                    Term::Var(variable) => homomorphism
                        .assignment
                        .get(variable)
                        .map(|&c| instance.constant_name(c).to_string()),
                })
                .collect();
            let Some(instantiation) = instantiation else {
                continue;
            };
            let holds = head_facts.iter().any(|&fact| {
                let fact = instance.fact(fact);
                fact.args.len() == instantiation.len()
                    && fact
                        .args
                        .iter()
                        .zip(&instantiation)
                        .all(|(&c, name)| instance.constant_name(c) == name)
            });
            if holds {
                support_instantiations.insert(instantiation.clone());
            }
            seen.insert(instantiation);
        }
        let body_matches = seen.len();
        let support = support_instantiations.len();
        if body_matches == 0 || support < self.min_support {
            return None;
        }
        let confidence = support as f64 / body_matches as f64;
        if confidence < self.min_confidence {
            return None;
        }
        let rule = Rule {
            body: body.clone(),
            head: vec![head],
            confidence,
        };
        let head_coverage = support as f64 / head_facts.len() as f64;
        Some(MinedRule {
            rule,
            support,
            body_matches,
            head_coverage,
        })
    }
}

fn relation_arities(instance: &Instance) -> Vec<(String, usize)> {
    let mut relations: Vec<(String, usize)> = Vec::new();
    for (_, fact) in instance.facts() {
        let name = instance.relation_name(fact.relation).to_string();
        if !relations.iter().any(|(existing, _)| existing == &name) {
            relations.push((name, fact.args.len()));
        }
    }
    relations.sort();
    relations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small knowledge base where citizens usually (but not always) live in
    /// their country, and the capital relation composes with residence.
    fn kb() -> Instance {
        let mut instance = Instance::new();
        for (person, country) in [
            ("alice", "france"),
            ("bob", "france"),
            ("carol", "japan"),
            ("dave", "japan"),
        ] {
            instance.add_fact_named("Citizen", &[person, country]);
        }
        // Three of the four citizens live in their country of citizenship.
        instance.add_fact_named("Lives", &["alice", "france"]);
        instance.add_fact_named("Lives", &["bob", "france"]);
        instance.add_fact_named("Lives", &["carol", "japan"]);
        // dave lives elsewhere.
        instance.add_fact_named("Lives", &["dave", "germany"]);
        instance
    }

    #[test]
    fn translation_rule_is_mined_with_observed_confidence() {
        let miner = RuleMiner {
            min_support: 2,
            min_confidence: 0.5,
            mine_path_rules: false,
        };
        let mined = miner.mine(&kb());
        let lives_rule = mined
            .iter()
            .find(|m| {
                m.rule.head[0].relation == "Lives"
                    && m.rule.body.len() == 1
                    && m.rule.body[0].relation == "Citizen"
                    && m.rule.head[0].args == m.rule.body[0].args
            })
            .expect("Lives(x, y) :- Citizen(x, y) should be mined");
        assert_eq!(lives_rule.support, 3);
        assert_eq!(lives_rule.body_matches, 4);
        assert!((lives_rule.confidence() - 0.75).abs() < 1e-9);
        assert!((lives_rule.head_coverage - 0.75).abs() < 1e-9);
    }

    #[test]
    fn low_confidence_rules_are_filtered() {
        let miner = RuleMiner {
            min_support: 1,
            min_confidence: 0.9,
            mine_path_rules: false,
        };
        let mined = miner.mine(&kb());
        assert!(mined.iter().all(|m| m.confidence() >= 0.9));
        // The 0.75-confidence Lives rule must be gone.
        assert!(!mined.iter().any(|m| {
            m.rule.head[0].relation == "Lives" && m.rule.body[0].relation == "Citizen"
        }));
    }

    #[test]
    fn min_support_is_enforced() {
        let miner = RuleMiner {
            min_support: 5,
            min_confidence: 0.0,
            mine_path_rules: false,
        };
        assert!(miner.mine(&kb()).is_empty());
    }

    #[test]
    fn path_rules_are_mined() {
        // Speaks(x, l) usually follows from Lives(x, y), OfficialLanguage(y, l).
        let mut instance = kb();
        instance.add_fact_named("OfficialLanguage", &["france", "french"]);
        instance.add_fact_named("OfficialLanguage", &["japan", "japanese"]);
        instance.add_fact_named("Speaks", &["alice", "french"]);
        instance.add_fact_named("Speaks", &["bob", "french"]);
        instance.add_fact_named("Speaks", &["carol", "japanese"]);
        let miner = RuleMiner {
            min_support: 2,
            min_confidence: 0.5,
            mine_path_rules: true,
        };
        let mined = miner.mine(&instance);
        let speaks_rule = mined
            .iter()
            .find(|m| {
                m.rule.head[0].relation == "Speaks"
                    && m.rule.body.len() == 2
                    && m.rule.body[0].relation == "Lives"
                    && m.rule.body[1].relation == "OfficialLanguage"
            })
            .expect("the composition rule should be mined");
        // Body matches: alice, bob, carol (dave lives in germany which has no
        // official language fact) — all three speak the language.
        assert_eq!(speaks_rule.body_matches, 3);
        assert_eq!(speaks_rule.support, 3);
        assert!((speaks_rule.confidence() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_rules_are_considered() {
        let mut instance = Instance::new();
        for (a, b) in [("a", "b"), ("c", "d"), ("e", "f")] {
            instance.add_fact_named("ParentOf", &[a, b]);
            instance.add_fact_named("ChildOf", &[b, a]);
        }
        let miner = RuleMiner {
            min_support: 2,
            min_confidence: 0.9,
            mine_path_rules: false,
        };
        let mined = miner.mine(&instance);
        assert!(mined.iter().any(|m| {
            m.rule.head[0].relation == "ChildOf"
                && m.rule.body[0].relation == "ParentOf"
                && m.rule.head[0].args == vec![Term::Var("y".into()), Term::Var("x".into())]
                && (m.confidence() - 1.0).abs() < 1e-9
        }));
    }

    #[test]
    fn mined_rules_are_sorted_by_confidence() {
        let mut instance = kb();
        instance.add_fact_named("OfficialLanguage", &["france", "french"]);
        instance.add_fact_named("OfficialLanguage", &["japan", "japanese"]);
        let miner = RuleMiner::default();
        let mined = miner.mine(&instance);
        for pair in mined.windows(2) {
            assert!(pair[0].confidence() >= pair[1].confidence());
        }
    }

    #[test]
    fn empty_instance_yields_no_rules() {
        assert!(RuleMiner::default().mine(&Instance::new()).is_empty());
    }
}
