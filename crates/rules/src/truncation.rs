//! Truncating a possibly non-terminating probabilistic chase with error
//! control.
//!
//! The paper's Section 2.3 notes that when the chase of probabilistic rules
//! does not terminate, "a possibility would be to represent it as a recursive
//! Markov chain, or to truncate it and control the error". This module
//! implements the truncation route: the chase is run up to a bounded depth,
//! the probability computed at that depth is a *lower* bound on the true
//! query probability (probabilities of monotone queries only grow as more
//! derivations become available), and an *upper* bound is obtained by
//! accounting for the rule applications that the next round would perform —
//! the query can only gain probability if at least one of those additional
//! application events fires.
//!
//! Iterating the depth until the two bounds are within a requested tolerance
//! gives an any-time algorithm with a certified error.

use crate::chase::{ChaseConfig, ChaseError, ProbabilisticChase};
use crate::rule::Rule;
use stuc_data::tid::TidInstance;
use stuc_query::cq::ConjunctiveQuery;

/// The outcome of a truncated evaluation: certified bounds on the query
/// probability.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncationReport {
    /// Probability of the query on the chase truncated at `rounds` rounds
    /// (a lower bound on the untruncated probability).
    pub lower_bound: f64,
    /// Upper bound on the untruncated probability.
    pub upper_bound: f64,
    /// Number of chase rounds used for the lower bound.
    pub rounds: usize,
    /// True if the chase had already reached its fixpoint at this depth (the
    /// bounds then coincide and are exact).
    pub converged: bool,
    /// Number of extra rule applications the next round would perform.
    pub frontier_applications: usize,
}

impl TruncationReport {
    /// The width of the certified interval.
    pub fn error(&self) -> f64 {
        self.upper_bound - self.lower_bound
    }
}

/// A probabilistic chase evaluated under truncation with certified error
/// bounds.
#[derive(Debug, Clone)]
pub struct TruncatedChase {
    rules: Vec<Rule>,
    /// Cap on derived facts passed to the underlying chase.
    pub max_derived_facts: usize,
}

impl TruncatedChase {
    /// Creates a truncated-chase evaluator.
    pub fn new(rules: Vec<Rule>) -> Self {
        TruncatedChase {
            rules,
            max_derived_facts: 10_000,
        }
    }

    /// The maximum rule confidence, used to bound the probability mass of
    /// unexplored rule applications.
    fn max_confidence(&self) -> f64 {
        self.rules.iter().map(|r| r.confidence).fold(0.0, f64::max)
    }

    /// Evaluates the query on the chase truncated at `rounds` rounds and
    /// returns certified bounds on its untruncated probability.
    pub fn evaluate(
        &self,
        base: &TidInstance,
        query: &ConjunctiveQuery,
        rounds: usize,
    ) -> Result<TruncationReport, ChaseError> {
        let truncated = ProbabilisticChase::new(self.rules.clone()).with_config(ChaseConfig {
            max_rounds: rounds,
            max_derived_facts: self.max_derived_facts,
        });
        let result = truncated.run(base)?;
        let lower_bound = result.query_probability(query)?;

        // One more round: how many new applications become possible?
        let extended = ProbabilisticChase::new(self.rules.clone()).with_config(ChaseConfig {
            max_rounds: rounds + 1,
            max_derived_facts: self.max_derived_facts,
        });
        let extended_result = extended.run(base)?;
        let frontier_applications = extended_result
            .applications
            .saturating_sub(result.applications);
        let converged = frontier_applications == 0;

        // The query probability can only increase if at least one of the
        // frontier applications fires; each fires with probability at most
        // the largest rule confidence.
        let escape_probability = if converged {
            0.0
        } else {
            1.0 - (1.0 - self.max_confidence()).powi(frontier_applications as i32)
        };
        let upper_bound = (lower_bound + escape_probability).min(1.0);
        Ok(TruncationReport {
            lower_bound,
            upper_bound,
            rounds,
            converged,
            frontier_applications,
        })
    }

    /// Increases the truncation depth until the certified error drops below
    /// `tolerance` or `max_rounds` is reached; returns the last report.
    pub fn evaluate_until(
        &self,
        base: &TidInstance,
        query: &ConjunctiveQuery,
        tolerance: f64,
        max_rounds: usize,
    ) -> Result<TruncationReport, ChaseError> {
        let mut report = self.evaluate(base, query, 1)?;
        let mut rounds = 1;
        while report.error() > tolerance && rounds < max_rounds {
            rounds += 1;
            report = self.evaluate(base, query, rounds)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_rules() -> Vec<Rule> {
        // The dependent rule is listed first so that a depth-1 chase cannot
        // yet derive Speaks (rule application order within a round follows
        // the rule list).
        vec![
            Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.7).unwrap(),
            Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap(),
        ]
    }

    fn kb() -> TidInstance {
        let mut tid = TidInstance::new();
        tid.add_fact_named("Citizen", &["alice", "france"], 0.9);
        tid.add_fact_named("OfficialLanguage", &["france", "french"], 1.0);
        tid
    }

    #[test]
    fn terminating_chase_converges_with_zero_error() {
        let chase = TruncatedChase::new(chain_rules());
        let query = ConjunctiveQuery::parse("Speaks(\"alice\", \"french\")").unwrap();
        let report = chase.evaluate(&kb(), &query, 3).unwrap();
        assert!(report.converged);
        assert!(report.error().abs() < 1e-12);
        assert!((report.lower_bound - 0.9 * 0.8 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn shallow_truncation_misses_derivations_but_bounds_hold() {
        let chase = TruncatedChase::new(chain_rules());
        let query = ConjunctiveQuery::parse("Speaks(\"alice\", \"french\")").unwrap();
        // Depth 1 only applies the first rule: the query is not yet derivable.
        let shallow = chase.evaluate(&kb(), &query, 1).unwrap();
        assert!(!shallow.converged);
        assert!(shallow.lower_bound.abs() < 1e-12);
        assert!(shallow.upper_bound > 0.0);
        // The exact value lies inside the certified interval.
        let exact = 0.9 * 0.8 * 0.7;
        assert!(shallow.lower_bound <= exact + 1e-12);
        assert!(exact <= shallow.upper_bound + 1e-12);
    }

    #[test]
    fn bounds_tighten_with_depth() {
        let chase = TruncatedChase::new(chain_rules());
        let query = ConjunctiveQuery::parse("Speaks(\"alice\", \"french\")").unwrap();
        let shallow = chase.evaluate(&kb(), &query, 1).unwrap();
        let deep = chase.evaluate(&kb(), &query, 3).unwrap();
        assert!(deep.error() <= shallow.error() + 1e-12);
        assert!(deep.lower_bound >= shallow.lower_bound - 1e-12);
    }

    #[test]
    fn evaluate_until_reaches_the_requested_tolerance() {
        let chase = TruncatedChase::new(chain_rules());
        let query = ConjunctiveQuery::parse("Speaks(\"alice\", \"french\")").unwrap();
        let report = chase.evaluate_until(&kb(), &query, 1e-6, 10).unwrap();
        assert!(report.error() <= 1e-6);
        assert!((report.lower_bound - 0.9 * 0.8 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn non_terminating_chase_still_yields_bounds() {
        // People have ancestors, who are themselves people: the chase never
        // terminates, but truncation still brackets the probability that
        // alice has a grand-ancestor.
        let rules = vec![Rule::parse("Ancestor(x, a), Person(a) :- Person(x)", 0.5).unwrap()];
        let mut tid = TidInstance::new();
        tid.add_fact_named("Person", &["alice"], 1.0);
        let chase = TruncatedChase::new(rules);
        let query = ConjunctiveQuery::parse("Ancestor(\"alice\", x)").unwrap();
        let report = chase.evaluate(&tid, &query, 2).unwrap();
        assert!(!report.converged);
        assert!((report.lower_bound - 0.5).abs() < 1e-9);
        assert!(report.upper_bound >= report.lower_bound);
        assert!(report.upper_bound <= 1.0);
    }

    #[test]
    fn report_error_is_upper_minus_lower() {
        let report = TruncationReport {
            lower_bound: 0.25,
            upper_bound: 0.75,
            rounds: 2,
            converged: false,
            frontier_applications: 3,
        };
        assert!((report.error() - 0.5).abs() < 1e-12);
    }
}
