//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the Criterion API used by `stuc-bench`:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`] and
//! [`black_box`]. Timing is a simple adaptive loop — run the closure until
//! the measurement window is filled, report the mean per-iteration time —
//! which is enough to show the asymptotic *shape* of each comparison (who
//! wins, by what factor, where the crossover happens). No statistics, plots
//! or saved baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work; forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The per-measurement driver handed to bench closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean wall time per iteration, filled in by [`Bencher::iter`].
    elapsed: Duration,
    iterations: u64,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly: first a warm-up window, then an adaptive
    /// measurement window of at least `sample_size` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let started = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if iterations >= self.config.sample_size
                && started.elapsed() >= self.config.measurement_time
            {
                break;
            }
            // Never spin more than ~16x the window on very fast routines.
            if iterations >= self.config.sample_size * 16 {
                break;
            }
        }
        self.elapsed = started.elapsed();
        self.iterations = iterations;
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: u64,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// A named group of related benchmarks, printed as a section.
pub struct BenchmarkGroup<'a> {
    criterion: std::marker::PhantomData<&'a mut Criterion>,
    config: Config,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<R: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            config: &self.config,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        report_line(&self.name, &id.to_string(), &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            config: &self.config,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        report_line(&self.name, &id.to_string(), &bencher);
        self
    }

    /// Overrides the sample size for this group (parity with Criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n as u64;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.config.measurement_time = window;
        self
    }

    pub fn finish(&mut self) {
        println!();
    }
}

fn report_line(group: &str, id: &str, bencher: &Bencher<'_>) {
    if bencher.iterations == 0 {
        println!("{group}/{id:<40} (no iterations recorded)");
        return;
    }
    let nanos = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    let formatted = if nanos >= 1e9 {
        format!("{:>10.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:>10.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:>10.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:>10.1} ns")
    };
    println!(
        "{group}/{id:<40} time: {formatted}   ({} iterations)",
        bencher.iterations
    );
}

/// The top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n as u64;
        self
    }

    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.config.measurement_time = window;
        self
    }

    pub fn warm_up_time(mut self, window: Duration) -> Self {
        self.config.warm_up_time = window;
        self
    }

    /// Plots are never produced by the shim; kept for API parity.
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: std::marker::PhantomData,
            config: self.config.clone(),
            name,
        }
    }

    pub fn final_summary(&mut self) {
        println!("benchmark run complete");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = criterion.benchmark_group("shim_smoke");
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        criterion.final_summary();
        assert!(runs >= 5);
    }
}
