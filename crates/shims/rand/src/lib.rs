//! Offline stand-in for the `rand` crate.
//!
//! The STUC build environment has no network access, so this tiny crate
//! provides the (small) slice of the `rand` 0.9 API the workspace actually
//! uses: the [`Rng`] and [`SeedableRng`] traits, [`rngs::StdRng`], uniform
//! `f64`/`bool` sampling and integer/float ranges. The generator behind
//! `StdRng` is SplitMix64 — deterministic, seedable, and statistically fine
//! for the Monte-Carlo estimates and test workloads it backs (it is *not*
//! cryptographic, which the real `StdRng` is; nothing in STUC needs that).

/// Types that can be sampled uniformly from a generator's raw 64-bit output.
pub trait StandardSample {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight modulo
                // bias of the plain approach is irrelevant for our spans but
                // this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// The raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The user-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of a [`StandardSample`] type (`f64` in `[0, 1)`,
    /// a fair `bool`, or a full-width integer).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from an integer or float range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The deterministic SplitMix64 generator: 64 bits of state, one
    /// add-xor-multiply scramble per output word. Every seed yields an
    /// independent, reproducible stream, which is exactly what the exact
    /// world sampler (`stuc-infer`), the property tests and the benches
    /// need — replaying a seed replays the samples bit-for-bit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// A generator starting from the given seed.
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            SplitMix64::new(seed)
        }
    }

    /// `rand`'s `StdRng` name, backed by [`SplitMix64`] (deterministic and
    /// seedable; *not* cryptographic, which nothing in STUC needs).
    pub type StdRng = SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..1000 {
            let v = a.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = a.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn splitmix64_is_the_std_rng_and_replays_per_seed() {
        use super::rngs::SplitMix64;
        use super::RngCore;
        let mut direct = SplitMix64::new(99);
        let mut seeded = StdRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(direct.next_u64(), seeded.next_u64());
        }
        // Distinct seeds produce distinct streams (first word already).
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
