//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API used by the STUC property tests:
//! the [`proptest!`] macro over `name in strategy` arguments, range and tuple
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Cases are generated
//! from a deterministic SplitMix64 stream (no shrinking — a failing case is
//! reported with its case number and generated inputs via `Debug`).

use std::ops::Range;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic generator feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn next_below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A failed property assertion (carried by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// A generator of values of one type (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Produces one fixed value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: std::fmt::Debug + Clone>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `length`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        length: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.length.end - self.length.start).max(1) as u64;
            let len = self.length.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        collection, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Fails the current case with `message` unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic iterations of the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Per-test deterministic seed derived from the test name.
                let seed = {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                let mut rng = $crate::test_runner::TestRng::deterministic(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, error.message, inputs
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..9, p in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((0.25..0.75).contains(&p));
        }

        #[test]
        fn vec_strategy_respects_length(
            items in collection::vec((0usize..5, 0.0f64..1.0), 2..6),
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
            for (a, b) in &items {
                prop_assert!(*a < 5);
                prop_assert!((0.0..1.0).contains(b));
            }
            prop_assert_eq!(items.len(), items.len());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(n in 0usize..3) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }
}
