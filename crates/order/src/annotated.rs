//! Combining fact uncertainty and order uncertainty.
//!
//! The paper's Section 3 closes with: "It would also be interesting to extend
//! our approach to allow both fact and order uncertainty, for instance by
//! extending our constructions to support provenance." This module does
//! exactly that: an [`AnnotatedPoRelation`] is a po-relation whose elements
//! carry propositional annotations over Boolean events (the c-instance
//! annotations of `stuc-data`). A possible world is obtained by first fixing
//! an event valuation — which selects the surviving elements, as for
//! c-instances — and then choosing a linear extension of the induced order on
//! the survivors, as for po-relations.
//!
//! The PosRA operators of [`crate::posra`] lift to annotated relations by
//! combining annotations the way semiring provenance combines tags: products
//! conjoin the annotations of the paired elements, unions and selections keep
//! them.

use std::collections::BTreeMap;

use crate::porelation::{ElementId, OrderError, PoRelation};
use stuc_circuit::circuit::VarId;
use stuc_circuit::weights::Weights;
use stuc_data::formula::Formula;

/// Cap on the number of distinct annotation variables for exhaustive
/// valuation enumeration.
pub const VALUATION_LIMIT: usize = 20;

/// A po-relation whose elements carry propositional annotations: fact
/// uncertainty (which elements exist) combined with order uncertainty (how
/// the existing elements are ordered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotatedPoRelation {
    order: PoRelation,
    annotations: Vec<Formula>,
}

impl AnnotatedPoRelation {
    /// Creates an empty annotated po-relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a plain po-relation: every element is certain.
    pub fn certain(order: PoRelation) -> Self {
        let annotations = vec![Formula::True; order.len()];
        AnnotatedPoRelation { order, annotations }
    }

    /// Adds a tuple with an annotation and returns its element id.
    pub fn add_tuple(&mut self, tuple: Vec<String>, annotation: Formula) -> ElementId {
        self.annotations.push(annotation);
        self.order.add_tuple(tuple)
    }

    /// Adds the order constraint `before < after`.
    pub fn add_order(&mut self, before: ElementId, after: ElementId) -> Result<(), OrderError> {
        self.order.add_order(before, after)
    }

    /// The underlying po-relation (ignoring annotations).
    pub fn order(&self) -> &PoRelation {
        &self.order
    }

    /// The annotation of an element.
    pub fn annotation(&self, e: ElementId) -> &Formula {
        &self.annotations[e.0]
    }

    /// Number of elements (including uncertain ones).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The set of event variables used by the annotations.
    pub fn variables(&self) -> Vec<VarId> {
        let mut variables: Vec<VarId> = self
            .annotations
            .iter()
            .flat_map(|formula| formula.variables())
            .collect();
        variables.sort();
        variables.dedup();
        variables
    }

    /// The po-relation obtained under one event valuation: elements whose
    /// annotation evaluates to true, with the induced (transitively closed)
    /// order between survivors.
    pub fn world_under(&self, valuation: &BTreeMap<VarId, bool>) -> PoRelation {
        let mut survivors: Vec<ElementId> = Vec::new();
        for (e, _) in self.order.elements() {
            if self.annotations[e.0].evaluate(valuation) {
                survivors.push(e);
            }
        }
        let mut result = PoRelation::new();
        let new_ids: Vec<ElementId> = survivors
            .iter()
            .map(|&e| result.add_tuple(self.order.tuple(e).to_vec()))
            .collect();
        for (i, &a) in survivors.iter().enumerate() {
            for (j, &b) in survivors.iter().enumerate() {
                if i != j && self.order.precedes(a, b) {
                    result
                        .add_order(new_ids[i], new_ids[j])
                        .expect("induced order is acyclic");
                }
            }
        }
        result
    }

    /// Selection: keeps the elements whose tuple satisfies the predicate,
    /// with their annotations and the induced order.
    pub fn select(&self, predicate: impl Fn(&[String]) -> bool) -> AnnotatedPoRelation {
        let mut result = AnnotatedPoRelation::new();
        let mut kept: Vec<(ElementId, ElementId)> = Vec::new();
        for (e, tuple) in self.order.elements() {
            if predicate(tuple) {
                let new_id = result.add_tuple(tuple.clone(), self.annotations[e.0].clone());
                kept.push((e, new_id));
            }
        }
        for (i, &(old_a, new_a)) in kept.iter().enumerate() {
            for &(old_b, new_b) in &kept[i + 1..] {
                if self.order.precedes(old_a, old_b) {
                    result
                        .add_order(new_a, new_b)
                        .expect("induced order is acyclic");
                } else if self.order.precedes(old_b, old_a) {
                    result
                        .add_order(new_b, new_a)
                        .expect("induced order is acyclic");
                }
            }
        }
        result
    }

    /// Projection onto the listed columns, keeping annotations and order.
    pub fn project(&self, columns: &[usize]) -> AnnotatedPoRelation {
        let mut result = AnnotatedPoRelation::new();
        let mut mapping = Vec::with_capacity(self.len());
        for (e, tuple) in self.order.elements() {
            let projected: Vec<String> = columns.iter().map(|&c| tuple[c].clone()).collect();
            mapping.push(result.add_tuple(projected, self.annotations[e.0].clone()));
        }
        for (a, b) in self.order.order_edges() {
            result
                .add_order(mapping[a.0], mapping[b.0])
                .expect("order preserved");
        }
        result
    }

    /// Parallel union: disjoint union with no order between the sides.
    pub fn union_parallel(&self, other: &AnnotatedPoRelation) -> AnnotatedPoRelation {
        self.union_with(other, false)
    }

    /// Concatenation union: everything of `self` before everything of
    /// `other`.
    pub fn union_concat(&self, other: &AnnotatedPoRelation) -> AnnotatedPoRelation {
        self.union_with(other, true)
    }

    fn union_with(&self, other: &AnnotatedPoRelation, concatenate: bool) -> AnnotatedPoRelation {
        let mut result = AnnotatedPoRelation::new();
        let left_map: Vec<ElementId> = self
            .order
            .elements()
            .map(|(e, t)| result.add_tuple(t.clone(), self.annotations[e.0].clone()))
            .collect();
        let right_map: Vec<ElementId> = other
            .order
            .elements()
            .map(|(e, t)| result.add_tuple(t.clone(), other.annotations[e.0].clone()))
            .collect();
        for (a, b) in self.order.order_edges() {
            result
                .add_order(left_map[a.0], left_map[b.0])
                .expect("acyclic");
        }
        for (a, b) in other.order.order_edges() {
            result
                .add_order(right_map[a.0], right_map[b.0])
                .expect("acyclic");
        }
        if concatenate {
            for &l in &left_map {
                for &r in &right_map {
                    result.add_order(l, r).expect("acyclic");
                }
            }
        }
        result
    }

    /// Parallel (dominance-ordered) product; the annotation of a pair is the
    /// conjunction of the annotations of its components, as in semiring
    /// provenance.
    pub fn product_parallel(&self, other: &AnnotatedPoRelation) -> AnnotatedPoRelation {
        let mut result = AnnotatedPoRelation::new();
        let mut ids = vec![vec![ElementId(0); other.len()]; self.len()];
        for (l, lt) in self.order.elements() {
            for (r, rt) in other.order.elements() {
                let mut tuple = lt.clone();
                tuple.extend(rt.iter().cloned());
                let annotation = self.annotations[l.0]
                    .clone()
                    .and(other.annotations[r.0].clone());
                ids[l.0][r.0] = result.add_tuple(tuple, annotation);
            }
        }
        for (a, b) in self.order.order_edges() {
            #[allow(clippy::needless_range_loop)]
            for r in 0..other.len() {
                result.add_order(ids[a.0][r], ids[b.0][r]).expect("acyclic");
            }
        }
        for (a, b) in other.order.order_edges() {
            #[allow(clippy::needless_range_loop)]
            for l in 0..self.len() {
                result.add_order(ids[l][a.0], ids[l][b.0]).expect("acyclic");
            }
        }
        result
    }

    /// The probability, under independent event probabilities, that the given
    /// label sequence is a possible world — i.e. the probability mass of the
    /// event valuations under which the surviving elements can be linearly
    /// ordered to produce exactly this sequence.
    ///
    /// Exhaustive over the annotation variables (capped at
    /// [`VALUATION_LIMIT`]), which is the baseline the structural-tractability
    /// results are measured against.
    pub fn sequence_possibility_probability(
        &self,
        weights: &Weights,
        sequence: &[Vec<String>],
    ) -> Result<f64, OrderError> {
        let mut probability = 0.0;
        self.for_each_valuation(weights, |world, mass| {
            if world.is_possible_world(sequence) {
                probability += mass;
            }
        })?;
        Ok(probability)
    }

    /// The probability that a tuple equal to `label` survives (appears in the
    /// world at all), under independent event probabilities.
    pub fn label_presence_probability(
        &self,
        weights: &Weights,
        label: &[String],
    ) -> Result<f64, OrderError> {
        let mut probability = 0.0;
        self.for_each_valuation(weights, |world, mass| {
            if world.elements().any(|(_, t)| t.as_slice() == label) {
                probability += mass;
            }
        })?;
        Ok(probability)
    }

    /// The expected number of surviving elements.
    pub fn expected_size(&self, weights: &Weights) -> Result<f64, OrderError> {
        let mut expectation = 0.0;
        self.for_each_valuation(weights, |world, mass| {
            expectation += world.len() as f64 * mass;
        })?;
        Ok(expectation)
    }

    fn for_each_valuation(
        &self,
        weights: &Weights,
        mut visit: impl FnMut(&PoRelation, f64),
    ) -> Result<(), OrderError> {
        let variables = self.variables();
        if variables.len() > VALUATION_LIMIT {
            return Err(OrderError::TooManyElements(variables.len()));
        }
        let combinations = 1usize << variables.len();
        for assignment in 0..combinations {
            let mut valuation = BTreeMap::new();
            let mut mass = 1.0;
            for (index, &variable) in variables.iter().enumerate() {
                let value = assignment & (1 << index) != 0;
                valuation.insert(variable, value);
                let p = weights.get(variable).unwrap_or(0.5);
                mass *= if value { p } else { 1.0 - p };
            }
            if mass == 0.0 {
                continue;
            }
            let world = self.world_under(&valuation);
            visit(&world, mass);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(items: &[&str]) -> Vec<Vec<String>> {
        items.iter().map(|s| vec![s.to_string()]).collect()
    }

    fn weights(pairs: &[(usize, f64)]) -> Weights {
        let mut w = Weights::new();
        for &(v, p) in pairs {
            w.set(VarId(v), p);
        }
        w
    }

    #[test]
    fn certain_relation_behaves_like_a_po_relation() {
        let po = PoRelation::totally_ordered(labels(&["a", "b"]));
        let annotated = AnnotatedPoRelation::certain(po);
        let world = annotated.world_under(&BTreeMap::new());
        assert_eq!(world.len(), 2);
        assert!(world.is_possible_world(&labels(&["a", "b"])));
    }

    #[test]
    fn world_under_filters_and_induces_order() {
        // a < b < c where b is uncertain: without b, a still precedes c.
        let mut annotated = AnnotatedPoRelation::new();
        let a = annotated.add_tuple(vec!["a".into()], Formula::True);
        let b = annotated.add_tuple(vec!["b".into()], Formula::Var(VarId(0)));
        let c = annotated.add_tuple(vec!["c".into()], Formula::True);
        annotated.add_order(a, b).unwrap();
        annotated.add_order(b, c).unwrap();
        let without_b: BTreeMap<VarId, bool> = [(VarId(0), false)].into_iter().collect();
        let world = annotated.world_under(&without_b);
        assert_eq!(world.len(), 2);
        assert!(world.is_possible_world(&labels(&["a", "c"])));
        assert!(!world.is_possible_world(&labels(&["c", "a"])));
    }

    #[test]
    fn sequence_possibility_probability_sums_over_valuations() {
        // One certain element "x" and one element "y" present with prob 0.3,
        // unordered: sequence "x" is possible exactly when y is absent.
        let mut annotated = AnnotatedPoRelation::new();
        annotated.add_tuple(vec!["x".into()], Formula::True);
        annotated.add_tuple(vec!["y".into()], Formula::Var(VarId(0)));
        let w = weights(&[(0, 0.3)]);
        let p_only_x = annotated
            .sequence_possibility_probability(&w, &labels(&["x"]))
            .unwrap();
        assert!((p_only_x - 0.7).abs() < 1e-12);
        // "x y" and "y x" are each possible exactly when y is present.
        let p_xy = annotated
            .sequence_possibility_probability(&w, &labels(&["x", "y"]))
            .unwrap();
        let p_yx = annotated
            .sequence_possibility_probability(&w, &labels(&["y", "x"]))
            .unwrap();
        assert!((p_xy - 0.3).abs() < 1e-12);
        assert!((p_yx - 0.3).abs() < 1e-12);
    }

    #[test]
    fn correlated_annotations_share_events() {
        // Two log entries contributed by the same unreliable source: both
        // present or both absent.
        let mut annotated = AnnotatedPoRelation::new();
        let first = annotated.add_tuple(vec!["boot".into()], Formula::Var(VarId(0)));
        let second = annotated.add_tuple(vec!["crash".into()], Formula::Var(VarId(0)));
        annotated.add_order(first, second).unwrap();
        let w = weights(&[(0, 0.6)]);
        assert!((annotated.expected_size(&w).unwrap() - 1.2).abs() < 1e-12);
        let p_pair = annotated
            .sequence_possibility_probability(&w, &labels(&["boot", "crash"]))
            .unwrap();
        assert!((p_pair - 0.6).abs() < 1e-12);
        let p_reversed = annotated
            .sequence_possibility_probability(&w, &labels(&["crash", "boot"]))
            .unwrap();
        assert!(p_reversed.abs() < 1e-12);
        let p_empty = annotated.sequence_possibility_probability(&w, &[]).unwrap();
        assert!((p_empty - 0.4).abs() < 1e-12);
    }

    #[test]
    fn select_keeps_annotations() {
        let mut annotated = AnnotatedPoRelation::new();
        annotated.add_tuple(vec!["error".into()], Formula::Var(VarId(0)));
        annotated.add_tuple(vec!["info".into()], Formula::True);
        let errors = annotated.select(|t| t[0] == "error");
        assert_eq!(errors.len(), 1);
        assert_eq!(errors.annotation(ElementId(0)), &Formula::Var(VarId(0)));
    }

    #[test]
    fn product_conjoins_annotations() {
        let mut hotels = AnnotatedPoRelation::new();
        hotels.add_tuple(vec!["h1".into()], Formula::Var(VarId(0)));
        let mut restaurants = AnnotatedPoRelation::new();
        restaurants.add_tuple(vec!["r1".into()], Formula::Var(VarId(1)));
        let pairs = hotels.product_parallel(&restaurants);
        assert_eq!(pairs.len(), 1);
        let annotation = pairs.annotation(ElementId(0));
        assert_eq!(annotation.variables().len(), 2);
        // The pair exists only when both components do.
        let w = weights(&[(0, 0.5), (1, 0.4)]);
        let p = pairs
            .label_presence_probability(&w, &["h1".to_string(), "r1".to_string()])
            .unwrap();
        assert!((p - 0.2).abs() < 1e-12);
    }

    #[test]
    fn union_parallel_keeps_both_sides_independent() {
        let mut left = AnnotatedPoRelation::new();
        left.add_tuple(vec!["a".into()], Formula::Var(VarId(0)));
        let mut right = AnnotatedPoRelation::new();
        right.add_tuple(vec!["b".into()], Formula::Var(VarId(1)));
        let merged = left.union_parallel(&right);
        let w = weights(&[(0, 0.5), (1, 0.5)]);
        assert!((merged.expected_size(&w).unwrap() - 1.0).abs() < 1e-12);
        // Both orders of "a b" are possible when both are present.
        let p_ab = merged
            .sequence_possibility_probability(&w, &labels(&["a", "b"]))
            .unwrap();
        let p_ba = merged
            .sequence_possibility_probability(&w, &labels(&["b", "a"]))
            .unwrap();
        assert!((p_ab - 0.25).abs() < 1e-12);
        assert!((p_ba - 0.25).abs() < 1e-12);
    }

    #[test]
    fn union_concat_orders_across_sides() {
        let mut left = AnnotatedPoRelation::new();
        left.add_tuple(vec!["a".into()], Formula::True);
        let mut right = AnnotatedPoRelation::new();
        right.add_tuple(vec!["b".into()], Formula::True);
        let merged = left.union_concat(&right);
        let w = Weights::new();
        let p_ab = merged
            .sequence_possibility_probability(&w, &labels(&["a", "b"]))
            .unwrap();
        let p_ba = merged
            .sequence_possibility_probability(&w, &labels(&["b", "a"]))
            .unwrap();
        assert!((p_ab - 1.0).abs() < 1e-12);
        assert!(p_ba.abs() < 1e-12);
    }

    #[test]
    fn projection_keeps_annotations_and_order() {
        let mut annotated = AnnotatedPoRelation::new();
        let a = annotated.add_tuple(vec!["a".into(), "1".into()], Formula::Var(VarId(0)));
        let b = annotated.add_tuple(vec!["b".into(), "2".into()], Formula::True);
        annotated.add_order(a, b).unwrap();
        let projected = annotated.project(&[0]);
        assert_eq!(projected.len(), 2);
        assert_eq!(projected.annotation(ElementId(0)), &Formula::Var(VarId(0)));
        assert!(projected.order().precedes(ElementId(0), ElementId(1)));
    }
}
