//! Order uncertainty arising from uncertain numerical values.
//!
//! The paper's Section 3 suggests studying "order that arises from numerical
//! values (e.g., support, in our data mining scenario)" and asks what the
//! possible worlds are and how to interpolate missing numerical values on
//! partially ordered data. This module models each tuple as carrying a
//! numeric *value interval* (an exactly known value is a degenerate
//! interval):
//!
//! * the induced po-relation compares tuples whose intervals do not overlap
//!   ([`NumericPoRelation::induced_order`]);
//! * explicit order constraints (`value(a) < value(b)`) tighten the intervals
//!   by propagation ([`NumericPoRelation::tighten`]), which is the
//!   "interpolate missing numerical values" primitive — the best guess for a
//!   missing value is the midpoint of its tightened interval;
//! * under the independent-uniform probabilistic model on the intervals, the
//!   probability that one tuple ranks before another has a closed form
//!   ([`NumericPoRelation::precedence_probability_uniform`]) that can be
//!   cross-checked against Monte-Carlo sampling
//!   ([`NumericPoRelation::precedence_probability_monte_carlo`]).

use crate::porelation::{ElementId, PoRelation};
use rand::Rng;

stuc_errors::stuc_error! {
    /// Errors raised by numeric po-relations.
    #[derive(Clone, PartialEq)]
    pub enum NumericOrderError {
        /// An interval has its lower bound above its upper bound.
        EmptyInterval { element: usize, low: f64, high: f64 },
        /// Constraint propagation derived an empty interval: the order
        /// constraints contradict the value intervals.
        Inconsistent { element: usize },
        /// An order constraint is cyclic.
        CyclicConstraint,
    }
    display {
        Self::EmptyInterval { element, low, high } => "element {element} has an empty value interval [{low}, {high}]",
        Self::Inconsistent { element } => "order constraints contradict the value interval of element {element}",
        Self::CyclicConstraint => "order constraints are cyclic",
    }
}

/// A relation whose tuples carry uncertain numeric values (intervals), from
/// which an order is induced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NumericPoRelation {
    tuples: Vec<Vec<String>>,
    intervals: Vec<(f64, f64)>,
    /// Explicit constraints `value(a) < value(b)`, e.g. observed comparisons.
    constraints: Vec<(usize, usize)>,
}

impl NumericPoRelation {
    /// Creates an empty numeric po-relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tuple with an exactly known value.
    pub fn add_exact(&mut self, tuple: Vec<String>, value: f64) -> ElementId {
        self.tuples.push(tuple);
        self.intervals.push((value, value));
        ElementId(self.tuples.len() - 1)
    }

    /// Adds a tuple whose value is only known to lie in `[low, high]`.
    pub fn add_interval(
        &mut self,
        tuple: Vec<String>,
        low: f64,
        high: f64,
    ) -> Result<ElementId, NumericOrderError> {
        if low > high {
            return Err(NumericOrderError::EmptyInterval {
                element: self.tuples.len(),
                low,
                high,
            });
        }
        self.tuples.push(tuple);
        self.intervals.push((low, high));
        Ok(ElementId(self.tuples.len() - 1))
    }

    /// Adds the constraint `value(smaller) < value(larger)` (e.g. an observed
    /// pairwise comparison from a crowd worker).
    pub fn add_comparison(
        &mut self,
        smaller: ElementId,
        larger: ElementId,
    ) -> Result<(), NumericOrderError> {
        if smaller == larger || self.reaches(larger.0, smaller.0) {
            return Err(NumericOrderError::CyclicConstraint);
        }
        self.constraints.push((smaller.0, larger.0));
        Ok(())
    }

    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.tuples.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            for &(a, b) in &self.constraints {
                if a == x && !seen[b] {
                    seen[b] = true;
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple of an element.
    pub fn tuple(&self, e: ElementId) -> &[String] {
        &self.tuples[e.0]
    }

    /// The current value interval of an element.
    pub fn interval(&self, e: ElementId) -> (f64, f64) {
        self.intervals[e.0]
    }

    /// Propagates the explicit comparisons into the intervals until a fixed
    /// point: `value(a) < value(b)` forces `low(b) ≥ low(a)` and
    /// `high(a) ≤ high(b)`. Fails if an interval becomes empty.
    pub fn tighten(&mut self) -> Result<(), NumericOrderError> {
        loop {
            let mut changed = false;
            for &(a, b) in &self.constraints {
                let (low_a, high_a) = self.intervals[a];
                let (low_b, high_b) = self.intervals[b];
                if low_b < low_a {
                    self.intervals[b].0 = low_a;
                    changed = true;
                }
                if high_a > high_b {
                    self.intervals[a].1 = high_b;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (index, &(low, high)) in self.intervals.iter().enumerate() {
            if low > high {
                return Err(NumericOrderError::Inconsistent { element: index });
            }
        }
        Ok(())
    }

    /// The best guess for every value: the midpoint of its (tightened)
    /// interval. Call [`Self::tighten`] first to take the comparisons into
    /// account.
    pub fn interpolate_midpoints(&self) -> Vec<f64> {
        self.intervals
            .iter()
            .map(|&(low, high)| (low + high) / 2.0)
            .collect()
    }

    /// The po-relation induced by the intervals and explicit comparisons:
    /// `a < b` when `high(a) < low(b)` (the intervals are disjoint and
    /// ordered) or when the comparison was explicitly asserted.
    pub fn induced_order(&self) -> PoRelation {
        let mut relation = PoRelation::new();
        let ids: Vec<ElementId> = self
            .tuples
            .iter()
            .map(|t| relation.add_tuple(t.clone()))
            .collect();
        for a in 0..self.tuples.len() {
            for b in 0..self.tuples.len() {
                if a == b {
                    continue;
                }
                if self.intervals[a].1 < self.intervals[b].0 {
                    // Intervals are disjoint; the order cannot be cyclic.
                    let _ = relation.add_order(ids[a], ids[b]);
                }
            }
        }
        for &(a, b) in &self.constraints {
            let _ = relation.add_order(ids[a], ids[b]);
        }
        relation
    }

    /// The probability that `value(a) < value(b)` under the model where each
    /// value is drawn independently and uniformly from its interval
    /// (explicit comparisons are ignored here; closed form).
    pub fn precedence_probability_uniform(&self, a: ElementId, b: ElementId) -> f64 {
        let (a_low, a_high) = self.intervals[a.0];
        let (b_low, b_high) = self.intervals[b.0];
        probability_uniform_less(a_low, a_high, b_low, b_high)
    }

    /// Monte-Carlo estimate of the same probability, used to cross-check the
    /// closed form and to extend to conditioned models in tests/benchmarks.
    pub fn precedence_probability_monte_carlo(
        &self,
        a: ElementId,
        b: ElementId,
        samples: usize,
        rng: &mut impl Rng,
    ) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        for _ in 0..samples {
            let x = sample_uniform(self.intervals[a.0], rng);
            let y = sample_uniform(self.intervals[b.0], rng);
            if x < y {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }

    /// Monte-Carlo estimate of the probability that element `e` has one of
    /// the `k` largest values (a top-`k` by support query, as in the crowd
    /// data-mining scenario the paper cites).
    pub fn top_k_probability_monte_carlo(
        &self,
        e: ElementId,
        k: usize,
        samples: usize,
        rng: &mut impl Rng,
    ) -> f64 {
        if samples == 0 || k == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        for _ in 0..samples {
            let values: Vec<f64> = self
                .intervals
                .iter()
                .map(|&iv| sample_uniform(iv, rng))
                .collect();
            let own = values[e.0];
            let larger = values
                .iter()
                .enumerate()
                .filter(|&(index, &v)| index != e.0 && v > own)
                .count();
            if larger < k {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }
}

fn sample_uniform(interval: (f64, f64), rng: &mut impl Rng) -> f64 {
    let (low, high) = interval;
    if low == high {
        low
    } else {
        low + (high - low) * rng.random::<f64>()
    }
}

/// `P[X < Y]` for independent `X ~ U[a_low, a_high]`, `Y ~ U[b_low, b_high]`.
///
/// Degenerate (point) intervals are allowed; ties between point values count
/// as "not less".
pub fn probability_uniform_less(a_low: f64, a_high: f64, b_low: f64, b_high: f64) -> f64 {
    // Degenerate (point) X: P[a < Y] = mass of Y above a.
    if a_low == a_high {
        if b_low == b_high {
            return if a_low < b_low { 1.0 } else { 0.0 };
        }
        return ((b_high - a_low) / (b_high - b_low)).clamp(0.0, 1.0);
    }
    // P[X < Y] = E_Y[ F_X(Y) ] where F_X is the (continuous, piecewise
    // linear) CDF of X; integrate it over [b_low, b_high] or evaluate at the
    // point.
    let cdf_x = |y: f64| -> f64 { ((y - a_low) / (a_high - a_low)).clamp(0.0, 1.0) };
    if b_low == b_high {
        return cdf_x(b_low);
    }
    // Piecewise-linear integral of cdf_x over [b_low, b_high], divided by the
    // interval length. Break at a_low and a_high.
    let mut points = vec![b_low, b_high];
    for candidate in [a_low, a_high] {
        if candidate > b_low && candidate < b_high {
            points.push(candidate);
        }
    }
    points.sort_by(|x, y| x.partial_cmp(y).expect("finite bounds"));
    let mut integral = 0.0;
    for window in points.windows(2) {
        let (left, right) = (window[0], window[1]);
        // cdf_x is linear on each piece: trapezoid rule is exact.
        integral += (cdf_x(left) + cdf_x(right)) / 2.0 * (right - left);
    }
    integral / (b_high - b_low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn label(name: &str) -> Vec<String> {
        vec![name.to_string()]
    }

    #[test]
    fn disjoint_intervals_induce_a_total_order() {
        let mut numeric = NumericPoRelation::new();
        let low = numeric.add_interval(label("low"), 0.0, 1.0).unwrap();
        let mid = numeric.add_interval(label("mid"), 2.0, 3.0).unwrap();
        let high = numeric.add_exact(label("high"), 5.0);
        let order = numeric.induced_order();
        assert!(order.precedes(ElementId(low.0), ElementId(mid.0)));
        assert!(order.precedes(ElementId(mid.0), ElementId(high.0)));
        assert!(order.is_totally_ordered());
    }

    #[test]
    fn overlapping_intervals_are_incomparable() {
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_interval(label("a"), 0.0, 2.0).unwrap();
        let b = numeric.add_interval(label("b"), 1.0, 3.0).unwrap();
        let order = numeric.induced_order();
        assert!(!order.precedes(ElementId(a.0), ElementId(b.0)));
        assert!(!order.precedes(ElementId(b.0), ElementId(a.0)));
    }

    #[test]
    fn empty_interval_is_rejected() {
        let mut numeric = NumericPoRelation::new();
        assert!(matches!(
            numeric.add_interval(label("x"), 2.0, 1.0),
            Err(NumericOrderError::EmptyInterval { .. })
        ));
    }

    #[test]
    fn comparisons_tighten_intervals() {
        // support(a) < support(b) with a in [0, 10], b in [0, 4]:
        // propagation keeps a ≤ 4 and leaves b's lower bound at 0 ≥ 0.
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_interval(label("a"), 0.0, 10.0).unwrap();
        let b = numeric.add_interval(label("b"), 0.0, 4.0).unwrap();
        numeric.add_comparison(a, b).unwrap();
        numeric.tighten().unwrap();
        assert_eq!(numeric.interval(a), (0.0, 4.0));
        assert_eq!(numeric.interval(b), (0.0, 4.0));
        let guesses = numeric.interpolate_midpoints();
        assert!((guesses[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chained_comparisons_propagate_transitively() {
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_exact(label("a"), 1.0);
        let b = numeric.add_interval(label("b"), 0.0, 10.0).unwrap();
        let c = numeric.add_exact(label("c"), 3.0);
        numeric.add_comparison(a, b).unwrap();
        numeric.add_comparison(b, c).unwrap();
        numeric.tighten().unwrap();
        // b is squeezed between the known values 1 and 3.
        assert_eq!(numeric.interval(b), (1.0, 3.0));
        assert!((numeric.interpolate_midpoints()[b.0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn contradictory_comparisons_are_detected() {
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_exact(label("a"), 5.0);
        let b = numeric.add_exact(label("b"), 1.0);
        numeric.add_comparison(a, b).unwrap();
        assert!(matches!(
            numeric.tighten(),
            Err(NumericOrderError::Inconsistent { .. })
        ));
    }

    #[test]
    fn cyclic_comparisons_are_rejected() {
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_interval(label("a"), 0.0, 1.0).unwrap();
        let b = numeric.add_interval(label("b"), 0.0, 1.0).unwrap();
        numeric.add_comparison(a, b).unwrap();
        assert_eq!(
            numeric.add_comparison(b, a),
            Err(NumericOrderError::CyclicConstraint)
        );
    }

    #[test]
    fn uniform_precedence_identical_intervals_is_half() {
        let p = probability_uniform_less(0.0, 1.0, 0.0, 1.0);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_precedence_disjoint_intervals_is_certain() {
        assert!((probability_uniform_less(0.0, 1.0, 2.0, 3.0) - 1.0).abs() < 1e-12);
        assert!(probability_uniform_less(2.0, 3.0, 0.0, 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_precedence_point_versus_interval() {
        // X = 1, Y ~ U[0, 4]: P[X < Y] = 3/4.
        assert!((probability_uniform_less(1.0, 1.0, 0.0, 4.0) - 0.75).abs() < 1e-12);
        // X ~ U[0, 4], Y = 1: P[X < Y] = 1/4.
        assert!((probability_uniform_less(0.0, 4.0, 1.0, 1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        let mut numeric = NumericPoRelation::new();
        let a = numeric.add_interval(label("a"), 0.0, 3.0).unwrap();
        let b = numeric.add_interval(label("b"), 1.0, 2.0).unwrap();
        let exact = numeric.precedence_probability_uniform(a, b);
        let mut rng = StdRng::seed_from_u64(11);
        let estimate = numeric.precedence_probability_monte_carlo(a, b, 20_000, &mut rng);
        assert!(
            (exact - estimate).abs() < 0.02,
            "exact {exact} vs estimate {estimate}"
        );
    }

    #[test]
    fn top_k_probability_of_dominant_element_is_high() {
        let mut numeric = NumericPoRelation::new();
        let strong = numeric.add_interval(label("strong"), 8.0, 10.0).unwrap();
        let _weak1 = numeric.add_interval(label("weak1"), 0.0, 5.0).unwrap();
        let _weak2 = numeric.add_interval(label("weak2"), 0.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let p = numeric.top_k_probability_monte_carlo(strong, 1, 2_000, &mut rng);
        assert!((p - 1.0).abs() < 1e-9);
    }
}
