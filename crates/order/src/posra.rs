//! The positive relational algebra with bag semantics on po-relations.
//!
//! Following the design the paper summarises from \[6\]: operators take
//! po-relations to po-relations, preserving the order constraints of their
//! inputs and adding only the constraints the operator semantics requires.
//! Order-ambiguous operators come in two flavours: union as *parallel*
//! (no constraints between the two sides) or *concatenation* (everything in
//! the first argument before everything in the second), and product as
//! *parallel* (component-wise order) or *lexicographic*.

use crate::porelation::{ElementId, PoRelation};

/// Selection: keeps the elements whose tuple satisfies the predicate, with
/// the induced order.
pub fn select(relation: &PoRelation, predicate: impl Fn(&[String]) -> bool) -> PoRelation {
    let mut result = PoRelation::new();
    let mut kept: Vec<(ElementId, ElementId)> = Vec::new(); // (original, new)
    for (e, tuple) in relation.elements() {
        if predicate(tuple) {
            kept.push((e, result.add_tuple(tuple.clone())));
        }
    }
    // The induced order is the restriction of the *transitive closure*: two
    // kept elements stay comparable even when the elements between them were
    // filtered out.
    for (i, &(original_a, new_a)) in kept.iter().enumerate() {
        for &(original_b, new_b) in &kept[i + 1..] {
            if relation.precedes(original_a, original_b) {
                result
                    .add_order(new_a, new_b)
                    .expect("induced order is acyclic");
            } else if relation.precedes(original_b, original_a) {
                result
                    .add_order(new_b, new_a)
                    .expect("induced order is acyclic");
            }
        }
    }
    result
}

/// Projection: keeps the listed columns of every tuple (bag semantics:
/// duplicates are kept as distinct elements), preserving the order.
pub fn project(relation: &PoRelation, columns: &[usize]) -> PoRelation {
    let mut result = PoRelation::new();
    let mut mapping = Vec::with_capacity(relation.len());
    for (_, tuple) in relation.elements() {
        let projected: Vec<String> = columns.iter().map(|&c| tuple[c].clone()).collect();
        mapping.push(result.add_tuple(projected));
    }
    for (a, b) in relation.order_edges() {
        result
            .add_order(mapping[a.0], mapping[b.0])
            .expect("order preserved");
    }
    result
}

/// Parallel union: the disjoint union of the two relations with no order
/// constraints between the sides (the "integrate two lists whose relative
/// order is unknown" case).
pub fn union_parallel(left: &PoRelation, right: &PoRelation) -> PoRelation {
    union_with(left, right, false)
}

/// Concatenation union: everything of `left` comes before everything of
/// `right` (appending one log to another).
pub fn union_concat(left: &PoRelation, right: &PoRelation) -> PoRelation {
    union_with(left, right, true)
}

fn union_with(left: &PoRelation, right: &PoRelation, concatenate: bool) -> PoRelation {
    let mut result = PoRelation::new();
    let left_map: Vec<ElementId> = left
        .elements()
        .map(|(_, t)| result.add_tuple(t.clone()))
        .collect();
    let right_map: Vec<ElementId> = right
        .elements()
        .map(|(_, t)| result.add_tuple(t.clone()))
        .collect();
    for (a, b) in left.order_edges() {
        result
            .add_order(left_map[a.0], left_map[b.0])
            .expect("acyclic");
    }
    for (a, b) in right.order_edges() {
        result
            .add_order(right_map[a.0], right_map[b.0])
            .expect("acyclic");
    }
    if concatenate {
        for &l in &left_map {
            for &r in &right_map {
                result.add_order(l, r).expect("acyclic");
            }
        }
    }
    result
}

/// Parallel (direct) product: tuples are concatenated; `(a, b) < (a', b')`
/// whenever `a ≤ a'` and `b ≤ b'` with at least one strict — here realised by
/// adding the component-wise constraints.
pub fn product_parallel(left: &PoRelation, right: &PoRelation) -> PoRelation {
    product_with(left, right, false)
}

/// Lexicographic product: pairs are ordered first by the left component,
/// then (within equal left elements) by the right component.
pub fn product_lexicographic(left: &PoRelation, right: &PoRelation) -> PoRelation {
    product_with(left, right, true)
}

fn product_with(left: &PoRelation, right: &PoRelation, lexicographic: bool) -> PoRelation {
    let mut result = PoRelation::new();
    let mut ids = vec![vec![ElementId(0); right.len()]; left.len()];
    for (l, lt) in left.elements() {
        for (r, rt) in right.elements() {
            let mut tuple = lt.clone();
            tuple.extend(rt.iter().cloned());
            ids[l.0][r.0] = result.add_tuple(tuple);
        }
    }
    // Left-component constraints: (l, r) < (l', r) when l < l'
    // (lexicographic: (l, r) < (l', r') for all r, r').
    for (a, b) in left.order_edges() {
        for r in 0..right.len() {
            if lexicographic {
                for r2 in 0..right.len() {
                    result
                        .add_order(ids[a.0][r], ids[b.0][r2])
                        .expect("acyclic");
                }
            } else {
                result.add_order(ids[a.0][r], ids[b.0][r]).expect("acyclic");
            }
        }
    }
    // Right-component constraints: (l, r) < (l, r') when r < r'.
    for (a, b) in right.order_edges() {
        #[allow(clippy::needless_range_loop)]
        for l in 0..left.len() {
            result.add_order(ids[l][a.0], ids[l][b.0]).expect("acyclic");
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[&str]) -> PoRelation {
        PoRelation::totally_ordered(items.iter().map(|s| vec![s.to_string()]).collect())
    }

    #[test]
    fn selection_preserves_order() {
        let hotels = list(&["ritz", "motel", "grand", "hostel"]);
        let fancy = select(&hotels, |t| t[0] == "ritz" || t[0] == "grand");
        assert_eq!(fancy.len(), 2);
        assert!(fancy.is_totally_ordered());
        assert!(fancy.is_possible_world(&[vec!["ritz".into()], vec!["grand".into()]]));
        assert!(!fancy.is_possible_world(&[vec!["grand".into()], vec!["ritz".into()]]));
    }

    #[test]
    fn projection_keeps_duplicates() {
        let mut po = PoRelation::new();
        po.add_tuple(vec!["a".into(), "1".into()]);
        po.add_tuple(vec!["a".into(), "2".into()]);
        let projected = project(&po, &[0]);
        assert_eq!(projected.len(), 2);
    }

    #[test]
    fn parallel_union_interleaves() {
        // Two ranked lists integrated with unknown relative order: the
        // possible worlds are all interleavings.
        let a = list(&["a1", "a2"]);
        let b = list(&["b1"]);
        let u = union_parallel(&a, &b);
        assert_eq!(u.count_linear_extensions().unwrap(), 3);
        assert!(u.is_possible_world(&[vec!["a1".into()], vec!["b1".into()], vec!["a2".into()]]));
        assert!(!u.is_possible_world(&[vec!["a2".into()], vec!["a1".into()], vec!["b1".into()]]));
    }

    #[test]
    fn concat_union_fixes_relative_order() {
        let a = list(&["a1", "a2"]);
        let b = list(&["b1"]);
        let u = union_concat(&a, &b);
        assert_eq!(u.count_linear_extensions().unwrap(), 1);
        assert!(u.is_possible_world(&[vec!["a1".into()], vec!["a2".into()], vec!["b1".into()]]));
    }

    #[test]
    fn parallel_product_pairs_hotels_and_restaurants() {
        // "choices of a hotel and restaurant in the same neighborhood":
        // both inputs ranked, the product keeps component-wise dominance.
        let hotels = list(&["h1", "h2"]);
        let restaurants = list(&["r1", "r2"]);
        let pairs = product_parallel(&hotels, &restaurants);
        assert_eq!(pairs.len(), 4);
        // (h1, r1) precedes (h2, r2) by transitivity of dominance.
        assert!(pairs.precedes(
            crate::porelation::ElementId(0),
            crate::porelation::ElementId(3)
        ));
        // (h1, r2) and (h2, r1) are incomparable.
        assert!(!pairs.is_totally_ordered());
        // Dominance order on a 2×2 grid has 2 linear extensions.
        assert_eq!(pairs.count_linear_extensions().unwrap(), 2);
    }

    #[test]
    fn lexicographic_product_is_total_for_total_inputs() {
        let hotels = list(&["h1", "h2"]);
        let restaurants = list(&["r1", "r2"]);
        let pairs = product_lexicographic(&hotels, &restaurants);
        assert!(pairs.is_totally_ordered());
        assert_eq!(pairs.count_linear_extensions().unwrap(), 1);
    }

    #[test]
    fn union_of_unordered_relations_stays_unordered() {
        let a = PoRelation::unordered(vec![vec!["x".into()]]);
        let b = PoRelation::unordered(vec![vec!["y".into()], vec!["z".into()]]);
        let u = union_parallel(&a, &b);
        assert!(u.is_unordered());
        assert_eq!(u.count_linear_extensions().unwrap(), 6);
    }

    #[test]
    fn log_integration_scenario() {
        // Two machine logs (each internally ordered) merged; a query selects
        // the error lines; the result's possible worlds respect both logs.
        let log1 = list(&["boot", "error_a", "shutdown"]);
        let log2 = list(&["start", "error_b"]);
        let merged = union_parallel(&log1, &log2);
        let errors = select(&merged, |t| t[0].starts_with("error"));
        assert_eq!(errors.len(), 2);
        // Both error orders are possible.
        assert!(errors.is_possible_world(&[vec!["error_a".into()], vec!["error_b".into()]]));
        assert!(errors.is_possible_world(&[vec!["error_b".into()], vec!["error_a".into()]]));
    }
}
