//! Set semantics for the positive relational algebra on po-relations.
//!
//! The paper's Section 3 lists set semantics as an open extension of the bag
//! semantics of [`crate::posra`]: "we would need to extend our representation
//! system to more operators, and to set semantics as well as bag semantics".
//! This module provides two complementary pieces:
//!
//! 1. a **possible-world semantics** of duplicate elimination — the possible
//!    worlds of `distinct(R)` are the sequences obtained from the linear
//!    extensions of `R` by keeping only the first occurrence of every label
//!    ([`set_possible_worlds`], [`is_set_possible_world`]);
//! 2. a **representation-level operator** [`distinct_certain`], which builds
//!    a po-relation over the distinct labels ordered by the *certain* order
//!    (label `x` before label `y` iff every `x`-element precedes every
//!    `y`-element). Its linear extensions over-approximate the possible
//!    worlds of the exact semantics, which is the soundness direction needed
//!    to answer certainty queries; [`distinct_is_exact`] detects the cases
//!    where the two coincide (notably duplicate-free relations).

use std::collections::BTreeSet;

use crate::porelation::{ElementId, OrderError, PoRelation};

/// Keeps only the first occurrence of every label in a sequence.
pub fn dedup_sequence(sequence: &[Vec<String>]) -> Vec<Vec<String>> {
    let mut seen: BTreeSet<&Vec<String>> = BTreeSet::new();
    let mut result = Vec::new();
    for tuple in sequence {
        if seen.insert(tuple) {
            result.push(tuple.clone());
        }
    }
    result
}

/// The possible worlds of `distinct(relation)`: all duplicate-free label
/// sequences obtained by deduplicating a linear extension of the relation.
///
/// Exponential (it enumerates linear extensions); refuses relations larger
/// than the enumeration limit.
pub fn set_possible_worlds(
    relation: &PoRelation,
) -> Result<BTreeSet<Vec<Vec<String>>>, OrderError> {
    let mut worlds = BTreeSet::new();
    for extension in relation.linear_extensions()? {
        let sequence: Vec<Vec<String>> = extension
            .iter()
            .map(|&e| relation.tuple(e).to_vec())
            .collect();
        worlds.insert(dedup_sequence(&sequence));
    }
    Ok(worlds)
}

/// True if the duplicate-free sequence is a possible world of
/// `distinct(relation)`.
///
/// Fast paths: on unordered relations any ordering of the distinct labels is
/// possible; on totally ordered relations the world is unique. The general
/// case enumerates linear extensions and is exponential, mirroring the
/// intractability the paper points out for possible-world membership.
pub fn is_set_possible_world(
    relation: &PoRelation,
    sequence: &[Vec<String>],
) -> Result<bool, OrderError> {
    let distinct_labels: BTreeSet<&Vec<String>> = relation.elements().map(|(_, t)| t).collect();
    let candidate: BTreeSet<&Vec<String>> = sequence.iter().collect();
    if candidate.len() != sequence.len() || candidate != distinct_labels {
        return Ok(false);
    }
    if relation.is_unordered() {
        return Ok(true);
    }
    if relation.is_totally_ordered() {
        let extensions = relation.linear_extensions()?;
        let total: Vec<Vec<String>> = extensions[0]
            .iter()
            .map(|&e| relation.tuple(e).to_vec())
            .collect();
        return Ok(dedup_sequence(&total) == sequence);
    }
    Ok(set_possible_worlds(relation)?.contains(sequence))
}

/// Duplicate elimination under the *certain order*: the result has one
/// element per distinct label, and label `x` precedes label `y` iff every
/// `x`-element precedes every `y`-element of the input.
///
/// The linear extensions of the result contain every possible world of the
/// exact set semantics (the certain order only keeps constraints that hold in
/// every linear extension of the input), so certainty judgements made on it
/// are sound.
pub fn distinct_certain(relation: &PoRelation) -> PoRelation {
    let mut labels: Vec<Vec<String>> = Vec::new();
    let mut members: Vec<Vec<ElementId>> = Vec::new();
    for (e, tuple) in relation.elements() {
        match labels.iter().position(|l| l == tuple) {
            Some(index) => members[index].push(e),
            None => {
                labels.push(tuple.clone());
                members.push(vec![e]);
            }
        }
    }
    let mut result = PoRelation::new();
    let ids: Vec<ElementId> = labels.iter().map(|l| result.add_tuple(l.clone())).collect();
    for i in 0..labels.len() {
        for j in 0..labels.len() {
            if i == j {
                continue;
            }
            let all_before = members[i]
                .iter()
                .all(|&a| members[j].iter().all(|&b| relation.precedes(a, b)));
            if all_before {
                result
                    .add_order(ids[i], ids[j])
                    .expect("certain order between label groups is acyclic");
            }
        }
    }
    result
}

/// True if the representation-level [`distinct_certain`] operator is exact
/// for this relation, i.e. its linear extensions are exactly the possible
/// worlds of the set semantics. This holds in particular when no label is
/// duplicated; the general comparison enumerates both sides.
pub fn distinct_is_exact(relation: &PoRelation) -> Result<bool, OrderError> {
    let exact = set_possible_worlds(relation)?;
    let approximated = distinct_certain(relation);
    let mut approx_worlds = BTreeSet::new();
    for extension in approximated.linear_extensions()? {
        let sequence: Vec<Vec<String>> = extension
            .iter()
            .map(|&e| approximated.tuple(e).to_vec())
            .collect();
        approx_worlds.insert(sequence);
    }
    Ok(exact == approx_worlds)
}

/// Set-semantics union: parallel (order-free between the sides) union
/// followed by duplicate elimination under the certain order.
pub fn union_distinct(left: &PoRelation, right: &PoRelation) -> PoRelation {
    distinct_certain(&crate::posra::union_parallel(left, right))
}

/// The distinct labels shared by both relations, as an unordered po-relation
/// (set-semantics intersection; the input orders generally disagree, so no
/// order constraint is certain).
pub fn intersection_distinct(left: &PoRelation, right: &PoRelation) -> PoRelation {
    let right_labels: BTreeSet<&Vec<String>> = right.elements().map(|(_, t)| t).collect();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut result = PoRelation::new();
    for (_, tuple) in left.elements() {
        if right_labels.contains(tuple) && seen.insert(tuple.clone()) {
            result.add_tuple(tuple.clone());
        }
    }
    result
}

/// The distinct labels of `left` that do not occur in `right`, with the
/// certain order induced from `left` (set-semantics difference).
pub fn difference_distinct(left: &PoRelation, right: &PoRelation) -> PoRelation {
    let right_labels: BTreeSet<&Vec<String>> = right.elements().map(|(_, t)| t).collect();
    let filtered = crate::posra::select(left, |tuple| !right_labels.contains(&tuple.to_vec()));
    distinct_certain(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(items: &[&str]) -> Vec<Vec<String>> {
        items.iter().map(|s| vec![s.to_string()]).collect()
    }

    fn list(items: &[&str]) -> PoRelation {
        PoRelation::totally_ordered(labels(items))
    }

    #[test]
    fn dedup_keeps_first_occurrences() {
        let sequence = labels(&["a", "b", "a", "c", "b"]);
        assert_eq!(dedup_sequence(&sequence), labels(&["a", "b", "c"]));
    }

    #[test]
    fn set_worlds_of_total_order_with_duplicates() {
        let po = list(&["a", "b", "a"]);
        let worlds = set_possible_worlds(&po).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(worlds.contains(&labels(&["a", "b"])));
    }

    #[test]
    fn set_worlds_of_parallel_union_cover_both_orders() {
        // Two rankings of the same two items integrated: distinct results can
        // come out in either order.
        let first = list(&["x", "y"]);
        let second = list(&["y", "x"]);
        let merged = crate::posra::union_parallel(&first, &second);
        let worlds = set_possible_worlds(&merged).unwrap();
        assert!(worlds.contains(&labels(&["x", "y"])));
        assert!(worlds.contains(&labels(&["y", "x"])));
        assert_eq!(worlds.len(), 2);
    }

    #[test]
    fn membership_fast_paths() {
        let unordered = PoRelation::unordered(labels(&["a", "b", "b"]));
        assert!(is_set_possible_world(&unordered, &labels(&["b", "a"])).unwrap());
        assert!(is_set_possible_world(&unordered, &labels(&["a", "b"])).unwrap());
        assert!(!is_set_possible_world(&unordered, &labels(&["a"])).unwrap());
        assert!(!is_set_possible_world(&unordered, &labels(&["a", "b", "b"])).unwrap());

        let total = list(&["a", "b", "a"]);
        assert!(is_set_possible_world(&total, &labels(&["a", "b"])).unwrap());
        assert!(!is_set_possible_world(&total, &labels(&["b", "a"])).unwrap());
    }

    #[test]
    fn distinct_certain_merges_duplicates_and_keeps_certain_order() {
        // a1 < b and a2 < b, with a1, a2 both labeled "a": "a" certainly
        // precedes "b" in the distinct result.
        let mut po = PoRelation::new();
        let a1 = po.add_tuple(vec!["a".into()]);
        let a2 = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        po.add_order(a1, b).unwrap();
        po.add_order(a2, b).unwrap();
        let distinct = distinct_certain(&po);
        assert_eq!(distinct.len(), 2);
        assert!(distinct.is_possible_world(&labels(&["a", "b"])));
        assert!(!distinct.is_possible_world(&labels(&["b", "a"])));
    }

    #[test]
    fn distinct_certain_drops_uncertain_order() {
        // Only one of the two "a" elements precedes "b": the order between
        // the labels is not certain, so the distinct result leaves them
        // incomparable.
        let mut po = PoRelation::new();
        let a1 = po.add_tuple(vec!["a".into()]);
        let _a2 = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        po.add_order(a1, b).unwrap();
        let distinct = distinct_certain(&po);
        assert!(distinct.is_unordered());
    }

    #[test]
    fn distinct_exactness_detection() {
        // Duplicate-free relation: exact.
        let duplicate_free = list(&["a", "b", "c"]);
        assert!(distinct_is_exact(&duplicate_free).unwrap());
        // Strict over-approximation: with a1 < b and a second free "a"
        // element, every linear extension starts with some "a", so the exact
        // set semantics only produces "a b" — but the certain order between
        // the labels is empty, so the approximation also admits "b a".
        let mut po = PoRelation::new();
        let a1 = po.add_tuple(vec!["a".into()]);
        let _a2 = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        po.add_order(a1, b).unwrap();
        assert!(!distinct_is_exact(&po).unwrap());
    }

    #[test]
    fn union_of_agreeing_rankings_exact_versus_certain() {
        let first = list(&["gold", "silver"]);
        let second = list(&["gold", "silver"]);
        let merged = crate::posra::union_parallel(&first, &second);
        // Exact set semantics: every interleaving starts with some "gold"
        // element, so the only deduplicated world is gold-then-silver.
        let exact = set_possible_worlds(&merged).unwrap();
        assert_eq!(exact.len(), 1);
        assert!(exact.contains(&labels(&["gold", "silver"])));
        // The certain-order operator only keeps constraints holding between
        // *every* pair across the two sides, so it over-approximates: the
        // distinct result is unordered (both orders admitted).
        let distinct = union_distinct(&first, &second);
        assert_eq!(distinct.len(), 2);
        assert!(distinct.is_unordered());
        assert!(!distinct_is_exact(&merged).unwrap());
    }

    #[test]
    fn union_distinct_of_conflicting_rankings_is_unordered() {
        let first = list(&["gold", "silver"]);
        let second = list(&["silver", "gold"]);
        let merged = union_distinct(&first, &second);
        assert_eq!(merged.len(), 2);
        assert!(merged.is_unordered());
    }

    #[test]
    fn intersection_and_difference() {
        let left = list(&["a", "b", "c"]);
        let right = list(&["b", "c", "d"]);
        let both = intersection_distinct(&left, &right);
        assert_eq!(both.len(), 2);
        assert!(both.is_unordered());
        let only_left = difference_distinct(&left, &right);
        assert_eq!(only_left.len(), 1);
        assert_eq!(only_left.tuple(ElementId(0)), &["a".to_string()][..]);
    }
}
