//! # stuc-order — order-uncertain data
//!
//! The paper's Section 3: data whose *order* is uncertain. The representation
//! system is the labeled partial order (a *po-relation*): a bag of tuples
//! together with a partial order on them; the possible worlds are its linear
//! extensions. The positive relational algebra gets a bag semantics over
//! po-relations (selection, projection, two unions, two products), following
//! the design of the cited "Querying order-incomplete data" work \[6\].
//!
//! As the paper notes, many tasks on these representations are intractable —
//! possible-world membership for a labeled sequence, and counting linear
//! extensions \[14\] — but specific structures (unordered relations, totally
//! ordered relations) remain tractable. This crate implements both the
//! general (exponential) algorithms and the tractable special cases, which is
//! what experiment E9 measures.
//!
//! Beyond the bag-semantics core, the crate covers the extensions Section 3
//! lists as open directions:
//!
//! * [`setops`] — set semantics (duplicate elimination and set operations)
//!   with both a possible-world semantics and a certain-order
//!   representation-level operator;
//! * [`probability`] — a probabilistic model on orders: the uniform
//!   distribution over linear extensions, with exact precedence / rank / top-k
//!   probabilities and exact uniform sampling (experiment E12);
//! * [`numeric`] — order arising from uncertain numerical values (value
//!   intervals, comparison-constraint propagation, interpolation, and the
//!   independent-uniform probabilistic model);
//! * [`annotated`] — fact uncertainty combined with order uncertainty:
//!   po-relations whose elements carry c-instance-style event annotations.

pub mod annotated;
pub mod numeric;
pub mod porelation;
pub mod posra;
pub mod probability;
pub mod setops;

pub use annotated::AnnotatedPoRelation;
pub use numeric::NumericPoRelation;
pub use porelation::PoRelation;
pub use probability::LinearExtensionDistribution;
