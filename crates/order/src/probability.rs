//! A probabilistic model on order-uncertain data: the uniform distribution
//! over the linear extensions of a po-relation.
//!
//! The paper's Section 3 asks "How can we define a probability distribution
//! on the possible ways to order the data?" and notes that even *counting*
//! the possible worlds of partially ordered data may be intractable
//! (Brightwell–Winkler). This module implements the natural first answer —
//! every linear extension is equally likely — with exact computation by
//! dynamic programming over downsets (exponential in the number of elements,
//! hence capped at [`ENUMERATION_LIMIT`]) and exact uniform sampling, so
//! that the tractability frontier the paper describes can be measured
//! (experiment E12).

use crate::porelation::{ElementId, OrderError, PoRelation, ENUMERATION_LIMIT};
use rand::Rng;

/// The uniform distribution over the linear extensions of a po-relation.
///
/// Construction precomputes, for every downset `S` of the order, the number
/// of ways to arrange `S` as a prefix (`down[S]`) and the number of ways to
/// arrange its complement as a suffix (`up[S]`). All per-query operations
/// (precedence probabilities, rank distributions, uniform sampling) then run
/// in time polynomial in the number of elements times the table size.
#[derive(Debug, Clone)]
pub struct LinearExtensionDistribution {
    element_count: usize,
    /// `predecessors[x]` = bitmask of the direct order-predecessors of `x`.
    predecessors: Vec<u64>,
    /// `down[S]` = number of linear arrangements of `S` as a prefix.
    down: Vec<u64>,
    /// `up[S]` = number of linear arrangements of the complement of `S` as a
    /// suffix, given that all of `S` is already placed.
    up: Vec<u64>,
}

impl LinearExtensionDistribution {
    /// Builds the distribution for a po-relation.
    ///
    /// Fails with [`OrderError::TooManyElements`] beyond the enumeration
    /// limit (the tables have `2^n` entries).
    pub fn new(relation: &PoRelation) -> Result<Self, OrderError> {
        let n = relation.len();
        if n > ENUMERATION_LIMIT {
            return Err(OrderError::TooManyElements(n));
        }
        let mut predecessors = vec![0u64; n];
        for (a, b) in relation.order_edges() {
            predecessors[b.0] |= 1 << a.0;
        }
        let (down, up) = Self::tables(n, &predecessors);
        Ok(LinearExtensionDistribution {
            element_count: n,
            predecessors,
            down,
            up,
        })
    }

    fn tables(n: usize, predecessors: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let size = 1usize << n;
        let mut down = vec![0u64; size];
        down[0] = 1;
        for s in 1..size {
            let mask = s as u64;
            let mut total = 0u64;
            let mut bits = mask;
            while bits != 0 {
                let x = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // x can be the last element of the prefix `s` iff all its
                // predecessors are already in `s` (they are then before it).
                if predecessors[x] & mask == predecessors[x] {
                    total += down[s & !(1usize << x)];
                }
            }
            down[s] = total;
        }
        let mut up = vec![0u64; size];
        up[size - 1] = 1;
        for s in (0..size - 1).rev() {
            let mask = s as u64;
            let mut total = 0u64;
            for x in 0..n {
                if mask & (1 << x) != 0 {
                    continue;
                }
                // x can come immediately after the prefix `s` iff all its
                // predecessors are in `s`.
                if predecessors[x] & mask == predecessors[x] {
                    total += up[s | (1usize << x)];
                }
            }
            up[s] = total;
        }
        (down, up)
    }

    /// Number of elements of the underlying relation.
    pub fn element_count(&self) -> usize {
        self.element_count
    }

    /// The total number of linear extensions (the size of the sample space).
    pub fn total_extensions(&self) -> u64 {
        self.up[0]
    }

    /// The probability that element `a` appears before element `b` in a
    /// uniformly chosen linear extension.
    ///
    /// Computed as the fraction of linear extensions of the order augmented
    /// with the extra constraint `a < b`.
    pub fn precedence_probability(&self, a: ElementId, b: ElementId) -> f64 {
        if a == b {
            return 0.0;
        }
        let total = self.total_extensions();
        if total == 0 {
            return 0.0;
        }
        let mut predecessors = self.predecessors.clone();
        predecessors[b.0] |= 1 << a.0;
        let (_, up) = Self::tables(self.element_count, &predecessors);
        up[0] as f64 / total as f64
    }

    /// The distribution of the rank (0-based position) of element `e` in a
    /// uniformly chosen linear extension. The returned vector has one entry
    /// per possible rank and sums to 1 (when the order is consistent).
    pub fn rank_distribution(&self, e: ElementId) -> Vec<f64> {
        let n = self.element_count;
        let total = self.total_extensions();
        let mut distribution = vec![0.0; n];
        if total == 0 {
            return distribution;
        }
        let size = 1usize << n;
        for s in 0..size {
            let mask = s as u64;
            if mask & (1 << e.0) != 0 {
                continue;
            }
            if self.predecessors[e.0] & mask != self.predecessors[e.0] {
                continue;
            }
            let prefix_ways = self.down[s];
            if prefix_ways == 0 {
                continue;
            }
            let suffix_ways = self.up[s | (1usize << e.0)];
            if suffix_ways == 0 {
                continue;
            }
            let rank = mask.count_ones() as usize;
            distribution[rank] += (prefix_ways * suffix_ways) as f64 / total as f64;
        }
        distribution
    }

    /// The probability that element `e` is among the first `k` positions of a
    /// uniformly chosen linear extension (a top-`k` membership probability,
    /// as in the paper's crowd data-mining motivation).
    pub fn top_k_probability(&self, e: ElementId, k: usize) -> f64 {
        self.rank_distribution(e).iter().take(k).sum()
    }

    /// The expected (0-based) rank of element `e`.
    pub fn expected_rank(&self, e: ElementId) -> f64 {
        self.rank_distribution(e)
            .iter()
            .enumerate()
            .map(|(rank, p)| rank as f64 * p)
            .sum()
    }

    /// Draws a linear extension uniformly at random.
    ///
    /// Uses the suffix-count table: after placing the downset `S`, the next
    /// element is chosen with probability proportional to the number of
    /// completions it leaves open, which yields the exact uniform
    /// distribution over linear extensions.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<ElementId> {
        let n = self.element_count;
        let mut placed = 0usize;
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let remaining_ways = self.up[placed];
            if remaining_ways == 0 {
                break;
            }
            let mut target = rng.random_range(0..remaining_ways);
            for x in 0..n {
                if placed & (1usize << x) != 0 {
                    continue;
                }
                if self.predecessors[x] & placed as u64 != self.predecessors[x] {
                    continue;
                }
                let ways = self.up[placed | (1usize << x)];
                if target < ways {
                    order.push(ElementId(x));
                    placed |= 1usize << x;
                    break;
                }
                target -= ways;
            }
        }
        order
    }

    /// The probability that the label at position 0 of a uniformly chosen
    /// linear extension of `relation` equals `label` (a "who is ranked
    /// first?" query). The relation must be the one the distribution was
    /// built from.
    pub fn first_label_probability(&self, relation: &PoRelation, label: &[String]) -> f64 {
        relation
            .elements()
            .filter(|(_, tuple)| tuple.as_slice() == label)
            .map(|(e, _)| self.rank_distribution(e)[0])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels(items: &[&str]) -> Vec<Vec<String>> {
        items.iter().map(|s| vec![s.to_string()]).collect()
    }

    #[test]
    fn total_matches_count_linear_extensions() {
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        let c = po.add_tuple(vec!["c".into()]);
        let d = po.add_tuple(vec!["d".into()]);
        po.add_order(a, b).unwrap();
        po.add_order(c, b).unwrap();
        po.add_order(c, d).unwrap();
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        assert_eq!(
            dist.total_extensions(),
            po.count_linear_extensions().unwrap()
        );
    }

    #[test]
    fn precedence_probability_unordered_pair_is_half() {
        let po = PoRelation::unordered(labels(&["a", "b"]));
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        let p = dist.precedence_probability(ElementId(0), ElementId(1));
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precedence_probability_respects_constraints() {
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        po.add_order(a, b).unwrap();
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        assert!((dist.precedence_probability(a, b) - 1.0).abs() < 1e-12);
        assert!(dist.precedence_probability(b, a).abs() < 1e-12);
    }

    #[test]
    fn precedence_probabilities_are_complementary() {
        // In a fence a < b, c < b, c < d the pair (a, d) is unconstrained but
        // not symmetric; still P[a<d] + P[d<a] = 1.
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        let c = po.add_tuple(vec!["c".into()]);
        let d = po.add_tuple(vec!["d".into()]);
        po.add_order(a, b).unwrap();
        po.add_order(c, b).unwrap();
        po.add_order(c, d).unwrap();
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        let forward = dist.precedence_probability(a, d);
        let backward = dist.precedence_probability(d, a);
        assert!((forward + backward - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_distribution_sums_to_one_and_matches_enumeration() {
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        let c = po.add_tuple(vec!["c".into()]);
        po.add_order(a, b).unwrap();
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        for element in [a, b, c] {
            let ranks = dist.rank_distribution(element);
            let sum: f64 = ranks.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Enumerate to cross-check the rank distribution of c.
        let extensions = po.linear_extensions().unwrap();
        let total = extensions.len() as f64;
        let mut expected = [0.0; 3];
        for ext in &extensions {
            let position = ext.iter().position(|&e| e == c).unwrap();
            expected[position] += 1.0 / total;
        }
        let computed = dist.rank_distribution(c);
        for (x, y) in expected.iter().zip(computed.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_and_expected_rank_for_total_order() {
        let po = PoRelation::totally_ordered(labels(&["first", "second", "third"]));
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        assert!((dist.top_k_probability(ElementId(0), 1) - 1.0).abs() < 1e-12);
        assert!(dist.top_k_probability(ElementId(2), 2).abs() < 1e-12);
        assert!((dist.expected_rank(ElementId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_the_order_and_is_roughly_uniform() {
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        let c = po.add_tuple(vec!["c".into()]);
        po.add_order(a, b).unwrap();
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut c_first = 0usize;
        let trials = 3000;
        for _ in 0..trials {
            let sample = dist.sample(&mut rng);
            assert_eq!(sample.len(), 3);
            let pos_a = sample.iter().position(|&e| e == a).unwrap();
            let pos_b = sample.iter().position(|&e| e == b).unwrap();
            assert!(pos_a < pos_b);
            if sample[0] == c {
                c_first += 1;
            }
        }
        // c is first in 1/3 of the 3 linear extensions: a b c, a c b, c a b.
        let observed = c_first as f64 / trials as f64;
        assert!((observed - 1.0 / 3.0).abs() < 0.05, "observed {observed}");
    }

    #[test]
    fn first_label_probability_aggregates_duplicates() {
        // Two elements labeled "x" and one "y", all unordered: P[first = x] = 2/3.
        let po = PoRelation::unordered(labels(&["x", "x", "y"]));
        let dist = LinearExtensionDistribution::new(&po).unwrap();
        let p = dist.first_label_probability(&po, &[String::from("x")]);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn too_many_elements_is_rejected() {
        let po = PoRelation::unordered(labels(&vec!["t"; ENUMERATION_LIMIT + 1]));
        assert!(matches!(
            LinearExtensionDistribution::new(&po),
            Err(OrderError::TooManyElements(_))
        ));
    }
}
