//! Labeled partial orders (po-relations) and their possible worlds.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A handle to one tuple (element) of a [`PoRelation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub usize);

/// A po-relation: a bag of labeled tuples with a partial order on them.
///
/// The label of an element is its tuple of values; distinct elements may
/// carry equal labels (bag semantics). The possible worlds are the linear
/// extensions of the order, read as sequences of labels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoRelation {
    /// The tuples, indexed by element id.
    tuples: Vec<Vec<String>>,
    /// Direct order constraints `a < b` (not necessarily transitively closed).
    edges: BTreeSet<(usize, usize)>,
}

stuc_errors::stuc_error! {
    /// Errors raised by po-relation construction and evaluation.
    #[derive(Clone, PartialEq, Eq)]
    pub enum OrderError {
        /// Adding this constraint would create a cycle.
        CyclicOrder,
        /// The arity of a tuple does not match the relation.
        ArityMismatch { expected: usize, got: usize },
        /// Too many elements for an exhaustive operation.
        TooManyElements(usize),
    }
    display {
        Self::CyclicOrder => "order constraints are cyclic",
        Self::ArityMismatch { expected, got } => "tuple arity {got} does not match relation arity {expected}",
        Self::TooManyElements(n) => "{n} elements exceed the exhaustive-enumeration limit",
    }
}

/// Cap for exhaustive linear-extension enumeration and counting.
pub const ENUMERATION_LIMIT: usize = 20;

impl PoRelation {
    /// Creates an empty po-relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an unordered relation (empty order) from tuples.
    pub fn unordered(tuples: Vec<Vec<String>>) -> Self {
        PoRelation {
            tuples,
            edges: BTreeSet::new(),
        }
    }

    /// Builds a totally ordered relation (a list) from tuples, ordered as
    /// given.
    pub fn totally_ordered(tuples: Vec<Vec<String>>) -> Self {
        let mut edges = BTreeSet::new();
        for i in 0..tuples.len().saturating_sub(1) {
            edges.insert((i, i + 1));
        }
        PoRelation { tuples, edges }
    }

    /// Adds a tuple and returns its element id.
    pub fn add_tuple(&mut self, tuple: Vec<String>) -> ElementId {
        self.tuples.push(tuple);
        ElementId(self.tuples.len() - 1)
    }

    /// Adds the order constraint `before < after`.
    ///
    /// Returns an error (and leaves the relation unchanged) if the constraint
    /// would create a cycle.
    pub fn add_order(&mut self, before: ElementId, after: ElementId) -> Result<(), OrderError> {
        if before == after || self.precedes(after, before) {
            return Err(OrderError::CyclicOrder);
        }
        self.edges.insert((before.0, after.0));
        Ok(())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no elements.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple of an element.
    pub fn tuple(&self, e: ElementId) -> &[String] {
        &self.tuples[e.0]
    }

    /// Iterator over `(element, tuple)`.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &Vec<String>)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (ElementId(i), t))
    }

    /// The direct order constraints.
    pub fn order_edges(&self) -> impl Iterator<Item = (ElementId, ElementId)> + '_ {
        self.edges
            .iter()
            .map(|&(a, b)| (ElementId(a), ElementId(b)))
    }

    /// True if `a` precedes `b` in the transitive closure of the order.
    pub fn precedes(&self, a: ElementId, b: ElementId) -> bool {
        if a == b {
            return false;
        }
        let successors = self.successor_lists();
        let mut seen = vec![false; self.tuples.len()];
        let mut stack = vec![a.0];
        seen[a.0] = true;
        while let Some(x) = stack.pop() {
            for &y in successors.get(&x).map(|v| v.as_slice()).unwrap_or(&[]) {
                if y == b.0 {
                    return true;
                }
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    fn successor_lists(&self) -> BTreeMap<usize, Vec<usize>> {
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            map.entry(a).or_default().push(b);
        }
        map
    }

    /// True if the order is total (every pair of elements is comparable).
    pub fn is_totally_ordered(&self) -> bool {
        let n = self.tuples.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if !self.precedes(ElementId(a), ElementId(b))
                    && !self.precedes(ElementId(b), ElementId(a))
                {
                    return false;
                }
            }
        }
        true
    }

    /// True if the order is empty (an unordered bag).
    pub fn is_unordered(&self) -> bool {
        self.edges.is_empty()
    }

    /// All linear extensions, as sequences of element ids. Exponential;
    /// refuses relations larger than [`ENUMERATION_LIMIT`].
    pub fn linear_extensions(&self) -> Result<Vec<Vec<ElementId>>, OrderError> {
        let n = self.tuples.len();
        if n > ENUMERATION_LIMIT {
            return Err(OrderError::TooManyElements(n));
        }
        let mut results = Vec::new();
        let mut remaining: BTreeSet<usize> = (0..n).collect();
        let mut prefix = Vec::new();
        self.extend_linearly(&mut remaining, &mut prefix, &mut results);
        Ok(results)
    }

    fn extend_linearly(
        &self,
        remaining: &mut BTreeSet<usize>,
        prefix: &mut Vec<ElementId>,
        results: &mut Vec<Vec<ElementId>>,
    ) {
        if remaining.is_empty() {
            results.push(prefix.clone());
            return;
        }
        let candidates: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&x| {
                // x is minimal among the remaining elements.
                !self
                    .edges
                    .iter()
                    .any(|&(a, b)| b == x && remaining.contains(&a))
            })
            .collect();
        for x in candidates {
            remaining.remove(&x);
            prefix.push(ElementId(x));
            self.extend_linearly(remaining, prefix, results);
            prefix.pop();
            remaining.insert(x);
        }
    }

    /// The number of linear extensions, by dynamic programming over downsets
    /// (`O(2^n · n)`); the paper cites Brightwell–Winkler for the hardness of
    /// this problem in general.
    pub fn count_linear_extensions(&self) -> Result<u64, OrderError> {
        let n = self.tuples.len();
        if n > ENUMERATION_LIMIT {
            return Err(OrderError::TooManyElements(n));
        }
        if n == 0 {
            return Ok(1);
        }
        // predecessors[x] = bitmask of elements that must come before x.
        let mut predecessors = vec![0u64; n];
        for &(a, b) in &self.edges {
            predecessors[b] |= 1 << a;
        }
        let full = (1u64 << n) - 1;
        let mut count: HashMap<u64, u64> = HashMap::new();
        count.insert(0, 1);
        let mut subsets: Vec<u64> = (0..=full).collect();
        subsets.sort_by_key(|s| s.count_ones());
        for &s in &subsets {
            if s == 0 {
                continue;
            }
            let mut total = 0u64;
            let mut bits = s;
            while bits != 0 {
                let x = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // x can be the last element of the prefix s iff all its
                // predecessors are in s.
                if predecessors[x] & s == predecessors[x] {
                    total += count.get(&(s & !(1 << x))).copied().unwrap_or(0);
                }
            }
            count.insert(s, total);
        }
        Ok(count[&full])
    }

    /// True if the given sequence of labels (tuples) is one of the possible
    /// worlds, i.e. is the label sequence of some linear extension.
    ///
    /// This is the problem the paper points out is intractable in general
    /// (the sequence gives labels, not element identities, so a matching must
    /// be found); the implementation is a backtracking search, with the two
    /// tractable special cases (unordered and totally ordered relations)
    /// short-circuited.
    pub fn is_possible_world(&self, sequence: &[Vec<String>]) -> bool {
        if sequence.len() != self.tuples.len() {
            return false;
        }
        // Tractable special case 1: totally ordered — just compare label
        // sequences directly.
        if self.is_totally_ordered() {
            if let Ok(extensions) = self.single_total_order() {
                return extensions
                    .iter()
                    .map(|e| &self.tuples[e.0])
                    .eq(sequence.iter());
            }
        }
        // Tractable special case 2: unordered — compare label multisets.
        if self.is_unordered() {
            let mut ours: Vec<&Vec<String>> = self.tuples.iter().collect();
            let mut theirs: Vec<&Vec<String>> = sequence.iter().collect();
            ours.sort();
            theirs.sort();
            return ours == theirs;
        }
        // General case: backtracking assignment of sequence positions to
        // elements respecting labels and the order.
        let mut used = vec![false; self.tuples.len()];
        self.match_sequence(sequence, 0, &mut used, &mut Vec::new())
    }

    fn single_total_order(&self) -> Result<Vec<ElementId>, OrderError> {
        // Topological sort (unique when totally ordered).
        let n = self.tuples.len();
        let mut indegree = vec![0usize; n];
        for &(_, b) in &self.edges {
            indegree[b] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<usize> = (0..n).filter(|&x| indegree[x] == 0).collect();
        while let Some(x) = queue.pop() {
            order.push(ElementId(x));
            for &(a, b) in &self.edges {
                if a == x {
                    indegree[b] -= 1;
                    if indegree[b] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(OrderError::CyclicOrder)
        }
    }

    fn match_sequence(
        &self,
        sequence: &[Vec<String>],
        position: usize,
        used: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if position == sequence.len() {
            return true;
        }
        for e in 0..self.tuples.len() {
            if used[e] || self.tuples[e] != sequence[position] {
                continue;
            }
            // All order-predecessors of e must already be placed.
            let ok = self
                .edges
                .iter()
                .filter(|&&(_, b)| b == e)
                .all(|&(a, _)| chosen.contains(&a));
            if !ok {
                continue;
            }
            used[e] = true;
            chosen.push(e);
            if self.match_sequence(sequence, position + 1, used, chosen) {
                return true;
            }
            chosen.pop();
            used[e] = false;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(items: &[&str]) -> Vec<Vec<String>> {
        items.iter().map(|s| vec![s.to_string()]).collect()
    }

    #[test]
    fn totally_ordered_has_one_extension() {
        let po = PoRelation::totally_ordered(labels(&["a", "b", "c"]));
        assert!(po.is_totally_ordered());
        assert_eq!(po.count_linear_extensions().unwrap(), 1);
        assert_eq!(po.linear_extensions().unwrap().len(), 1);
    }

    #[test]
    fn unordered_has_factorial_extensions() {
        let po = PoRelation::unordered(labels(&["a", "b", "c", "d"]));
        assert!(po.is_unordered());
        assert_eq!(po.count_linear_extensions().unwrap(), 24);
        assert_eq!(po.linear_extensions().unwrap().len(), 24);
    }

    #[test]
    fn count_matches_enumeration_on_fence_poset() {
        // a < b, c < b, c < d: a "fence" with 3 linear extensions... check by
        // both methods rather than by hand.
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        let c = po.add_tuple(vec!["c".into()]);
        let d = po.add_tuple(vec!["d".into()]);
        po.add_order(a, b).unwrap();
        po.add_order(c, b).unwrap();
        po.add_order(c, d).unwrap();
        let enumerated = po.linear_extensions().unwrap().len() as u64;
        assert_eq!(po.count_linear_extensions().unwrap(), enumerated);
        assert!(enumerated > 1);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut po = PoRelation::new();
        let a = po.add_tuple(vec!["a".into()]);
        let b = po.add_tuple(vec!["b".into()]);
        po.add_order(a, b).unwrap();
        assert_eq!(po.add_order(b, a), Err(OrderError::CyclicOrder));
        assert_eq!(po.add_order(a, a), Err(OrderError::CyclicOrder));
    }

    #[test]
    fn precedes_is_transitive() {
        let po = PoRelation::totally_ordered(labels(&["a", "b", "c"]));
        assert!(po.precedes(ElementId(0), ElementId(2)));
        assert!(!po.precedes(ElementId(2), ElementId(0)));
    }

    #[test]
    fn possible_world_check_total_order() {
        let po = PoRelation::totally_ordered(labels(&["a", "b", "c"]));
        assert!(po.is_possible_world(&labels(&["a", "b", "c"])));
        assert!(!po.is_possible_world(&labels(&["b", "a", "c"])));
        assert!(!po.is_possible_world(&labels(&["a", "b"])));
    }

    #[test]
    fn possible_world_check_unordered() {
        let po = PoRelation::unordered(labels(&["a", "b", "b"]));
        assert!(po.is_possible_world(&labels(&["b", "a", "b"])));
        assert!(!po.is_possible_world(&labels(&["a", "a", "b"])));
    }

    #[test]
    fn possible_world_check_with_duplicate_labels_and_order() {
        // Two elements labeled "x" with one constrained before "y".
        let mut po = PoRelation::new();
        let x1 = po.add_tuple(vec!["x".into()]);
        let _x2 = po.add_tuple(vec!["x".into()]);
        let y = po.add_tuple(vec!["y".into()]);
        po.add_order(x1, y).unwrap();
        // "x y x" is realizable (the unconstrained x goes last).
        assert!(po.is_possible_world(&labels(&["x", "y", "x"])));
        // "y x x" is not: some x must precede y.
        assert!(!po.is_possible_world(&labels(&["y", "x", "x"])));
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let po = PoRelation::unordered(labels(&vec!["t"; ENUMERATION_LIMIT + 1]));
        assert!(matches!(
            po.count_linear_extensions(),
            Err(OrderError::TooManyElements(_))
        ));
    }

    #[test]
    fn empty_relation() {
        let po = PoRelation::new();
        assert_eq!(po.count_linear_extensions().unwrap(), 1);
        assert!(po.is_possible_world(&[]));
    }
}
