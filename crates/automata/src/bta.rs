//! Bottom-up nondeterministic tree automata.
//!
//! A bottom-up tree automaton assigns states to tree nodes from the leaves
//! upward: leaf transitions depend on the leaf label, unary and binary
//! transitions depend on the label and the children's states. A tree is
//! accepted when the root can be assigned an accepting state.
//!
//! Tree automata capture exactly the MSO-definable tree languages
//! (Thatcher–Wright), which is why the paper phrases its tractability
//! results in terms of running automata: any query that compiles to an
//! automaton — MSO, tree patterns, frontier-guarded Datalog — inherits them.
//! This module provides the automaton type, subset-construction runs,
//! Boolean combinations, and a small library of MSO-style properties used by
//! tests, examples and benchmarks.

use crate::tree::LabeledTree;
use std::collections::{BTreeMap, BTreeSet};

/// A bottom-up nondeterministic tree automaton over `usize` labels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BottomUpTreeAutomaton {
    /// Number of states (states are `0..state_count`).
    pub state_count: usize,
    /// Leaf transitions: label → states reachable at a leaf with that label.
    pub leaf_transitions: BTreeMap<usize, BTreeSet<usize>>,
    /// Unary transitions: (label, child state) → states.
    pub unary_transitions: BTreeMap<(usize, usize), BTreeSet<usize>>,
    /// Binary transitions: (label, left state, right state) → states.
    pub binary_transitions: BTreeMap<(usize, usize, usize), BTreeSet<usize>>,
    /// Accepting states.
    pub accepting: BTreeSet<usize>,
}

impl BottomUpTreeAutomaton {
    /// Creates an automaton with the given number of states and no
    /// transitions.
    pub fn new(state_count: usize) -> Self {
        BottomUpTreeAutomaton {
            state_count,
            ..Default::default()
        }
    }

    /// Adds a leaf transition.
    pub fn add_leaf_transition(&mut self, label: usize, state: usize) {
        self.leaf_transitions
            .entry(label)
            .or_default()
            .insert(state);
    }

    /// Adds a unary transition.
    pub fn add_unary_transition(&mut self, label: usize, child: usize, state: usize) {
        self.unary_transitions
            .entry((label, child))
            .or_default()
            .insert(state);
    }

    /// Adds a binary transition.
    pub fn add_binary_transition(&mut self, label: usize, left: usize, right: usize, state: usize) {
        self.binary_transitions
            .entry((label, left, right))
            .or_default()
            .insert(state);
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, state: usize) {
        self.accepting.insert(state);
    }

    /// The set of states reachable at a node given its label and the state
    /// sets of its children (subset construction step).
    pub fn step(&self, label: usize, children: &[&BTreeSet<usize>]) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        match children {
            [] => {
                if let Some(states) = self.leaf_transitions.get(&label) {
                    out.extend(states.iter().copied());
                }
            }
            [child] => {
                for &c in child.iter() {
                    if let Some(states) = self.unary_transitions.get(&(label, c)) {
                        out.extend(states.iter().copied());
                    }
                }
            }
            [left, right] => {
                for &l in left.iter() {
                    for &r in right.iter() {
                        if let Some(states) = self.binary_transitions.get(&(label, l, r)) {
                            out.extend(states.iter().copied());
                        }
                    }
                }
            }
            _ => panic!("tree nodes have at most two children"),
        }
        out
    }

    /// The set of states reachable at the root of a tree.
    pub fn reachable_states(&self, tree: &LabeledTree) -> BTreeSet<usize> {
        let Some(root) = tree.root() else {
            return BTreeSet::new();
        };
        let mut states: Vec<BTreeSet<usize>> = Vec::with_capacity(tree.len());
        for (_, node) in tree.iter_bottom_up() {
            let children: Vec<&BTreeSet<usize>> =
                node.children.iter().map(|&c| &states[c]).collect();
            states.push(self.step(node.label, &children));
        }
        states[root].clone()
    }

    /// True if the automaton accepts the tree.
    pub fn accepts(&self, tree: &LabeledTree) -> bool {
        self.reachable_states(tree)
            .iter()
            .any(|s| self.accepting.contains(s))
    }

    /// The product automaton accepting the intersection of the two languages.
    pub fn intersection(&self, other: &BottomUpTreeAutomaton) -> BottomUpTreeAutomaton {
        self.product(other, |a, b| a && b)
    }

    /// The product automaton accepting the union of the two languages.
    pub fn union(&self, other: &BottomUpTreeAutomaton) -> BottomUpTreeAutomaton {
        self.product(other, |a, b| a || b)
    }

    fn product(
        &self,
        other: &BottomUpTreeAutomaton,
        accept: impl Fn(bool, bool) -> bool,
    ) -> BottomUpTreeAutomaton {
        let pair = |a: usize, b: usize| a * other.state_count + b;
        let mut result = BottomUpTreeAutomaton::new(self.state_count * other.state_count);
        for (label, sa) in &self.leaf_transitions {
            if let Some(sb) = other.leaf_transitions.get(label) {
                for &a in sa {
                    for &b in sb {
                        result.add_leaf_transition(*label, pair(a, b));
                    }
                }
            }
        }
        for (&(label, ca), sa) in &self.unary_transitions {
            for (&(label_b, cb), sb) in &other.unary_transitions {
                if label != label_b {
                    continue;
                }
                for &a in sa {
                    for &b in sb {
                        result.add_unary_transition(label, pair(ca, cb), pair(a, b));
                    }
                }
            }
        }
        for (&(label, la, ra), sa) in &self.binary_transitions {
            for (&(label_b, lb, rb), sb) in &other.binary_transitions {
                if label != label_b {
                    continue;
                }
                for &a in sa {
                    for &b in sb {
                        result.add_binary_transition(label, pair(la, lb), pair(ra, rb), pair(a, b));
                    }
                }
            }
        }
        for a in 0..self.state_count {
            for b in 0..other.state_count {
                if accept(self.accepting.contains(&a), other.accepting.contains(&b)) {
                    result.add_accepting(pair(a, b));
                }
            }
        }
        result
    }

    // ------------------------------------------------------------------
    // A small library of MSO-definable properties, built as automata.
    // ------------------------------------------------------------------

    /// "Some node is labeled `target`." States: 0 = not seen, 1 = seen.
    pub fn exists_label(target: usize, alphabet: &[usize]) -> BottomUpTreeAutomaton {
        let mut a = BottomUpTreeAutomaton::new(2);
        for &label in alphabet {
            let hit = usize::from(label == target);
            a.add_leaf_transition(label, hit);
            for child in 0..2 {
                a.add_unary_transition(label, child, hit.max(child));
            }
            for left in 0..2 {
                for right in 0..2 {
                    a.add_binary_transition(label, left, right, hit.max(left).max(right));
                }
            }
        }
        a.add_accepting(1);
        a
    }

    /// "The number of nodes labeled `target` is ≡ `residue` (mod `modulus`)."
    /// A genuinely-MSO (non-FO) property; states count occurrences mod `modulus`.
    pub fn count_label_modulo(
        target: usize,
        modulus: usize,
        residue: usize,
        alphabet: &[usize],
    ) -> BottomUpTreeAutomaton {
        assert!(modulus >= 1 && residue < modulus);
        let mut a = BottomUpTreeAutomaton::new(modulus);
        for &label in alphabet {
            let hit = usize::from(label == target);
            a.add_leaf_transition(label, hit % modulus);
            for child in 0..modulus {
                a.add_unary_transition(label, child, (child + hit) % modulus);
            }
            for left in 0..modulus {
                for right in 0..modulus {
                    a.add_binary_transition(label, left, right, (left + right + hit) % modulus);
                }
            }
        }
        a.add_accepting(residue);
        a
    }

    /// "No node labeled `parent_label` has a child labeled `child_label`"
    /// (a negated tree-pattern / forbidden-edge property).
    /// States: 0 = subtree OK and root not `child_label`,
    ///         1 = subtree OK and root is `child_label`. Violations simply
    /// have no assigned state (the run gets stuck), so acceptance means the
    /// pattern never occurs.
    pub fn forbid_child_pattern(
        parent_label: usize,
        child_label: usize,
        alphabet: &[usize],
    ) -> BottomUpTreeAutomaton {
        let mut a = BottomUpTreeAutomaton::new(2);
        for &label in alphabet {
            let this = usize::from(label == child_label);
            a.add_leaf_transition(label, this);
            for child in 0..2 {
                if label == parent_label && child == 1 {
                    continue; // forbidden: parent over child_label
                }
                a.add_unary_transition(label, child, this);
            }
            for left in 0..2 {
                for right in 0..2 {
                    if label == parent_label && (left == 1 || right == 1) {
                        continue;
                    }
                    a.add_binary_transition(label, left, right, this);
                }
            }
        }
        a.add_accepting(0);
        a.add_accepting(1);
        a
    }

    /// "Some node labeled `parent_label` has a descendant labeled
    /// `descendant_label`" — a simple tree-pattern query (child axis replaced
    /// by descendant). States: 0 = nothing, 1 = descendant seen below,
    /// 2 = pattern matched.
    pub fn pattern_descendant(
        parent_label: usize,
        descendant_label: usize,
        alphabet: &[usize],
    ) -> BottomUpTreeAutomaton {
        let mut a = BottomUpTreeAutomaton::new(3);
        let combine = |states: &[usize], label: usize| -> usize {
            let max = states.iter().copied().max().unwrap_or(0);
            if max == 2 || (label == parent_label && max >= 1) {
                2
            } else if label == descendant_label || max >= 1 {
                1
            } else {
                0
            }
        };
        for &label in alphabet {
            a.add_leaf_transition(label, combine(&[], label));
            for child in 0..3 {
                a.add_unary_transition(label, child, combine(&[child], label));
            }
            for left in 0..3 {
                for right in 0..3 {
                    a.add_binary_transition(label, left, right, combine(&[left, right], label));
                }
            }
        }
        a.add_accepting(2);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHABET: &[usize] = &[0, 1, 2, 3];

    fn sample_tree() -> LabeledTree {
        // Tree:       3
        //           /   \
        //          1     2
        //          |
        //          0
        let mut t = LabeledTree::new();
        let leaf0 = t.add_leaf(0);
        let n1 = t.add_node(1, vec![leaf0]);
        let leaf2 = t.add_leaf(2);
        let root = t.add_node(3, vec![n1, leaf2]);
        t.set_root(root);
        t
    }

    #[test]
    fn exists_label_automaton() {
        let t = sample_tree();
        assert!(BottomUpTreeAutomaton::exists_label(2, ALPHABET).accepts(&t));
        assert!(BottomUpTreeAutomaton::exists_label(1, ALPHABET).accepts(&t));
        assert!(!BottomUpTreeAutomaton::exists_label(9, &[0, 1, 2, 3, 9]).accepts(&t));
    }

    #[test]
    fn count_modulo_automaton() {
        let t = sample_tree();
        // Exactly one node labeled 1 → count ≡ 1 (mod 2).
        assert!(BottomUpTreeAutomaton::count_label_modulo(1, 2, 1, ALPHABET).accepts(&t));
        assert!(!BottomUpTreeAutomaton::count_label_modulo(1, 2, 0, ALPHABET).accepts(&t));
        // Zero nodes labeled 9 → ≡ 0 (mod 3).
        assert!(BottomUpTreeAutomaton::count_label_modulo(9, 3, 0, ALPHABET).accepts(&t));
    }

    #[test]
    fn forbid_child_pattern_automaton() {
        let t = sample_tree();
        // Node labeled 1 has a child labeled 0 → forbidding (1 over 0) rejects.
        assert!(!BottomUpTreeAutomaton::forbid_child_pattern(1, 0, ALPHABET).accepts(&t));
        // No node labeled 3 has a child labeled 0 → accepted.
        assert!(BottomUpTreeAutomaton::forbid_child_pattern(3, 0, ALPHABET).accepts(&t));
    }

    #[test]
    fn pattern_descendant_automaton() {
        let t = sample_tree();
        // Root labeled 3 has descendant labeled 0.
        assert!(BottomUpTreeAutomaton::pattern_descendant(3, 0, ALPHABET).accepts(&t));
        // Node labeled 2 has no descendants.
        assert!(!BottomUpTreeAutomaton::pattern_descendant(2, 0, ALPHABET).accepts(&t));
    }

    #[test]
    fn intersection_and_union() {
        let t = sample_tree();
        let has1 = BottomUpTreeAutomaton::exists_label(1, ALPHABET);
        let has9 = BottomUpTreeAutomaton::exists_label(9, &[0, 1, 2, 3, 9]);
        assert!(!has1.intersection(&has9).accepts(&t));
        assert!(has1.union(&has9).accepts(&t));
        let has2 = BottomUpTreeAutomaton::exists_label(2, ALPHABET);
        assert!(has1.intersection(&has2).accepts(&t));
    }

    #[test]
    fn empty_tree_is_rejected() {
        let t = LabeledTree::new();
        assert!(!BottomUpTreeAutomaton::exists_label(0, ALPHABET).accepts(&t));
    }

    #[test]
    fn path_counting_on_long_paths() {
        // Path of 10 nodes labeled 1: parity automaton accepts residue 0 mod 2.
        let labels = vec![1usize; 10];
        let t = LabeledTree::path(&labels);
        assert!(BottomUpTreeAutomaton::count_label_modulo(1, 2, 0, &[1]).accepts(&t));
        assert!(!BottomUpTreeAutomaton::count_label_modulo(1, 2, 1, &[1]).accepts(&t));
    }
}
