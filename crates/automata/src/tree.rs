//! Labeled trees with at most two children per node.
//!
//! Tree automata in STUC read binary (or unary/leaf) nodes carrying `usize`
//! labels. Trees are stored as arenas where children always precede their
//! parents, so `0..len()` is a bottom-up traversal order.

/// One node of a [`LabeledTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The node label (alphabet symbol).
    pub label: usize,
    /// The children, in order; at most two.
    pub children: Vec<usize>,
}

/// A labeled tree with at most two children per node, stored bottom-up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabeledTree {
    nodes: Vec<TreeNode>,
    root: Option<usize>,
}

impl LabeledTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given label and children (children must already
    /// exist). Returns the node index.
    ///
    /// # Panics
    ///
    /// Panics if more than two children are given or a child index is
    /// invalid (not smaller than the new node's index).
    pub fn add_node(&mut self, label: usize, children: Vec<usize>) -> usize {
        assert!(children.len() <= 2, "tree nodes have at most two children");
        for &c in &children {
            assert!(c < self.nodes.len(), "child {c} does not exist yet");
        }
        self.nodes.push(TreeNode { label, children });
        self.nodes.len() - 1
    }

    /// Adds a leaf with the given label.
    pub fn add_leaf(&mut self, label: usize) -> usize {
        self.add_node(label, Vec::new())
    }

    /// Designates the root node.
    pub fn set_root(&mut self, node: usize) {
        assert!(node < self.nodes.len(), "root out of range");
        self.root = Some(node);
    }

    /// The root node, if set.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, i: usize) -> &TreeNode {
        &self.nodes[i]
    }

    /// Iterate bottom-up over `(index, node)`.
    pub fn iter_bottom_up(&self) -> impl Iterator<Item = (usize, &TreeNode)> {
        self.nodes.iter().enumerate()
    }

    /// The set of labels occurring in the tree, sorted.
    pub fn labels(&self) -> Vec<usize> {
        let mut labels: Vec<usize> = self.nodes.iter().map(|n| n.label).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Builds a left-leaning "path" tree from a sequence of labels: the first
    /// label is the deepest leaf and the last is the root.
    pub fn path(labels: &[usize]) -> LabeledTree {
        let mut tree = LabeledTree::new();
        let mut prev: Option<usize> = None;
        for &label in labels {
            let children = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(tree.add_node(label, children));
        }
        if let Some(root) = prev {
            tree.set_root(root);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_tree() {
        let mut t = LabeledTree::new();
        let a = t.add_leaf(1);
        let b = t.add_leaf(2);
        let root = t.add_node(3, vec![a, b]);
        t.set_root(root);
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), Some(root));
        assert_eq!(t.node(root).children, vec![a, b]);
        assert_eq!(t.labels(), vec![1, 2, 3]);
    }

    #[test]
    fn path_builder() {
        let t = LabeledTree::path(&[7, 8, 9]);
        assert_eq!(t.len(), 3);
        let root = t.root().unwrap();
        assert_eq!(t.node(root).label, 9);
        assert_eq!(t.node(root).children.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at most two children")]
    fn too_many_children_panics() {
        let mut t = LabeledTree::new();
        let a = t.add_leaf(0);
        let b = t.add_leaf(0);
        let c = t.add_leaf(0);
        t.add_node(1, vec![a, b, c]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn dangling_child_panics() {
        let mut t = LabeledTree::new();
        t.add_node(1, vec![5]);
    }

    #[test]
    fn empty_tree() {
        let t = LabeledTree::new();
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
    }
}
