//! # stuc-automata — tree automata, uncertain trees, and Courcelle-style runs
//!
//! The technical core of the paper's Theorems 1 and 2: "one compiles the MSO
//! query q, in a data-independent fashion, to a tree automaton A which can
//! read tree encodings of bounded-treewidth instances [...] we show that A
//! can also be run on an uncertain instance I, producing a lineage circuit C
//! that describes which possible worlds of I are accepted by A."
//!
//! * [`tree`] — labeled binary trees, the input of tree automata.
//! * [`bta`] — bottom-up (nondeterministic) tree automata, Boolean
//!   operations, and a library of MSO-style properties built directly as
//!   automata (existence, modular counting, forbidden patterns).
//! * [`uncertain`] — *uncertain trees*: trees whose node labels depend on
//!   independent Boolean variables (the shape PrXML documents compile to).
//!   Running an automaton over an uncertain tree yields either a lineage
//!   circuit (nondeterministic provenance run, Theorem 2 style) or directly
//!   the acceptance probability (deterministic subset run, the
//!   Cohen–Kimelfeld–Sagiv algorithm behind the paper's local-uncertainty
//!   tractability and Theorem 1).
//! * [`courcelle`] — the relational side: facts of a bounded-treewidth
//!   instance are anchored to the bags of a tree decomposition and a
//!   query-specific automaton (whose states are partial-match types) is run
//!   bottom-up, producing a lineage circuit or, for tuple-independent
//!   instances, the exact query probability in linear time.
//!
//! ## Example: an MSO property on an uncertain tree
//!
//! ```
//! use stuc_automata::bta::BottomUpTreeAutomaton;
//! use stuc_automata::uncertain::UncertainTree;
//! use stuc_circuit::circuit::VarId;
//! use stuc_circuit::weights::Weights;
//!
//! // A root with one uncertain leaf labeled 1 (present → label 1, absent → label 0).
//! let mut tree = UncertainTree::new();
//! let leaf = tree.add_leaf_with_variable(VarId(0), 0, 1);
//! let root = tree.add_node(5, vec![leaf]);
//! tree.set_root(root);
//!
//! // Automaton: "some node is labeled 1".
//! let automaton = BottomUpTreeAutomaton::exists_label(1, &[0, 1, 5]);
//! let mut weights = Weights::new();
//! weights.set(VarId(0), 0.4);
//! let p = tree.acceptance_probability(&automaton, &weights).unwrap();
//! assert!((p - 0.4).abs() < 1e-9);
//! ```

pub mod bta;
pub mod courcelle;
pub mod tree;
pub mod uncertain;

pub use bta::BottomUpTreeAutomaton;
pub use tree::LabeledTree;
pub use uncertain::UncertainTree;
