//! Courcelle-style evaluation of conjunctive queries over tree decompositions
//! of uncertain relational instances.
//!
//! This is the relational instantiation of the paper's Theorems 1 and 2. The
//! automaton associated with a Boolean conjunctive query over width-`w`
//! encodings has as states the *partial-match types*: for every query
//! variable, whether it is still unused, currently mapped to a constant of
//! the bag, or already mapped to a forgotten constant; plus the set of atoms
//! matched so far. The run proceeds bottom-up over a *nice* tree
//! decomposition of the instance's Gaifman graph, with each fact anchored at
//! a node whose bag contains all its constants.
//!
//! Two run modes are provided, mirroring [`crate::uncertain`]:
//!
//! * [`cq_lineage_circuit`] — the nondeterministic provenance run, producing
//!   a lineage circuit over per-fact Boolean variables (substitute
//!   annotation circuits for these variables to obtain Theorem 2 for
//!   pcc-instances);
//! * [`cq_probability_tid`] — the deterministic subset run for
//!   tuple-independent instances, computing the exact query probability in a
//!   single pass: linear time in the instance for a fixed query and width,
//!   which is Theorem 1.

use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_data::instance::{ConstId, FactId, Instance};
use stuc_data::tid::TidInstance;
use stuc_graph::graph::VertexId;
use stuc_graph::nice::{NiceDecomposition, NiceNodeKind};
use stuc_graph::TreeDecomposition;
use stuc_query::cq::{ConjunctiveQuery, Term};

/// Maximum number of query atoms (matched-atom sets are stored as a `u64`).
pub const MAX_ATOMS: usize = 32;

/// Maximum number of facts anchored at a single decomposition node for the
/// deterministic (probability) run, which enumerates their presence subsets.
pub const MAX_ANCHORED_FACTS: usize = 16;

stuc_errors::stuc_error! {
    /// Errors raised by the Courcelle-style runs.
    #[derive(Clone, PartialEq, Eq)]
    pub enum CourcelleError {
        /// The query has more atoms than [`MAX_ATOMS`].
        TooManyAtoms(usize),
        /// A fact's constants are not jointly contained in any bag — the
        /// decomposition does not cover the instance.
        AnchorNotFound(FactId),
        /// Too many facts anchored at one node for the probability run.
        TooManyAnchoredFacts(usize),
        /// The query is not Boolean (has free variables).
        NotBoolean,
    }
    display {
        Self::TooManyAtoms(n) => "query has {n} atoms, more than the supported {MAX_ATOMS}",
        Self::AnchorNotFound(fact) => "no bag contains all constants of fact {fact}",
        Self::TooManyAnchoredFacts(n) => "{n} facts anchored at one node exceed the limit {MAX_ANCHORED_FACTS}",
        Self::NotBoolean => "query must be Boolean (no free variables)",
    }
}

/// The status of one query variable in a partial-match state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum VarStatus {
    /// Not yet bound.
    Unused,
    /// Bound to a constant currently present in the bag.
    Active(ConstId),
    /// Bound to a constant that has been forgotten; all atoms using the
    /// variable were matched before the constant was forgotten.
    Done,
}

/// A partial-match type: the automaton state of the query's Courcelle
/// automaton.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct MatchState {
    statuses: Vec<VarStatus>,
    matched: u64,
}

/// Pre-processed query: variable order, per-atom variable positions.
struct CompiledQuery {
    variables: Vec<String>,
    /// For each atom: relation name, and for each position either a variable
    /// index or a constant name.
    atoms: Vec<(String, Vec<AtomTerm>)>,
    /// For each variable, the bitmask of atoms it occurs in.
    atoms_of_variable: Vec<u64>,
    all_matched: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum AtomTerm {
    Variable(usize),
    Constant(String),
}

fn compile_query(query: &ConjunctiveQuery) -> Result<CompiledQuery, CourcelleError> {
    if !query.is_boolean() {
        return Err(CourcelleError::NotBoolean);
    }
    if query.atoms.len() > MAX_ATOMS {
        return Err(CourcelleError::TooManyAtoms(query.atoms.len()));
    }
    let variables: Vec<String> = query.variables().into_iter().collect();
    let index_of = |name: &str| variables.iter().position(|v| v == name).expect("known var");
    let atoms: Vec<(String, Vec<AtomTerm>)> = query
        .atoms
        .iter()
        .map(|a| {
            let terms = a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => AtomTerm::Variable(index_of(v)),
                    Term::Const(c) => AtomTerm::Constant(c.clone()),
                })
                .collect();
            (a.relation.clone(), terms)
        })
        .collect();
    let mut atoms_of_variable = vec![0u64; variables.len()];
    for (i, (_, terms)) in atoms.iter().enumerate() {
        for t in terms {
            if let AtomTerm::Variable(v) = t {
                atoms_of_variable[*v] |= 1 << i;
            }
        }
    }
    let all_matched = if atoms.is_empty() {
        0
    } else {
        (1u64 << atoms.len()) - 1
    };
    Ok(CompiledQuery {
        variables,
        atoms,
        atoms_of_variable,
        all_matched,
    })
}

impl CompiledQuery {
    fn initial_state(&self) -> MatchState {
        MatchState {
            statuses: vec![VarStatus::Unused; self.variables.len()],
            matched: 0,
        }
    }

    /// Attempts to match atom `atom_index` with the given fact under the
    /// state; returns the successor state if the match is consistent.
    fn try_match(
        &self,
        state: &MatchState,
        atom_index: usize,
        fact: &stuc_data::instance::Fact,
        instance: &Instance,
    ) -> Option<MatchState> {
        if state.matched & (1 << atom_index) != 0 {
            return None; // already matched; re-matching adds nothing
        }
        let (relation, terms) = &self.atoms[atom_index];
        if instance.relation_name(fact.relation) != relation || fact.args.len() != terms.len() {
            return None;
        }
        let mut statuses = state.statuses.clone();
        for (term, &constant) in terms.iter().zip(&fact.args) {
            match term {
                AtomTerm::Constant(name) => {
                    if instance.find_constant(name) != Some(constant) {
                        return None;
                    }
                }
                AtomTerm::Variable(v) => match statuses[*v] {
                    VarStatus::Unused => statuses[*v] = VarStatus::Active(constant),
                    VarStatus::Active(c) if c == constant => {}
                    VarStatus::Active(_) | VarStatus::Done => return None,
                },
            }
        }
        Some(MatchState {
            statuses,
            matched: state.matched | (1 << atom_index),
        })
    }

    /// Applies the forget of constant `c`: variables bound to `c` become
    /// `Done` provided every atom using them has been matched; otherwise the
    /// state dies.
    fn forget(&self, state: &MatchState, c: ConstId) -> Option<MatchState> {
        let mut statuses = state.statuses.clone();
        for (v, status) in statuses.iter_mut().enumerate() {
            if *status == VarStatus::Active(c) {
                if self.atoms_of_variable[v] & !state.matched != 0 {
                    return None;
                }
                *status = VarStatus::Done;
            }
        }
        Some(MatchState {
            statuses,
            matched: state.matched,
        })
    }

    /// Combines the states of the two children of a join node; `None` if they
    /// are inconsistent.
    fn join(&self, left: &MatchState, right: &MatchState) -> Option<MatchState> {
        let mut statuses = Vec::with_capacity(left.statuses.len());
        for (l, r) in left.statuses.iter().zip(&right.statuses) {
            let combined = match (l, r) {
                (VarStatus::Unused, other) | (other, VarStatus::Unused) => *other,
                (VarStatus::Active(a), VarStatus::Active(b)) if a == b => VarStatus::Active(*a),
                _ => return None,
            };
            statuses.push(combined);
        }
        Some(MatchState {
            statuses,
            matched: left.matched | right.matched,
        })
    }

    fn is_accepting(&self, state: &MatchState) -> bool {
        state.matched == self.all_matched
    }
}

/// Anchors every fact at a nice-decomposition node whose bag contains all its
/// constants. Nullary facts are anchored at the root.
fn anchor_facts(
    instance: &Instance,
    nice: &NiceDecomposition,
) -> Result<Vec<Vec<FactId>>, CourcelleError> {
    let mut anchored: Vec<Vec<FactId>> = vec![Vec::new(); nice.len()];
    // Occurrence lists: constant → nice nodes containing it.
    let mut occurrences: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, node) in nice.iter_bottom_up() {
        for v in &node.bag {
            occurrences.entry(v.index()).or_default().push(i);
        }
    }
    for (fid, fact) in instance.facts() {
        let constants: BTreeSet<usize> = fact.args.iter().map(|c| c.0).collect();
        if constants.is_empty() {
            anchored[nice.root()].push(fid);
            continue;
        }
        // Search the occurrence list of the rarest constant.
        let rarest = constants
            .iter()
            .min_by_key(|c| occurrences.get(c).map(|o| o.len()).unwrap_or(0))
            .copied()
            .expect("non-empty");
        let candidates = occurrences
            .get(&rarest)
            .ok_or(CourcelleError::AnchorNotFound(fid))?;
        let anchor = candidates
            .iter()
            .find(|&&node| {
                constants
                    .iter()
                    .all(|&c| nice.node(node).bag.contains(&VertexId(c)))
            })
            .copied()
            .ok_or(CourcelleError::AnchorNotFound(fid))?;
        anchored[anchor].push(fid);
    }
    Ok(anchored)
}

/// Runs the query automaton nondeterministically over the decomposition,
/// producing a lineage circuit over per-fact variables given by
/// `fact_variable` (for a TID, use [`TidInstance::fact_event`]; for a
/// pcc-instance, use fresh variables and substitute annotation circuits
/// afterwards).
pub fn cq_lineage_circuit(
    instance: &Instance,
    decomposition: &TreeDecomposition,
    query: &ConjunctiveQuery,
    fact_variable: impl Fn(FactId) -> VarId,
) -> Result<Circuit, CourcelleError> {
    let compiled = compile_query(query)?;
    let nice = NiceDecomposition::from_decomposition(decomposition);
    let anchored = anchor_facts(instance, &nice)?;

    let mut circuit = Circuit::new();
    let true_gate = circuit.add_const(true);
    let mut fact_gates: BTreeMap<FactId, GateId> = BTreeMap::new();
    let mut gate_of_fact = |fid: FactId, circuit: &mut Circuit| -> GateId {
        *fact_gates
            .entry(fid)
            .or_insert_with(|| circuit.add_input(fact_variable(fid)))
    };

    // tables[node]: state → gate.
    let mut tables: Vec<BTreeMap<MatchState, GateId>> = Vec::with_capacity(nice.len());

    for (idx, node) in nice.iter_bottom_up() {
        // Structural step.
        let mut contributions: BTreeMap<MatchState, Vec<GateId>> = BTreeMap::new();
        match &node.kind {
            NiceNodeKind::Leaf => {
                contributions
                    .entry(compiled.initial_state())
                    .or_default()
                    .push(true_gate);
            }
            NiceNodeKind::Introduce { child, .. } => {
                for (state, &gate) in &tables[*child] {
                    contributions.entry(state.clone()).or_default().push(gate);
                }
            }
            NiceNodeKind::Forget { vertex, child } => {
                let c = ConstId(vertex.index());
                for (state, &gate) in &tables[*child] {
                    if let Some(next) = compiled.forget(state, c) {
                        contributions.entry(next).or_default().push(gate);
                    }
                }
            }
            NiceNodeKind::Join { left, right } => {
                for (ls, &lg) in &tables[*left] {
                    for (rs, &rg) in &tables[*right] {
                        if let Some(next) = compiled.join(ls, rs) {
                            let gate = circuit.add_and(vec![lg, rg]);
                            contributions.entry(next).or_default().push(gate);
                        }
                    }
                }
            }
        }

        // Matching closure for facts anchored at this node.
        if !anchored[idx].is_empty() {
            let mut worklist: Vec<(MatchState, GateId)> = contributions
                .iter()
                .flat_map(|(s, gates)| gates.iter().map(move |&g| (s.clone(), g)))
                .collect();
            while let Some((state, gate)) = worklist.pop() {
                for &fid in &anchored[idx] {
                    let fact = instance.fact(fid);
                    for atom_index in 0..compiled.atoms.len() {
                        if let Some(next) = compiled.try_match(&state, atom_index, fact, instance) {
                            let fact_gate = gate_of_fact(fid, &mut circuit);
                            let new_gate = circuit.add_and(vec![gate, fact_gate]);
                            contributions
                                .entry(next.clone())
                                .or_default()
                                .push(new_gate);
                            worklist.push((next, new_gate));
                        }
                    }
                }
            }
        }

        // Collapse contributions into one OR gate per state.
        let mut table = BTreeMap::new();
        for (state, gates) in contributions {
            let gate = if gates.len() == 1 {
                gates[0]
            } else {
                circuit.add_or(gates)
            };
            table.insert(state, gate);
        }
        tables.push(table);
    }

    // Output: OR over accepting states at the root.
    let accepting: Vec<GateId> = tables[nice.root()]
        .iter()
        .filter(|(s, _)| compiled.is_accepting(s))
        .map(|(_, &g)| g)
        .collect();
    let output = circuit.add_or(accepting);
    circuit.set_output(output);
    Ok(circuit)
}

/// Runs the query automaton deterministically (subset construction) over the
/// decomposition of a TID instance, computing the exact probability that the
/// Boolean query holds. Linear time in the instance for a fixed query and
/// bounded width / facts-per-bag (Theorem 1).
pub fn cq_probability_tid(
    tid: &TidInstance,
    decomposition: &TreeDecomposition,
    query: &ConjunctiveQuery,
) -> Result<f64, CourcelleError> {
    let compiled = compile_query(query)?;
    let nice = NiceDecomposition::from_decomposition(decomposition);
    let anchored = anchor_facts(tid.instance(), &nice)?;
    let instance = tid.instance();

    type DetState = Vec<MatchState>; // sorted, deduplicated
                                     // distributions[node]: det-state → probability.
    let mut distributions: Vec<BTreeMap<DetState, f64>> = Vec::with_capacity(nice.len());

    let normalise = |mut states: Vec<MatchState>| -> DetState {
        states.sort();
        states.dedup();
        states
    };

    for (idx, node) in nice.iter_bottom_up() {
        let mut dist: BTreeMap<DetState, f64> = BTreeMap::new();
        match &node.kind {
            NiceNodeKind::Leaf => {
                dist.insert(vec![compiled.initial_state()], 1.0);
            }
            NiceNodeKind::Introduce { child, .. } => {
                for (states, &p) in &distributions[*child] {
                    *dist.entry(states.clone()).or_insert(0.0) += p;
                }
            }
            NiceNodeKind::Forget { vertex, child } => {
                let c = ConstId(vertex.index());
                for (states, &p) in &distributions[*child] {
                    let next: Vec<MatchState> = states
                        .iter()
                        .filter_map(|s| compiled.forget(s, c))
                        .collect();
                    *dist.entry(normalise(next)).or_insert(0.0) += p;
                }
            }
            NiceNodeKind::Join { left, right } => {
                let left_dist = distributions[*left].clone();
                for (ls, &lp) in &left_dist {
                    for (rs, &rp) in &distributions[*right] {
                        let mut combined = Vec::new();
                        for a in ls {
                            for b in rs {
                                if let Some(s) = compiled.join(a, b) {
                                    combined.push(s);
                                }
                            }
                        }
                        *dist.entry(normalise(combined)).or_insert(0.0) += lp * rp;
                    }
                }
            }
        }

        // Facts anchored here: branch on their presence subsets.
        let facts = &anchored[idx];
        if !facts.is_empty() {
            if facts.len() > MAX_ANCHORED_FACTS {
                return Err(CourcelleError::TooManyAnchoredFacts(facts.len()));
            }
            let mut with_facts: BTreeMap<DetState, f64> = BTreeMap::new();
            for (states, &p) in &dist {
                for mask in 0..(1u64 << facts.len()) {
                    let mut weight = 1.0;
                    for (i, &fid) in facts.iter().enumerate() {
                        let q = tid.probability(fid);
                        weight *= if mask & (1 << i) != 0 { q } else { 1.0 - q };
                    }
                    if weight == 0.0 {
                        continue;
                    }
                    // Deterministic closure with the present facts.
                    let mut closure: BTreeSet<MatchState> = states.iter().cloned().collect();
                    let mut worklist: Vec<MatchState> = states.clone();
                    while let Some(state) = worklist.pop() {
                        for (i, &fid) in facts.iter().enumerate() {
                            if mask & (1 << i) == 0 {
                                continue;
                            }
                            let fact = instance.fact(fid);
                            for atom_index in 0..compiled.atoms.len() {
                                if let Some(next) =
                                    compiled.try_match(&state, atom_index, fact, instance)
                                {
                                    if closure.insert(next.clone()) {
                                        worklist.push(next);
                                    }
                                }
                            }
                        }
                    }
                    let det: DetState = closure.into_iter().collect();
                    *with_facts.entry(det).or_insert(0.0) += p * weight;
                }
            }
            dist = with_facts;
        }

        distributions.push(dist);
    }

    let mut accepted = 0.0;
    for (states, &p) in &distributions[nice.root()] {
        if states.iter().any(|s| compiled.is_accepting(s)) {
            accepted += p;
        }
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::enumeration::probability_by_enumeration;
    use stuc_circuit::wmc::TreewidthWmc;
    use stuc_data::worlds;
    use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
    use stuc_query::lineage::tid_lineage;

    fn decomposition_of(tid: &TidInstance) -> TreeDecomposition {
        decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinFill)
    }

    fn path_tid(n: usize, p: f64) -> TidInstance {
        let mut tid = TidInstance::new();
        for i in 0..n {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
        }
        tid
    }

    fn star_tid() -> TidInstance {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.5);
        tid.add_fact_named("R", &["b"], 0.25);
        tid.add_fact_named("S", &["a", "c"], 0.8);
        tid.add_fact_named("S", &["b", "d"], 0.4);
        tid.add_fact_named("T", &["c"], 0.5);
        tid.add_fact_named("T", &["d"], 0.9);
        tid
    }

    #[test]
    fn lineage_circuit_matches_naive_lineage_on_path() {
        let tid = path_tid(5, 0.5);
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let circuit =
            cq_lineage_circuit(tid.instance(), &td, &query, |f| tid.fact_event(f)).unwrap();
        let p = probability_by_enumeration(&circuit, &tid.fact_weights()).unwrap();
        let reference =
            probability_by_enumeration(&tid_lineage(&tid, &query), &tid.fact_weights()).unwrap();
        assert!((p - reference).abs() < 1e-9, "{p} vs {reference}");
    }

    #[test]
    fn probability_run_matches_world_enumeration_on_star() {
        let tid = star_tid();
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        let lineage = tid_lineage(&tid, &query);
        let reference = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((exact - reference).abs() < 1e-9, "{exact} vs {reference}");
    }

    #[test]
    fn probability_run_matches_on_paths_of_various_lengths() {
        for n in [2usize, 3, 5, 8] {
            let tid = path_tid(n, 0.4);
            let td = decomposition_of(&tid);
            let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
            let exact = cq_probability_tid(&tid, &td, &query).unwrap();
            let reference = worlds::tid_query_probability(&tid, |facts| {
                (0..n.saturating_sub(1))
                    .any(|i| facts.contains(&FactId(i)) && facts.contains(&FactId(i + 1)))
            })
            .unwrap();
            assert!(
                (exact - reference).abs() < 1e-9,
                "n = {n}: {exact} vs {reference}"
            );
        }
    }

    #[test]
    fn lineage_circuit_probability_via_wmc_matches() {
        let tid = star_tid();
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let circuit =
            cq_lineage_circuit(tid.instance(), &td, &query, |f| tid.fact_event(f)).unwrap();
        let by_wmc = TreewidthWmc::default()
            .probability(&circuit, &tid.fact_weights())
            .unwrap();
        let reference =
            probability_by_enumeration(&tid_lineage(&tid, &query), &tid.fact_weights()).unwrap();
        assert!((by_wmc - reference).abs() < 1e-9);
    }

    #[test]
    fn queries_with_constants() {
        let tid = star_tid();
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("S(\"a\", y), T(y)").unwrap();
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        // S(a, c) present (0.8) and T(c) present (0.5).
        assert!((exact - 0.4).abs() < 1e-9);
    }

    #[test]
    fn query_with_no_match_has_probability_zero() {
        let tid = path_tid(3, 0.9);
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("Missing(x)").unwrap();
        assert_eq!(cq_probability_tid(&tid, &td, &query).unwrap(), 0.0);
    }

    #[test]
    fn certain_facts_give_certain_answers() {
        let mut tid = TidInstance::new();
        tid.add_certain_fact("R", &["a", "b"]);
        tid.add_certain_fact("R", &["b", "c"]);
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        assert!((exact - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_boolean_queries_are_rejected() {
        let tid = path_tid(2, 0.5);
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("ans(x) <- R(x, y)").unwrap();
        assert_eq!(
            cq_probability_tid(&tid, &td, &query),
            Err(CourcelleError::NotBoolean)
        );
    }

    #[test]
    fn triangle_query_on_triangle_instance() {
        // A cyclic query on a cyclic (treewidth-2) instance.
        let mut tid = TidInstance::new();
        tid.add_fact_named("E", &["a", "b"], 0.5);
        tid.add_fact_named("E", &["b", "c"], 0.5);
        tid.add_fact_named("E", &["c", "a"], 0.5);
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("E(x, y), E(y, z), E(z, x)").unwrap();
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        assert!((exact - 0.125).abs() < 1e-9);
    }

    #[test]
    fn self_join_free_query_matches_on_larger_random_instance() {
        // Random low-treewidth instance: R facts on a path's nodes, S facts
        // on its edges, T on nodes — the paper's hard query stays exact here.
        let mut tid = TidInstance::new();
        for i in 0..7 {
            tid.add_fact_named("R", &[&format!("v{i}")], 0.3 + 0.05 * i as f64);
            tid.add_fact_named("T", &[&format!("v{i}")], 0.6 - 0.05 * i as f64);
        }
        for i in 0..6 {
            tid.add_fact_named("S", &[&format!("v{i}"), &format!("v{}", i + 1)], 0.5);
        }
        let td = decomposition_of(&tid);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        let reference =
            probability_by_enumeration(&tid_lineage(&tid, &query), &tid.fact_weights()).unwrap();
        assert!((exact - reference).abs() < 1e-9, "{exact} vs {reference}");
    }

    #[test]
    fn lineage_width_stays_bounded_as_path_grows() {
        // Theorem 2 in action: lineage circuits from the automaton run have
        // bounded width as the data grows.
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let mut widths = Vec::new();
        for n in [10usize, 40, 80] {
            let tid = path_tid(n, 0.5);
            let td = decomposition_of(&tid);
            let circuit =
                cq_lineage_circuit(tid.instance(), &td, &query, |f| tid.fact_event(f)).unwrap();
            widths.push(TreewidthWmc::default().estimated_width(&circuit));
        }
        let max = *widths.iter().max().unwrap();
        let min = *widths.iter().min().unwrap();
        assert!(max <= min + 3, "widths grew with data size: {widths:?}");
    }
}
