//! Uncertain trees: trees whose node labels depend on Boolean events.
//!
//! An uncertain tree is a labeled tree in which each node carries a small set
//! of independent Boolean variables ("local events") and a table mapping each
//! valuation of those variables to a label. Every global valuation of the
//! events thus defines one ordinary labeled tree — a possible world. PrXML
//! documents with `ind`/`mux` nodes compile to exactly this shape
//! (`stuc-prxml`), as do the bag-labeled tree encodings of bounded-treewidth
//! instances.
//!
//! Two evaluation modes implement the two sides of the paper's argument:
//!
//! * [`UncertainTree::provenance_run`] — the nondeterministic automaton run
//!   producing a *lineage circuit*: one gate per (node, state), OR over
//!   (local valuation, transition) of AND over child gates and event
//!   literals. This is the construction behind Theorem 2.
//! * [`UncertainTree::acceptance_probability`] — the deterministic subset
//!   run: a distribution over *sets of reachable states* is propagated
//!   bottom-up, which is valid because local events are independent and
//!   local to their node. This is the Cohen–Kimelfeld–Sagiv linear-time
//!   algorithm behind the local-uncertainty tractability and Theorem 1.

use crate::bta::BottomUpTreeAutomaton;
use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::{Circuit, CircuitError, GateId, VarId};
use stuc_circuit::weights::Weights;

/// Maximum number of local variables per node (the label table has `2^k`
/// entries, and the subset run enumerates them).
pub const MAX_LOCAL_VARIABLES: usize = 16;

/// A node of an [`UncertainTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncertainNode {
    /// The local Boolean variables of this node, in table-index order.
    pub variables: Vec<VarId>,
    /// `labels[m]` is the node label when the local valuation is the bitmask
    /// `m` over `variables` (bit `i` = value of `variables[i]`).
    pub labels: Vec<usize>,
    /// The children, at most two, with smaller indices.
    pub children: Vec<usize>,
}

/// A tree whose node labels depend on independent Boolean events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UncertainTree {
    nodes: Vec<UncertainNode>,
    root: Option<usize>,
}

stuc_errors::stuc_error! {
    /// Errors raised by runs over uncertain trees.
    #[derive(Clone, PartialEq)]
    pub enum UncertainTreeError {
        /// The tree has no root.
        NoRoot,
        /// An event used by a node has no probability.
        Circuit(CircuitError),
    }
    display {
        Self::NoRoot => "uncertain tree has no root",
        Self::Circuit(e) => "{e}",
    }
    from {
        CircuitError => Circuit,
    }
}

impl UncertainTree {
    /// Creates an empty uncertain tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with a fixed (certain) label.
    pub fn add_node(&mut self, label: usize, children: Vec<usize>) -> usize {
        self.add_node_with_variables(Vec::new(), vec![label], children)
    }

    /// Adds a certain leaf.
    pub fn add_leaf(&mut self, label: usize) -> usize {
        self.add_node(label, Vec::new())
    }

    /// Adds a leaf whose label is `label_present` when `variable` is true and
    /// `label_absent` otherwise — the typical encoding of an optional fact.
    pub fn add_leaf_with_variable(
        &mut self,
        variable: VarId,
        label_absent: usize,
        label_present: usize,
    ) -> usize {
        self.add_node_with_variables(
            vec![variable],
            vec![label_absent, label_present],
            Vec::new(),
        )
    }

    /// Adds a node with explicit local variables and a full label table of
    /// size `2^variables.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the table size does not match, too many local variables are
    /// given, more than two children are given, or a child does not exist.
    pub fn add_node_with_variables(
        &mut self,
        variables: Vec<VarId>,
        labels: Vec<usize>,
        children: Vec<usize>,
    ) -> usize {
        assert!(
            variables.len() <= MAX_LOCAL_VARIABLES,
            "too many local variables ({})",
            variables.len()
        );
        assert_eq!(
            labels.len(),
            1 << variables.len(),
            "label table must have 2^k entries"
        );
        assert!(children.len() <= 2, "at most two children");
        for &c in &children {
            assert!(c < self.nodes.len(), "child {c} does not exist yet");
        }
        self.nodes.push(UncertainNode {
            variables,
            labels,
            children,
        });
        self.nodes.len() - 1
    }

    /// Designates the root node.
    pub fn set_root(&mut self, node: usize) {
        assert!(node < self.nodes.len(), "root out of range");
        self.root = Some(node);
    }

    /// The root node.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, i: usize) -> &UncertainNode {
        &self.nodes[i]
    }

    /// All event variables used anywhere in the tree.
    pub fn variables(&self) -> BTreeSet<VarId> {
        self.nodes
            .iter()
            .flat_map(|n| n.variables.iter().copied())
            .collect()
    }

    /// The certain tree obtained by fixing every event according to the given
    /// valuation (missing events default to false).
    pub fn world(
        &self,
        valuation: &std::collections::BTreeMap<VarId, bool>,
    ) -> crate::tree::LabeledTree {
        let mut tree = crate::tree::LabeledTree::new();
        for node in &self.nodes {
            let mut mask = 0usize;
            for (i, v) in node.variables.iter().enumerate() {
                if valuation.get(v).copied().unwrap_or(false) {
                    mask |= 1 << i;
                }
            }
            tree.add_node(node.labels[mask], node.children.clone());
        }
        if let Some(root) = self.root {
            tree.set_root(root);
        }
        tree
    }

    /// The nondeterministic provenance run: a lineage circuit whose output is
    /// true exactly in the possible worlds accepted by the automaton.
    ///
    /// The circuit has one OR gate per (node, reachable state) pair; each
    /// disjunct is the AND of the local-valuation literals and the children's
    /// state gates for one applicable transition.
    pub fn provenance_run(
        &self,
        automaton: &BottomUpTreeAutomaton,
    ) -> Result<Circuit, UncertainTreeError> {
        let root = self.root.ok_or(UncertainTreeError::NoRoot)?;
        let mut circuit = Circuit::new();
        let false_gate = circuit.add_const(false);
        let true_gate = circuit.add_const(true);
        // state_gates[node][state] = gate meaning "the subtree at node can
        // reach this state".
        let mut state_gates: Vec<Vec<GateId>> = Vec::with_capacity(self.nodes.len());

        for node in &self.nodes {
            let mut input_gates: Vec<(GateId, GateId)> = Vec::new(); // (positive, negative)
            for &v in &node.variables {
                let positive = circuit.add_input(v);
                let negative = circuit.add_not(positive);
                input_gates.push((positive, negative));
            }
            // Disjuncts per state.
            let mut per_state: Vec<Vec<GateId>> = vec![Vec::new(); automaton.state_count];
            for mask in 0..(1usize << node.variables.len()) {
                let label = node.labels[mask];
                // The literal gates for this local valuation.
                let mut literal_gates: Vec<GateId> = Vec::with_capacity(node.variables.len());
                for (i, &(positive, negative)) in input_gates.iter().enumerate() {
                    literal_gates.push(if mask & (1 << i) != 0 {
                        positive
                    } else {
                        negative
                    });
                }
                let valuation_gate = if literal_gates.is_empty() {
                    true_gate
                } else {
                    circuit.add_and(literal_gates.clone())
                };
                match node.children.len() {
                    0 => {
                        if let Some(states) = automaton.leaf_transitions.get(&label) {
                            for &s in states {
                                per_state[s].push(valuation_gate);
                            }
                        }
                    }
                    1 => {
                        let child = node.children[0];
                        #[allow(clippy::needless_range_loop)]
                        for child_state in 0..automaton.state_count {
                            let Some(states) =
                                automaton.unary_transitions.get(&(label, child_state))
                            else {
                                continue;
                            };
                            let child_gate = state_gates[child][child_state];
                            for &s in states {
                                let and = circuit.add_and(vec![valuation_gate, child_gate]);
                                per_state[s].push(and);
                            }
                        }
                    }
                    _ => {
                        let left = node.children[0];
                        let right = node.children[1];
                        for left_state in 0..automaton.state_count {
                            for right_state in 0..automaton.state_count {
                                let Some(states) = automaton.binary_transitions.get(&(
                                    label,
                                    left_state,
                                    right_state,
                                )) else {
                                    continue;
                                };
                                let lg = state_gates[left][left_state];
                                let rg = state_gates[right][right_state];
                                for &s in states {
                                    let and = circuit.add_and(vec![valuation_gate, lg, rg]);
                                    per_state[s].push(and);
                                }
                            }
                        }
                    }
                }
            }
            let gates: Vec<GateId> = per_state
                .into_iter()
                .map(|disjuncts| {
                    if disjuncts.is_empty() {
                        false_gate
                    } else {
                        circuit.add_or(disjuncts)
                    }
                })
                .collect();
            state_gates.push(gates);
        }

        let accepting_gates: Vec<GateId> = automaton
            .accepting
            .iter()
            .map(|&s| state_gates[root][s])
            .collect();
        let output = circuit.add_or(accepting_gates);
        circuit.set_output(output);
        Ok(circuit)
    }

    /// The deterministic subset run: the exact probability that the automaton
    /// accepts, computed in a single bottom-up pass.
    ///
    /// Requires the local events to be globally independent and each to be
    /// local to a single node (which is how the tree is built from PrXML
    /// `ind`/`mux` nodes or from TID tree encodings). Runs in time linear in
    /// the tree for a fixed automaton, which is the Theorem 1 bound.
    pub fn acceptance_probability(
        &self,
        automaton: &BottomUpTreeAutomaton,
        weights: &Weights,
    ) -> Result<f64, UncertainTreeError> {
        let root = self.root.ok_or(UncertainTreeError::NoRoot)?;
        // Validate weights up front.
        for v in self.variables() {
            weights.weight(v, true)?;
        }
        // distributions[node]: map from reachable-state-set to probability.
        let mut distributions: Vec<BTreeMap<Vec<usize>, f64>> =
            Vec::with_capacity(self.nodes.len());

        for node in &self.nodes {
            let mut dist: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
            // Enumerate local valuations with their probabilities.
            for mask in 0..(1usize << node.variables.len()) {
                let mut local_probability = 1.0;
                for (i, &v) in node.variables.iter().enumerate() {
                    local_probability *= weights.weight(v, mask & (1 << i) != 0)?;
                }
                if local_probability == 0.0 {
                    continue;
                }
                let label = node.labels[mask];
                match node.children.len() {
                    0 => {
                        let states = automaton.step(label, &[]);
                        let key: Vec<usize> = states.into_iter().collect();
                        *dist.entry(key).or_insert(0.0) += local_probability;
                    }
                    1 => {
                        let child = &distributions[node.children[0]];
                        for (child_states, &p) in child {
                            let set: BTreeSet<usize> = child_states.iter().copied().collect();
                            let states = automaton.step(label, &[&set]);
                            let key: Vec<usize> = states.into_iter().collect();
                            *dist.entry(key).or_insert(0.0) += local_probability * p;
                        }
                    }
                    _ => {
                        let left = distributions[node.children[0]].clone();
                        let right = &distributions[node.children[1]];
                        for (left_states, &pl) in &left {
                            let lset: BTreeSet<usize> = left_states.iter().copied().collect();
                            for (right_states, &pr) in right {
                                let rset: BTreeSet<usize> = right_states.iter().copied().collect();
                                let states = automaton.step(label, &[&lset, &rset]);
                                let key: Vec<usize> = states.into_iter().collect();
                                *dist.entry(key).or_insert(0.0) += local_probability * pl * pr;
                            }
                        }
                    }
                }
            }
            distributions.push(dist);
        }

        let mut accepted = 0.0;
        for (states, &p) in &distributions[root] {
            if states.iter().any(|s| automaton.accepting.contains(s)) {
                accepted += p;
            }
        }
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stuc_circuit::enumeration::probability_by_enumeration;
    use stuc_circuit::wmc::TreewidthWmc;

    const ALPHABET: &[usize] = &[0, 1, 2, 3];

    /// A root (label 3) over two uncertain leaves: leaf A is labeled 1 with
    /// probability of `x0`, leaf B is labeled 2 with probability of `x1`
    /// (label 0 otherwise).
    fn two_leaf_tree() -> (UncertainTree, Weights) {
        let mut t = UncertainTree::new();
        let a = t.add_leaf_with_variable(VarId(0), 0, 1);
        let b = t.add_leaf_with_variable(VarId(1), 0, 2);
        let root = t.add_node(3, vec![a, b]);
        t.set_root(root);
        let mut w = Weights::new();
        w.set(VarId(0), 0.4);
        w.set(VarId(1), 0.25);
        (t, w)
    }

    #[test]
    fn worlds_reflect_valuations() {
        let (t, _) = two_leaf_tree();
        let world = t.world(&BTreeMap::from([(VarId(0), true), (VarId(1), false)]));
        assert_eq!(world.node(0).label, 1);
        assert_eq!(world.node(1).label, 0);
    }

    #[test]
    fn probability_of_existence_query() {
        let (t, w) = two_leaf_tree();
        let automaton = BottomUpTreeAutomaton::exists_label(1, ALPHABET);
        let p = t.acceptance_probability(&automaton, &w).unwrap();
        assert!((p - 0.4).abs() < 1e-12);
        let automaton = BottomUpTreeAutomaton::exists_label(2, ALPHABET);
        let p = t.acceptance_probability(&automaton, &w).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn provenance_run_agrees_with_subset_run() {
        let (t, w) = two_leaf_tree();
        for automaton in [
            BottomUpTreeAutomaton::exists_label(1, ALPHABET),
            BottomUpTreeAutomaton::exists_label(2, ALPHABET),
            BottomUpTreeAutomaton::count_label_modulo(0, 2, 1, ALPHABET),
            BottomUpTreeAutomaton::pattern_descendant(3, 1, ALPHABET),
        ] {
            let direct = t.acceptance_probability(&automaton, &w).unwrap();
            let circuit = t.provenance_run(&automaton).unwrap();
            let by_enumeration = probability_by_enumeration(&circuit, &w).unwrap();
            let by_wmc = TreewidthWmc::default().probability(&circuit, &w).unwrap();
            assert!(
                (direct - by_enumeration).abs() < 1e-9,
                "{direct} vs {by_enumeration}"
            );
            assert!((direct - by_wmc).abs() < 1e-9, "{direct} vs {by_wmc}");
        }
    }

    #[test]
    fn conjunction_of_events_via_intersection() {
        let (t, w) = two_leaf_tree();
        let both = BottomUpTreeAutomaton::exists_label(1, ALPHABET)
            .intersection(&BottomUpTreeAutomaton::exists_label(2, ALPHABET));
        let p = t.acceptance_probability(&both, &w).unwrap();
        assert!((p - 0.4 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn larger_chain_probability_matches_enumeration() {
        // A chain of 6 uncertain unary nodes (each labeled 1 when its event
        // holds, 0 otherwise) under a parity automaton.
        let mut t = UncertainTree::new();
        let mut prev: Option<usize> = None;
        for i in 0..6 {
            let children = prev.map(|p| vec![p]).unwrap_or_default();
            let node = t.add_node_with_variables(vec![VarId(i)], vec![0, 1], children);
            prev = Some(node);
        }
        t.set_root(prev.unwrap());
        let w = Weights::uniform((0..6).map(VarId), 0.3);
        let automaton = BottomUpTreeAutomaton::count_label_modulo(1, 2, 0, &[0, 1]);
        let direct = t.acceptance_probability(&automaton, &w).unwrap();
        let circuit = t.provenance_run(&automaton).unwrap();
        let brute = probability_by_enumeration(&circuit, &w).unwrap();
        assert!((direct - brute).abs() < 1e-9);
    }

    #[test]
    fn lineage_circuit_has_bounded_width_on_chains() {
        // The provenance circuit of a fixed automaton over a chain has width
        // independent of the chain length (the Theorem 2 phenomenon).
        let automaton = BottomUpTreeAutomaton::exists_label(1, &[0, 1]);
        let mut widths = Vec::new();
        for n in [10usize, 40, 80] {
            let mut t = UncertainTree::new();
            let mut prev: Option<usize> = None;
            for i in 0..n {
                let children = prev.map(|p| vec![p]).unwrap_or_default();
                prev = Some(t.add_node_with_variables(vec![VarId(i)], vec![0, 1], children));
            }
            t.set_root(prev.unwrap());
            let circuit = t.provenance_run(&automaton).unwrap();
            widths.push(TreewidthWmc::default().estimated_width(&circuit));
        }
        assert!(
            widths.iter().all(|&w| w <= widths[0] + 2),
            "widths grew: {widths:?}"
        );
    }

    #[test]
    fn missing_root_is_an_error() {
        let t = UncertainTree::new();
        let automaton = BottomUpTreeAutomaton::exists_label(0, &[0]);
        assert!(matches!(
            t.acceptance_probability(&automaton, &Weights::new()),
            Err(UncertainTreeError::NoRoot)
        ));
    }

    #[test]
    fn missing_weight_is_an_error() {
        let (t, _) = two_leaf_tree();
        let automaton = BottomUpTreeAutomaton::exists_label(1, ALPHABET);
        assert!(matches!(
            t.acceptance_probability(&automaton, &Weights::new()),
            Err(UncertainTreeError::Circuit(_))
        ));
    }

    #[test]
    #[should_panic(expected = "2^k entries")]
    fn wrong_label_table_size_panics() {
        let mut t = UncertainTree::new();
        t.add_node_with_variables(vec![VarId(0)], vec![0], vec![]);
    }
}
