//! The recursive-descent parser of the stuc surface language.
//!
//! Grammar (statements separated by `.`, the final `.` optional at EOF):
//!
//! ```text
//! program   := statement ('.' statement)* '.'?
//! statement := fact | rule | query
//! fact      := NUMBER '::' atom
//! rule      := atom ':-' conjunct
//! query     := '?-'? union
//! union     := conjunct (';' conjunct)*
//! conjunct  := literal (',' literal)*
//! literal   := ('!' | 'not')? atom
//! atom      := IDENT '(' (term (',' term)*)? ')'
//! term      := IDENT          (variable)
//!            | STRING         (constant)
//!            | NUMBER         (numeric constant)
//! ```
//!
//! A statement that starts with an atom and is not followed by `:-` is a
//! *goal* — `?-` is optional, so `R(x), S(x, y)` on its own parses as a
//! query, keeping the front-end compatible with the bare query strings the
//! rest of the workspace uses. Facts always need the `p :: atom` form
//! (there is no bare-fact statement), which keeps the grammar unambiguous.
//!
//! Errors are [`ParseError`]s: the span of the offending token, what was
//! found, and the set of tokens that would have been accepted there.

use crate::ast::{
    AtomAst, ConjunctAst, FactAst, LiteralAst, ProgramAst, QueryAst, RuleAst, SpannedTerm,
    StatementAst, TermAst, UnionAst,
};
use crate::lexer::{lex, Span, Token, TokenKind};
use std::fmt;

/// A syntax error: where it happened, what was found, and the token set
/// that was expected there.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// The span of the offending token.
    pub span: Span,
    /// A short rendering of the token that was found.
    pub found: String,
    /// The tokens that would have been accepted at this position.
    pub expected: Vec<&'static str>,
}

impl ParseError {
    fn new(token: &Token, expected: Vec<&'static str>) -> ParseError {
        ParseError {
            span: token.span,
            found: token.kind.describe(),
            expected,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: expected ", self.span)?;
        match self.expected.as_slice() {
            [] => f.write_str("nothing")?,
            [only] => f.write_str(only)?,
            many => {
                f.write_str("one of ")?;
                for (i, e) in many.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(e)?;
                }
            }
        }
        write!(f, ", found {}", self.found)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program (facts, rules, goals).
pub fn parse_program(src: &str) -> Result<ProgramAst, ParseError> {
    Parser::new(src).program()
}

/// Parses a single query goal (a union of conjunctions, `?-` optional).
/// Convenience for callers that only ever feed one query string.
pub fn parse_query(src: &str) -> Result<QueryAst, ParseError> {
    let program = parse_program(src)?;
    let mut queries = Vec::new();
    for statement in program.statements {
        match statement {
            StatementAst::Query(query) => queries.push(query),
            other => {
                return Err(ParseError {
                    span: other.span(),
                    found: match other {
                        StatementAst::Fact(_) => "a fact statement".to_string(),
                        StatementAst::Rule(_) => "a rule statement".to_string(),
                        StatementAst::Query(_) => unreachable!("matched above"),
                    },
                    expected: vec!["a single query goal"],
                })
            }
        }
    }
    match queries.len() {
        1 => Ok(queries.into_iter().next().expect("one query")),
        _ => Err(ParseError {
            span: Span::point(0, 1, 1),
            found: format!("{} query goals", queries.len()),
            expected: vec!["a single query goal"],
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Parser {
        Parser {
            tokens: lex(src),
            pos: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    /// The token after the next one (for the `not` contextual keyword).
    fn peek2_kind(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn error(&self, expected: Vec<&'static str>) -> ParseError {
        ParseError::new(self.peek(), expected)
    }

    fn expect(&mut self, kind: TokenKind, label: &'static str) -> Result<Token, ParseError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error(vec![label]))
        }
    }

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut statements = Vec::new();
        loop {
            // Skip statement separators and stop at EOF.
            while matches!(self.peek_kind(), TokenKind::Dot) {
                self.bump();
            }
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Ok(ProgramAst { statements });
            }
            statements.push(self.statement()?);
            match self.peek_kind() {
                TokenKind::Dot => {
                    self.bump();
                }
                TokenKind::Eof => {}
                _ => return Err(self.error(vec!["'.'", "end of input"])),
            }
        }
    }

    fn statement(&mut self) -> Result<StatementAst, ParseError> {
        match self.peek_kind() {
            TokenKind::Number(_) => self.fact().map(StatementAst::Fact),
            TokenKind::QuestionDash => {
                let start = self.bump().span;
                let goal = self.union()?;
                let span = start.merge(goal.span);
                Ok(StatementAst::Query(QueryAst { goal, span }))
            }
            TokenKind::Bang => {
                let goal = self.union()?;
                let span = goal.span;
                Ok(StatementAst::Query(QueryAst { goal, span }))
            }
            TokenKind::Ident(_) => {
                // `not Atom` can only start a goal; a bare atom may start a
                // rule or a goal — decide after parsing it.
                if self.is_negation_keyword() {
                    let goal = self.union()?;
                    let span = goal.span;
                    return Ok(StatementAst::Query(QueryAst { goal, span }));
                }
                let first = self.atom()?;
                if matches!(self.peek_kind(), TokenKind::ColonDash) {
                    self.bump();
                    let body = self.conjunct()?;
                    let span = first.span.merge(body.span);
                    Ok(StatementAst::Rule(RuleAst {
                        head: first,
                        body,
                        span,
                    }))
                } else {
                    let goal = self.union_continuing(LiteralAst {
                        negated: false,
                        span: first.span,
                        atom: first,
                    })?;
                    let span = goal.span;
                    Ok(StatementAst::Query(QueryAst { goal, span }))
                }
            }
            _ => Err(self.error(vec![
                "a probability (fact)",
                "'?-' (query)",
                "'!' (negated goal)",
                "an identifier (rule or goal)",
            ])),
        }
    }

    fn fact(&mut self) -> Result<FactAst, ParseError> {
        let token = self.bump();
        let TokenKind::Number(lexeme) = &token.kind else {
            unreachable!("statement dispatch peeked a number");
        };
        let probability: f64 = lexeme
            .parse()
            .expect("lexer only emits digit/digit.digit numbers");
        self.expect(TokenKind::ColonColon, "'::'")?;
        let atom = self.atom()?;
        let span = token.span.merge(atom.span);
        Ok(FactAst {
            probability,
            probability_span: token.span,
            atom,
            span,
        })
    }

    fn union(&mut self) -> Result<UnionAst, ParseError> {
        let first = self.conjunct()?;
        self.union_rest(first)
    }

    /// A union whose first conjunct starts with an already-parsed literal.
    fn union_continuing(&mut self, first_literal: LiteralAst) -> Result<UnionAst, ParseError> {
        let first = self.conjunct_continuing(first_literal)?;
        self.union_rest(first)
    }

    fn union_rest(&mut self, first: ConjunctAst) -> Result<UnionAst, ParseError> {
        let mut span = first.span;
        let mut disjuncts = vec![first];
        while matches!(self.peek_kind(), TokenKind::Semi) {
            self.bump();
            let next = self.conjunct()?;
            span = span.merge(next.span);
            disjuncts.push(next);
        }
        Ok(UnionAst { disjuncts, span })
    }

    fn conjunct(&mut self) -> Result<ConjunctAst, ParseError> {
        let first = self.literal()?;
        self.conjunct_continuing(first)
    }

    fn conjunct_continuing(&mut self, first: LiteralAst) -> Result<ConjunctAst, ParseError> {
        let mut span = first.span;
        let mut literals = vec![first];
        while matches!(self.peek_kind(), TokenKind::Comma) {
            self.bump();
            let next = self.literal()?;
            span = span.merge(next.span);
            literals.push(next);
        }
        Ok(ConjunctAst { literals, span })
    }

    /// True when the upcoming tokens are the contextual keyword `not`
    /// followed by an atom (`not(x)` is an ordinary atom named `not`).
    fn is_negation_keyword(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(name) if name == "not")
            && matches!(self.peek2_kind(), TokenKind::Ident(_))
    }

    fn literal(&mut self) -> Result<LiteralAst, ParseError> {
        let negation_marker =
            matches!(self.peek_kind(), TokenKind::Bang) || self.is_negation_keyword();
        let (negated, start) = if negation_marker {
            (true, Some(self.bump().span))
        } else {
            (false, None)
        };
        let atom = self.atom()?;
        let span = start.map_or(atom.span, |s| s.merge(atom.span));
        Ok(LiteralAst {
            negated,
            atom,
            span,
        })
    }

    fn atom(&mut self) -> Result<AtomAst, ParseError> {
        let TokenKind::Ident(relation) = self.peek_kind().clone() else {
            return Err(self.error(vec!["a relation name"]));
        };
        let start = self.bump().span;
        self.expect(TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        if !matches!(self.peek_kind(), TokenKind::RParen) {
            loop {
                args.push(self.term()?);
                match self.peek_kind() {
                    TokenKind::Comma => {
                        self.bump();
                    }
                    TokenKind::RParen => break,
                    _ => return Err(self.error(vec!["','", "')'"])),
                }
            }
        }
        let close = self.expect(TokenKind::RParen, "')'")?;
        Ok(AtomAst {
            relation,
            args,
            span: start.merge(close.span),
        })
    }

    fn term(&mut self) -> Result<SpannedTerm, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok(SpannedTerm {
                    term: TermAst::Var(name),
                    span,
                })
            }
            TokenKind::Str(text) => {
                let span = self.bump().span;
                Ok(SpannedTerm {
                    term: TermAst::Const(text),
                    span,
                })
            }
            TokenKind::Number(lexeme) => {
                let span = self.bump().span;
                Ok(SpannedTerm {
                    term: TermAst::Const(lexeme),
                    span,
                })
            }
            _ => Err(self.error(vec![
                "a variable",
                "a quoted constant",
                "a numeric constant",
            ])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_conjunction_parses_as_a_goal() {
        let program = parse_program("R(x, y), S(y, \"paris\")").unwrap();
        assert_eq!(program.statements.len(), 1);
        let StatementAst::Query(query) = &program.statements[0] else {
            panic!("expected a query");
        };
        assert_eq!(query.goal.disjuncts.len(), 1);
        assert_eq!(query.goal.disjuncts[0].literals.len(), 2);
        assert_eq!(query.to_string(), "?- R(x, y), S(y, \"paris\").");
    }

    #[test]
    fn full_program_parses() {
        let src = "0.5 :: R(\"a\", \"b\").\n\
                   0.25 :: R(\"b\", \"c\").\n\
                   Hop(x, z) :- R(x, y), R(y, z).\n\
                   ?- Hop(x, z); R(x, \"c\").";
        let program = parse_program(src).unwrap();
        assert_eq!(program.facts().count(), 2);
        assert_eq!(program.rules().len(), 1);
        let queries = program.queries();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].goal.disjuncts.len(), 2);
    }

    #[test]
    fn negation_forms() {
        let bang = parse_query("?- R(x, y), !S(\"a\").").unwrap();
        let keyword = parse_query("?- R(x, y), not S(\"a\").").unwrap();
        // Same goal up to spans (the `!` and `not` markers differ in width).
        assert_eq!(bang.goal.to_string(), keyword.goal.to_string());
        assert!(bang.goal.disjuncts[0].literals[1].negated);
        // `not(...)` is an atom named `not`, not a negation.
        let atom = parse_query("?- not(x)").unwrap();
        assert!(!atom.goal.disjuncts[0].literals[0].negated);
        assert_eq!(atom.goal.disjuncts[0].literals[0].atom.relation, "not");
    }

    #[test]
    fn errors_carry_spans_and_expected_sets() {
        let error = parse_program("R(x").unwrap_err();
        assert_eq!(error.span.line, 1);
        assert!(error.expected.iter().any(|e| e.contains("','")));
        assert!(error.to_string().contains("line 1"));

        let error = parse_program("R(x,, y)").unwrap_err();
        assert!(error.expected.iter().any(|e| e.contains("variable")));

        let error = parse_program("R(x) S(y)").unwrap_err();
        assert!(error.found.contains("identifier 'S'"));
        assert!(error.expected.contains(&"'.'"));

        let error = parse_program("0.5 : R(\"a\")").unwrap_err();
        assert!(error.found.contains("':'"));
    }

    #[test]
    fn lexical_errors_surface_with_positions() {
        let error = parse_program("R(@)").unwrap_err();
        assert!(error.found.contains("unexpected character '@'"));
        assert_eq!(error.span.col, 3);
    }

    #[test]
    fn trailing_dot_is_optional_and_repeated_dots_are_tolerated() {
        assert!(parse_program("?- R(x).").is_ok());
        assert!(parse_program("?- R(x)").is_ok());
        assert!(parse_program("..?- R(x)..").is_ok());
        assert!(parse_program("").unwrap().statements.is_empty());
    }

    #[test]
    fn parse_query_rejects_non_query_programs() {
        assert!(parse_query("0.5 :: R(\"a\").").is_err());
        assert!(parse_query("?- R(x). ?- S(x).").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn nullary_atoms_parse() {
        let query = parse_query("?- Alarm()").unwrap();
        assert!(query.goal.disjuncts[0].literals[0].atom.args.is_empty());
    }
}
