//! # stuc-lang — the textual datalog/UCQ front-end
//!
//! Everything upstream of this crate builds queries programmatically; this
//! crate is the text surface. It takes a program in a small datalog-flavoured
//! syntax —
//!
//! ```text
//! % probabilistic facts
//! 0.5 :: R("a", "b").
//! 0.9 :: S("b").
//!
//! % non-recursive rules (positive bodies only)
//! Hop(x, z) :- R(x, y), R(y, z).
//!
//! % goals: unions of conjunctions, with ground negation
//! ?- Hop(x, z); R(x, "b"), !S("b").
//! ```
//!
//! — and turns it into the workspace's existing query structures through
//! four stages, one module each:
//!
//! | stage | module | output |
//! |-------|--------|--------|
//! | lex | [`lexer`] | spanned tokens (never fails; errors are tokens) |
//! | parse | [`parser`] | spanned AST with expected-token diagnostics |
//! | analyse | [`analysis`] | safety: range restriction, arities, groundness |
//! | lower | [`lower`] | signed sums of [`stuc_query::cq::ConjunctiveQuery`] |
//!
//! plus a [`cost`] model that routes each lowered goal to the safe-plan
//! evaluator or to lineage/circuit compilation. The engine integration
//! (`Engine::evaluate_text`) and the `stuc-repl` binary live in the core
//! and umbrella crates; this crate stays dependency-light so any consumer
//! can parse and lower without pulling in the evaluators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod cost;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use analysis::SafetyError;
pub use ast::{ProgramAst, QueryAst, RuleAst, UnionAst};
pub use cost::{CostModel, RelationStats, Route, RouteDecision};
pub use lexer::Span;
pub use lower::{LoweredGoal, SignedTerm};
pub use parser::{parse_program, parse_query, ParseError};

stuc_errors::stuc_error! {
    /// Any front-end failure: syntactic, semantic, or during lowering.
    #[derive(Clone, PartialEq)]
    pub enum LangError {
        /// A syntax error with span and expected-token set.
        Parse(parser::ParseError),
        /// A safety / well-formedness violation.
        Safety(analysis::SafetyError),
        /// A lowering failure (recursion, non-ground negation, blow-up).
        Lower(lower::LowerError),
    }
    display {
        Self::Parse(error) => "{error}",
        Self::Safety(error) => "{error}",
        Self::Lower(error) => "{error}",
    }
    from {
        parser::ParseError => Parse,
        analysis::SafetyError => Safety,
        lower::LowerError => Lower,
    }
}

// `LowerError` already wraps `SafetyError`; flatten it so callers match on
// `LangError::Safety` regardless of which stage caught the violation.
impl LangError {
    /// Normalises nested error wrappers to the outermost natural variant.
    pub fn flattened(self) -> LangError {
        match self {
            LangError::Lower(lower::LowerError::Safety(error)) => LangError::Safety(error),
            other => other,
        }
    }
}

/// Parses a single query goal and lowers it with no rules in scope.
/// The one-stop entry point for plain UCQ strings.
pub fn lower_query_text(src: &str) -> Result<LoweredGoal, LangError> {
    let query = parser::parse_query(src)?;
    lower::lower_goal(&query.goal, &[])
        .map_err(LangError::from)
        .map_err(LangError::flattened)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_query_text_round_trips_the_pipeline() {
        let goal = lower_query_text("?- R(x); S(x).").unwrap();
        assert_eq!(goal.terms.len(), 3);
    }

    #[test]
    fn errors_from_every_stage_are_wrapped() {
        assert!(matches!(lower_query_text("R(x"), Err(LangError::Parse(_))));
        assert!(matches!(
            lower_query_text("?- R(x), !S(y)."),
            Err(LangError::Safety(_))
        ));
        assert!(matches!(
            lower_query_text("?- R(x), !S(x)."),
            Err(LangError::Lower(_))
        ));
    }

    #[test]
    fn lang_errors_render_their_cause() {
        let error = lower_query_text("R(x").unwrap_err();
        assert!(error.to_string().contains("line 1"));
    }
}
