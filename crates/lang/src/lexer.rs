//! The hand-rolled lexer of the stuc surface language.
//!
//! Turns source text into a stream of [`Token`]s, each carrying a [`Span`]
//! (byte range plus 1-based line/column of its start). The lexer never
//! fails: characters it cannot tokenise become [`TokenKind::Error`] tokens,
//! which the parser reports as spanned syntax errors with the usual
//! expected-token machinery — so one diagnostics pipeline covers lexical
//! and grammatical problems alike.
//!
//! Lexical shape:
//!
//! * identifiers `[A-Za-z_][A-Za-z0-9_]*` (relation names and variables);
//! * numbers `[0-9]+(.[0-9]+)?` (probabilities and numeric constants);
//! * string literals `"…"` or `'…'` with no escapes (quoted constants);
//! * punctuation `( ) , ; . !` and the digraphs `:-` `::` `?-`;
//! * `%` starts a comment running to the end of the line.
//!
//! A `.` directly between digits belongs to the number; anywhere else it is
//! the statement terminator.

use std::fmt;

/// A source region: byte offsets plus the 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Span {
    /// A span covering a single point (used for end-of-input diagnostics).
    pub fn point(offset: usize, line: u32, col: u32) -> Span {
        Span {
            start: offset,
            end: offset,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if self.start <= other.start {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// What one token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier: a relation name or a variable.
    Ident(String),
    /// A numeric literal, kept as its lexeme (parsed on demand).
    Number(String),
    /// A quoted string literal (the quotes are stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `!`
    Bang,
    /// `:-`
    ColonDash,
    /// `::`
    ColonColon,
    /// `?-`
    QuestionDash,
    /// End of input.
    Eof,
    /// A lexical error, carrying a human-readable description.
    Error(String),
}

impl TokenKind {
    /// A short rendering of the token for "found …" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier '{name}'"),
            TokenKind::Number(lexeme) => format!("number '{lexeme}'"),
            TokenKind::Str(text) => format!("string \"{text}\""),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Semi => "';'".to_string(),
            TokenKind::Dot => "'.'".to_string(),
            TokenKind::Bang => "'!'".to_string(),
            TokenKind::ColonDash => "':-'".to_string(),
            TokenKind::ColonColon => "'::'".to_string(),
            TokenKind::QuestionDash => "'?-'".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            TokenKind::Error(message) => message.clone(),
        }
    }
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Tokenises `src` completely. Always succeeds; unrecognised input becomes
/// [`TokenKind::Error`] tokens. The final token is always [`TokenKind::Eof`].
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    /// Consumes the next character, maintaining line/column counters.
    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn offset(&mut self) -> usize {
        self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src.len())
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let end = self.offset();
        self.tokens.push(Token {
            kind,
            span: Span {
                start,
                end,
                line,
                col,
            },
        });
    }

    fn run(mut self) -> Vec<Token> {
        loop {
            // Skip whitespace and `%` comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('%') => {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some((start, c)) = self.bump() else {
                let offset = self.src.len();
                self.tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(offset, line, col),
                });
                return self.tokens;
            };
            match c {
                '(' => self.push(TokenKind::LParen, start, line, col),
                ')' => self.push(TokenKind::RParen, start, line, col),
                ',' => self.push(TokenKind::Comma, start, line, col),
                ';' => self.push(TokenKind::Semi, start, line, col),
                '.' => self.push(TokenKind::Dot, start, line, col),
                '!' => self.push(TokenKind::Bang, start, line, col),
                ':' => match self.peek() {
                    Some('-') => {
                        self.bump();
                        self.push(TokenKind::ColonDash, start, line, col);
                    }
                    Some(':') => {
                        self.bump();
                        self.push(TokenKind::ColonColon, start, line, col);
                    }
                    other => {
                        let found = other.map_or("end of input".to_string(), |c| format!("'{c}'"));
                        self.push(
                            TokenKind::Error(format!(
                                "'{found}' after ':' (expected ':-' or '::')",
                            )),
                            start,
                            line,
                            col,
                        );
                    }
                },
                '?' => match self.peek() {
                    Some('-') => {
                        self.bump();
                        self.push(TokenKind::QuestionDash, start, line, col);
                    }
                    other => {
                        let found = other.map_or("end of input".to_string(), |c| format!("'{c}'"));
                        self.push(
                            TokenKind::Error(format!("'{found}' after '?' (expected '?-')")),
                            start,
                            line,
                            col,
                        );
                    }
                },
                quote @ ('"' | '\'') => {
                    let mut text = String::new();
                    loop {
                        match self.peek() {
                            Some(c) if c == quote => {
                                self.bump();
                                self.push(TokenKind::Str(text), start, line, col);
                                break;
                            }
                            Some('\n') | None => {
                                self.push(
                                    TokenKind::Error(format!(
                                        "unterminated string literal starting with {quote}"
                                    )),
                                    start,
                                    line,
                                    col,
                                );
                                break;
                            }
                            Some(c) => {
                                text.push(c);
                                self.bump();
                            }
                        }
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut lexeme = String::from(c);
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            lexeme.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // A '.' belongs to the number only when a digit follows;
                    // otherwise it terminates the statement.
                    if self.peek() == Some('.') {
                        let mut lookahead = self.chars.clone();
                        lookahead.next();
                        if lookahead.peek().is_some_and(|&(_, d)| d.is_ascii_digit()) {
                            lexeme.push('.');
                            self.bump();
                            while let Some(d) = self.peek() {
                                if d.is_ascii_digit() {
                                    lexeme.push(d);
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                    self.push(TokenKind::Number(lexeme), start, line, col);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut name = String::from(c);
                    while let Some(d) = self.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            name.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident(name), start, line, col);
                }
                other => {
                    self.push(
                        TokenKind::Error(format!("unexpected character '{other}'")),
                        start,
                        line,
                        col,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_digraphs() {
        assert_eq!(
            kinds("( ) , ; . ! :- :: ?-"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Dot,
                TokenKind::Bang,
                TokenKind::ColonDash,
                TokenKind::ColonColon,
                TokenKind::QuestionDash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_keep_fractions_but_release_the_statement_dot() {
        assert_eq!(
            kinds("0.5 :: R(\"a\")."),
            vec![
                TokenKind::Number("0.5".into()),
                TokenKind::ColonColon,
                TokenKind::Ident("R".into()),
                TokenKind::LParen,
                TokenKind::Str("a".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
        // "1." is a number followed by a statement terminator.
        assert_eq!(
            kinds("1."),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("R(x)\n  ?- S(y)");
        let question = tokens
            .iter()
            .find(|t| t.kind == TokenKind::QuestionDash)
            .unwrap();
        assert_eq!(question.span.line, 2);
        assert_eq!(question.span.col, 3);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("% header\nR(x) % trailing\n"),
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_are_tokens_not_panics() {
        let tokens = lex("R(@) : \"open");
        let errors: Vec<_> = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Error(_)))
            .collect();
        assert_eq!(errors.len(), 3);
    }

    #[test]
    fn eof_span_points_past_the_input() {
        let tokens = lex("R");
        assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
        assert_eq!(tokens.last().unwrap().span.start, 1);
    }
}
