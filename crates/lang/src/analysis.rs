//! Semantic analysis: safety and well-formedness checks on the AST.
//!
//! These checks run between parsing and lowering, and report *spanned*
//! diagnostics just like the parser does:
//!
//! * **facts** must be ground (no variables) and carry a probability in
//!   `[0, 1]`;
//! * **rules** must be range-restricted (every head variable bound by a
//!   positive body atom) and contain no negation — rules feed the positive
//!   datalog unfolder;
//! * **goals** must be range-restricted per disjunct: every variable of a
//!   negated atom must also occur in a positive atom of the *same*
//!   conjunct, so the negation can be grounded before evaluation;
//! * every relation must be used with one consistent **arity** across the
//!   whole program (facts, rule heads, rule bodies, and goals alike).

use crate::ast::{AtomAst, ConjunctAst, ProgramAst, RuleAst, UnionAst};
use crate::lexer::Span;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

stuc_errors::stuc_error! {
    /// A semantic (safety / well-formedness) violation, with its source span.
    #[derive(Clone, PartialEq)]
    pub enum SafetyError {
        /// A fact atom contains a variable.
        NonGroundFact {
            /// The relation of the offending fact.
            relation: String,
            /// The first variable found in it.
            variable: String,
            /// Where the fact was written.
            span: Span,
        },
        /// A fact probability lies outside `[0, 1]`.
        InvalidProbability {
            /// The offending value.
            value: f64,
            /// Where the probability literal was written.
            span: Span,
        },
        /// A rule head variable is not bound by any positive body atom.
        UnsafeRuleHead {
            /// The unbound head variable.
            variable: String,
            /// Where the rule was written.
            span: Span,
        },
        /// A rule body contains a negated literal.
        NegationInRule {
            /// The negated relation.
            relation: String,
            /// Where the negated literal was written.
            span: Span,
        },
        /// A variable of a negated goal atom is not bound by a positive atom
        /// of the same conjunct.
        UnboundNegatedVariable {
            /// The unbound variable.
            variable: String,
            /// The negated relation it appears in.
            relation: String,
            /// Where the negated literal was written.
            span: Span,
        },
        /// A relation is used with two different arities.
        ArityMismatch {
            /// The relation name.
            relation: String,
            /// The arity of its first use.
            expected: usize,
            /// The conflicting arity.
            found: usize,
            /// Where the conflicting use was written.
            span: Span,
        },
    }
    display {
        Self::NonGroundFact { relation, variable, span } =>
            "fact for {relation} at {span} is not ground: variable {variable}",
        Self::InvalidProbability { value, span } =>
            "probability {value} at {span} is outside [0, 1]",
        Self::UnsafeRuleHead { variable, span } =>
            "unsafe rule at {span}: head variable {variable} is not bound by a positive body atom",
        Self::NegationInRule { relation, span } =>
            "rule at {span} negates {relation}: rules must be positive",
        Self::UnboundNegatedVariable { variable, relation, span } =>
            "negated atom {relation} at {span} uses variable {variable} not bound by a positive atom of the same conjunct",
        Self::ArityMismatch { relation, expected, found, span } =>
            "relation {relation} used with arity {found} at {span}, but previously with arity {expected}",
    }
}

/// Tracks the arity each relation was first used with, so later uses can be
/// checked for consistency. One table spans a whole program: facts, rules,
/// and goals all share the relation namespace.
#[derive(Debug, Default)]
pub struct ArityTable {
    arities: BTreeMap<String, usize>,
}

impl ArityTable {
    /// Creates an empty table (all relations still unconstrained).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `atom`'s arity, or reports a mismatch with an earlier use.
    pub fn check(&mut self, atom: &AtomAst) -> Result<(), SafetyError> {
        let found = atom.args.len();
        match self.arities.get(&atom.relation) {
            Some(&expected) if expected != found => Err(SafetyError::ArityMismatch {
                relation: atom.relation.clone(),
                expected,
                found,
                span: atom.span,
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(atom.relation.clone(), found);
                Ok(())
            }
        }
    }
}

/// Checks a whole program: facts, rules, then goals, in source order.
pub fn check_program(program: &ProgramAst) -> Result<(), SafetyError> {
    let mut arities = ArityTable::default();
    for fact in program.facts() {
        arities.check(&fact.atom)?;
        if let Some(variable) = fact.atom.variables().first() {
            return Err(SafetyError::NonGroundFact {
                relation: fact.atom.relation.clone(),
                variable: (*variable).to_string(),
                span: fact.span,
            });
        }
        if !(0.0..=1.0).contains(&fact.probability) {
            return Err(SafetyError::InvalidProbability {
                value: fact.probability,
                span: fact.probability_span,
            });
        }
    }
    for rule in program.rules() {
        check_rule(rule, &mut arities)?;
    }
    for query in program.queries() {
        check_goal_with(&query.goal, &mut arities)?;
    }
    Ok(())
}

/// Checks one rule: arities, positivity, and range restriction of the head.
pub fn check_rule(rule: &RuleAst, arities: &mut ArityTable) -> Result<(), SafetyError> {
    arities.check(&rule.head)?;
    for literal in &rule.body.literals {
        arities.check(&literal.atom)?;
        if literal.negated {
            return Err(SafetyError::NegationInRule {
                relation: literal.atom.relation.clone(),
                span: literal.span,
            });
        }
    }
    let body_variables: BTreeSet<&str> = rule
        .body
        .positive()
        .flat_map(|atom| atom.variables())
        .collect();
    for variable in rule.head.variables() {
        if !body_variables.contains(variable) {
            return Err(SafetyError::UnsafeRuleHead {
                variable: variable.to_string(),
                span: rule.span,
            });
        }
    }
    Ok(())
}

/// Checks a goal (a union of conjunctions) against fresh arity state.
/// Convenience for callers that validate a goal outside a whole program.
pub fn check_goal(goal: &UnionAst) -> Result<(), SafetyError> {
    check_goal_with(goal, &mut ArityTable::default())
}

/// Checks a goal against an existing arity table (shared with the rules the
/// goal will be unfolded through).
pub fn check_goal_with(goal: &UnionAst, arities: &mut ArityTable) -> Result<(), SafetyError> {
    for disjunct in &goal.disjuncts {
        check_conjunct(disjunct, arities)?;
    }
    Ok(())
}

fn check_conjunct(conjunct: &ConjunctAst, arities: &mut ArityTable) -> Result<(), SafetyError> {
    for literal in &conjunct.literals {
        arities.check(&literal.atom)?;
    }
    let positive_variables: BTreeSet<&str> = conjunct
        .positive()
        .flat_map(|atom| atom.variables())
        .collect();
    for literal in conjunct.negated() {
        for variable in literal.atom.variables() {
            if !positive_variables.contains(variable) {
                return Err(SafetyError::UnboundNegatedVariable {
                    variable: variable.to_string(),
                    relation: literal.atom.relation.clone(),
                    span: literal.span,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), SafetyError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn well_formed_program_passes() {
        check(
            "0.5 :: R(\"a\", \"b\").\n\
             Hop(x, z) :- R(x, y), R(y, z).\n\
             ?- Hop(x, z), !R(x, z).",
        )
        .unwrap();
    }

    #[test]
    fn non_ground_facts_are_rejected() {
        let error = check("0.5 :: R(x, \"b\").").unwrap_err();
        assert!(
            matches!(error, SafetyError::NonGroundFact { ref variable, .. } if variable == "x")
        );
    }

    #[test]
    fn probabilities_outside_unit_interval_are_rejected() {
        let error = check("1.5 :: R(\"a\").").unwrap_err();
        assert!(matches!(error, SafetyError::InvalidProbability { .. }));
        assert!(error.to_string().contains("1.5"));
    }

    #[test]
    fn unsafe_rule_heads_are_rejected() {
        let error = check("Head(x, z) :- Body(x, y).").unwrap_err();
        assert!(
            matches!(error, SafetyError::UnsafeRuleHead { ref variable, .. } if variable == "z")
        );
    }

    #[test]
    fn negation_in_rules_is_rejected() {
        let error = check("Head(x) :- Body(x), !Bad(x).").unwrap_err();
        assert!(matches!(error, SafetyError::NegationInRule { .. }));
    }

    #[test]
    fn unbound_negated_variables_are_rejected() {
        let error = check("?- R(x), !S(y).").unwrap_err();
        assert!(
            matches!(error, SafetyError::UnboundNegatedVariable { ref variable, .. } if variable == "y")
        );
        // Bound in a *different* disjunct does not help.
        assert!(check("?- S(y); R(x), !S(y).").is_err());
        // Bound in the same conjunct is fine.
        check("?- R(y), !S(y).").unwrap();
        // Ground negation needs no binding at all.
        check("?- !S(\"a\").").unwrap();
    }

    #[test]
    fn arity_mismatches_are_caught_across_statement_kinds() {
        let error = check("0.5 :: R(\"a\", \"b\").\n?- R(x).").unwrap_err();
        assert!(matches!(
            error,
            SafetyError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        let error = check("Head(x) :- R(x, y).\nHead(x, y) :- R(x, y).").unwrap_err();
        assert!(matches!(error, SafetyError::ArityMismatch { .. }));
    }

    #[test]
    fn spans_point_at_the_offending_construct() {
        let error = check("?- R(x),\n   !S(y).").unwrap_err();
        let SafetyError::UnboundNegatedVariable { span, .. } = error else {
            panic!("wrong error kind");
        };
        assert_eq!(span.line, 2);
    }
}
