//! Lowering: from the surface AST to the workspace's query structures.
//!
//! A goal (a union of conjunctions, possibly mentioning rule-defined
//! relations and ground negation) is lowered to a **signed sum of plain
//! [`ConjunctiveQuery`]s**, so that every downstream evaluator — the safe-plan
//! engine, lineage compilation, any circuit backend — only ever sees the CQs
//! it already understands:
//!
//! 1. **Rule unfolding.** Rules are collected into a (non-recursive)
//!    [`DatalogProgram`]; every goal atom over an intensional relation is
//!    replaced by each rule body whose head unifies with it, distributing
//!    the resulting unions. Constants flow both ways through unification:
//!    a constant in the goal selects matching rules, and a constant in a
//!    rule head binds goal variables.
//! 2. **Union inclusion–exclusion.** For unfolded disjuncts `D₁ ∨ … ∨ Dₖ`,
//!    `P(⋁ Dᵢ) = Σ_{∅≠T⊆[k]} (−1)^{|T|+1} P(⋀_{i∈T} Dᵢ)`, with the
//!    variables of distinct disjuncts renamed apart (suffix `__d{i}`)
//!    before conjoining, since each disjunct is quantified independently.
//! 3. **Negation expansion.** Negated atoms must be *ground* once
//!    unfolding has substituted constants through (the analysis pass
//!    already guarantees range restriction); each conjunction `C ∧ ¬A₁ ∧ …
//!    ∧ ¬Aₘ` then expands as `Σ_{S⊆[m]} (−1)^{|S|} P(C ∧ ⋀_{j∈S} Aⱼ)`.
//!
//! An empty conjunction (possible when a goal is purely negative) is the
//! tautology: its probability is 1 and it is represented by a
//! [`SignedTerm`] with `query: None`. Expansion is capped — see
//! [`MAX_CONJUNCTS`] and [`MAX_TERMS`] — so adversarial inputs fail with a
//! clean error instead of exhausting memory.

use crate::analysis::{self, ArityTable, SafetyError};
use crate::ast::{ConjunctAst, ProgramAst, RuleAst, TermAst, UnionAst};
use std::collections::{BTreeMap, BTreeSet};
use stuc_data::tid::TidInstance;
use stuc_query::cq::{Atom, ConjunctiveQuery, Term};
use stuc_query::datalog::{DatalogProgram, DatalogRule};

/// Cap on the number of conjuncts a single disjunct may unfold into.
pub const MAX_CONJUNCTS: usize = 256;

/// Cap on the number of signed inclusion–exclusion terms of a lowered goal.
pub const MAX_TERMS: usize = 1024;

stuc_errors::stuc_error! {
    /// Errors raised while lowering a checked AST to query structures.
    #[derive(Clone, PartialEq)]
    pub enum LowerError {
        /// The rule set is recursive; only non-recursive programs unfold.
        RecursiveProgram,
        /// Unfolding a disjunct exceeded [`MAX_CONJUNCTS`].
        TooManyConjuncts {
            /// The limit that was exceeded.
            limit: usize,
        },
        /// Inclusion–exclusion exceeded [`MAX_TERMS`].
        TooManyTerms {
            /// The limit that was exceeded.
            limit: usize,
        },
        /// A negated atom still contains variables after unfolding.
        NonGroundNegation {
            /// The negated relation.
            relation: String,
        },
        /// A negated atom refers to a rule-defined relation.
        NegatedIntensional {
            /// The negated relation.
            relation: String,
        },
        /// A safety violation detected while re-checking the input.
        Safety(SafetyError),
        /// An internal rule-construction failure (should not happen after
        /// the analysis pass).
        Rule(String),
        /// The ambient evaluation budget (deadline or cancellation) tripped
        /// during unfolding.
        Budget(stuc_fault::BudgetError),
    }
    display {
        Self::RecursiveProgram => "recursive rule sets cannot be unfolded into unions of conjunctive queries",
        Self::TooManyConjuncts { limit } => "rule unfolding produced more than {limit} conjuncts",
        Self::TooManyTerms { limit } => "inclusion-exclusion expansion produced more than {limit} terms",
        Self::NonGroundNegation { relation } => "negated atom over {relation} is not ground after unfolding; only ground negation is supported",
        Self::NegatedIntensional { relation } => "negated atom over rule-defined relation {relation} is not supported",
        Self::Safety(error) => "safety violation: {error}",
        Self::Rule(message) => "invalid rule: {message}",
        Self::Budget(e) => "{e}",
    }
    from {
        SafetyError => Safety,
        stuc_fault::BudgetError => Budget,
    }
}

/// One signed inclusion–exclusion term: `sign · P(query)`, where a missing
/// query denotes the tautology (`P = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct SignedTerm {
    /// `+1` or `−1`.
    pub sign: i32,
    /// The conjunctive query of the term; `None` is the empty conjunction.
    pub query: Option<ConjunctiveQuery>,
}

/// A goal lowered to a signed sum of conjunctive queries, plus the shape
/// facts the cost model wants.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredGoal {
    /// The signed inclusion–exclusion terms. An empty list means the goal
    /// is unsatisfiable (probability 0) — e.g. an intensional atom no rule
    /// can produce.
    pub terms: Vec<SignedTerm>,
    /// How many conjuncts the goal flattened into after unfolding.
    pub disjunct_count: usize,
    /// True when rule unfolding happened (some atom was intensional).
    pub used_rules: bool,
    /// True when ground negation was expanded.
    pub has_negation: bool,
}

impl LoweredGoal {
    /// Every relation mentioned by some term.
    pub fn relations(&self) -> BTreeSet<String> {
        self.terms
            .iter()
            .filter_map(|t| t.query.as_ref())
            .flat_map(|q| q.atoms.iter().map(|a| a.relation.clone()))
            .collect()
    }

    /// Combines per-query probabilities into the goal probability:
    /// `clamp(Σ sign · P(query))`, with the tautology contributing 1.
    /// The clamp absorbs the floating-point drift of alternating sums.
    pub fn combine<E>(
        &self,
        mut eval: impl FnMut(&ConjunctiveQuery) -> Result<f64, E>,
    ) -> Result<f64, E> {
        let mut total = 0.0;
        for term in &self.terms {
            let p = match &term.query {
                None => 1.0,
                Some(query) => eval(query)?,
            };
            total += f64::from(term.sign) * p;
        }
        Ok(total.clamp(0.0, 1.0))
    }
}

/// Converts an AST term to a query term.
fn lower_term(term: &TermAst) -> Term {
    match term {
        TermAst::Var(name) => Term::Var(name.clone()),
        TermAst::Const(name) => Term::Const(name.clone()),
    }
}

/// Converts an AST atom to a query atom.
fn lower_atom(atom: &crate::ast::AtomAst) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom.args.iter().map(|a| lower_term(&a.term)).collect(),
    }
}

/// Lowers checked rules to a positive [`DatalogProgram`].
pub fn lower_rules(rules: &[&RuleAst]) -> Result<DatalogProgram, LowerError> {
    let mut program = DatalogProgram::new();
    for rule in rules {
        let head = lower_atom(&rule.head);
        let body: Vec<Atom> = rule.body.positive().map(lower_atom).collect();
        program
            .add_rule(DatalogRule::new(head, body).map_err(|e| LowerError::Rule(e.to_string()))?);
    }
    Ok(program)
}

/// Builds a tuple-independent instance from the facts of a program. Later
/// facts for the same ground atom override earlier ones.
pub fn program_instance(program: &ProgramAst) -> Result<TidInstance, SafetyError> {
    analysis::check_program(program)?;
    let mut dedup: BTreeMap<(String, Vec<String>), f64> = BTreeMap::new();
    let mut order: Vec<(String, Vec<String>)> = Vec::new();
    for fact in program.facts() {
        let key = (
            fact.atom.relation.clone(),
            fact.atom
                .args
                .iter()
                .map(|a| match &a.term {
                    TermAst::Const(name) => name.clone(),
                    TermAst::Var(_) => unreachable!("check_program rejects non-ground facts"),
                })
                .collect::<Vec<_>>(),
        );
        if dedup.insert(key.clone(), fact.probability).is_none() {
            order.push(key);
        }
    }
    let mut tid = TidInstance::new();
    for key in order {
        let probability = dedup[&key];
        let args: Vec<&str> = key.1.iter().map(String::as_str).collect();
        tid.add_fact_named(&key.0, &args, probability);
    }
    Ok(tid)
}

/// Lowers a goal against a rule set. Runs the analysis pass first (with a
/// shared arity table spanning rules and goal), so callers may hand over
/// freshly parsed input directly.
pub fn lower_goal(goal: &UnionAst, rules: &[&RuleAst]) -> Result<LoweredGoal, LowerError> {
    let mut arities = ArityTable::new();
    for rule in rules {
        analysis::check_rule(rule, &mut arities)?;
    }
    analysis::check_goal_with(goal, &mut arities)?;

    let program = lower_rules(rules)?;
    if program.is_recursive() {
        return Err(LowerError::RecursiveProgram);
    }
    let idb = program.idb_relations();

    let mut counter = 0usize;
    let mut disjuncts: Vec<Conjunct> = Vec::new();
    let mut used_rules = false;
    let mut has_negation = false;
    for conjunct in &goal.disjuncts {
        let unfolded = unfold_conjunct(conjunct, &program, &idb, &mut counter)?;
        for c in unfolded {
            used_rules |= c.unfolded;
            has_negation |= !c.negatives.is_empty();
            disjuncts.push(c);
        }
    }

    let terms = inclusion_exclusion(&disjuncts)?;
    Ok(LoweredGoal {
        terms,
        disjunct_count: disjuncts.len(),
        used_rules,
        has_negation,
    })
}

/// A conjunction mid-lowering: positive atoms plus ground negated atoms.
#[derive(Debug, Clone)]
struct Conjunct {
    positives: Vec<Atom>,
    negatives: Vec<Atom>,
    unfolded: bool,
}

/// Unfolds one surface conjunct into purely extensional conjuncts,
/// distributing rule alternatives. Returns an empty list when no rule can
/// produce a required intensional atom (the conjunct is unsatisfiable).
fn unfold_conjunct(
    conjunct: &ConjunctAst,
    program: &DatalogProgram,
    idb: &BTreeSet<String>,
    counter: &mut usize,
) -> Result<Vec<Conjunct>, LowerError> {
    let initial = Conjunct {
        positives: conjunct.positive().map(lower_atom).collect(),
        negatives: conjunct.negated().map(|l| lower_atom(&l.atom)).collect(),
        unfolded: false,
    };
    let mut worklist = vec![initial];
    let mut done: Vec<Conjunct> = Vec::new();
    let mut budget_gate = stuc_fault::budget::Gate::every(64);
    while let Some(current) = worklist.pop() {
        budget_gate.check("rule unfolding")?;
        let intensional = current
            .positives
            .iter()
            .position(|a| idb.contains(&a.relation));
        let Some(index) = intensional else {
            for negative in &current.negatives {
                if idb.contains(&negative.relation) {
                    return Err(LowerError::NegatedIntensional {
                        relation: negative.relation.clone(),
                    });
                }
                if !negative.variables().is_empty() {
                    return Err(LowerError::NonGroundNegation {
                        relation: negative.relation.clone(),
                    });
                }
            }
            done.push(current);
            continue;
        };
        let goal_atom = current.positives[index].clone();
        for rule in program.rules() {
            if rule.head.relation != goal_atom.relation {
                continue;
            }
            *counter += 1;
            let suffix = format!("__u{counter}");
            let head = rename_atom(&rule.head, &suffix);
            let body: Vec<Atom> = rule.body.iter().map(|a| rename_atom(a, &suffix)).collect();
            let Some(subst) = unify(&head.args, &goal_atom.args) else {
                continue;
            };
            let mut positives: Vec<Atom> = Vec::new();
            for (i, atom) in current.positives.iter().enumerate() {
                if i != index {
                    positives.push(apply(atom, &subst));
                }
            }
            positives.extend(body.iter().map(|a| apply(a, &subst)));
            let negatives = current.negatives.iter().map(|a| apply(a, &subst)).collect();
            if done.len() + worklist.len() >= MAX_CONJUNCTS {
                return Err(LowerError::TooManyConjuncts {
                    limit: MAX_CONJUNCTS,
                });
            }
            worklist.push(Conjunct {
                positives,
                negatives,
                unfolded: true,
            });
        }
    }
    Ok(done)
}

/// Renames every variable of an atom with a fresh suffix.
fn rename_atom(atom: &Atom, suffix: &str) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(format!("{v}{suffix}")),
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect(),
    }
}

/// Unifies two argument vectors (assumed disjoint variable namespaces),
/// returning the substitution, or `None` on a constant clash.
fn unify(left: &[Term], right: &[Term]) -> Option<BTreeMap<String, Term>> {
    debug_assert_eq!(left.len(), right.len(), "arity checked by analysis");
    let mut subst: BTreeMap<String, Term> = BTreeMap::new();
    for (l, r) in left.iter().zip(right) {
        let l = resolve(l.clone(), &subst);
        let r = resolve(r.clone(), &subst);
        match (l, r) {
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    return None;
                }
            }
            (Term::Var(v), other) => {
                if other != Term::Var(v.clone()) {
                    subst.insert(v, other);
                }
            }
            (other, Term::Var(v)) => {
                subst.insert(v, other);
            }
        }
    }
    Some(subst)
}

/// Follows substitution chains to the representative term.
fn resolve(mut term: Term, subst: &BTreeMap<String, Term>) -> Term {
    while let Term::Var(v) = &term {
        match subst.get(v) {
            Some(next) => term = next.clone(),
            None => break,
        }
    }
    term
}

/// Applies a substitution to every argument of an atom.
fn apply(atom: &Atom, subst: &BTreeMap<String, Term>) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom
            .args
            .iter()
            .map(|t| resolve(t.clone(), subst))
            .collect(),
    }
}

fn push_unique(atoms: &mut Vec<Atom>, atom: Atom) {
    if !atoms.contains(&atom) {
        atoms.push(atom);
    }
}

/// Expands a flattened disjunct list into signed inclusion–exclusion terms,
/// including the ground-negation expansion of each combined conjunction.
fn inclusion_exclusion(disjuncts: &[Conjunct]) -> Result<Vec<SignedTerm>, LowerError> {
    let k = disjuncts.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    if k > MAX_TERMS.ilog2() as usize {
        return Err(LowerError::TooManyTerms { limit: MAX_TERMS });
    }
    let mut terms: Vec<SignedTerm> = Vec::new();
    for mask in 1u64..(1u64 << k) {
        let chosen: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
        let base_sign: i32 = if chosen.len() % 2 == 1 { 1 } else { -1 };
        let rename_apart = chosen.len() > 1;
        let mut positives: Vec<Atom> = Vec::new();
        let mut negatives: Vec<Atom> = Vec::new();
        for &i in &chosen {
            let suffix = format!("__d{i}");
            for atom in &disjuncts[i].positives {
                let atom = if rename_apart {
                    rename_atom(atom, &suffix)
                } else {
                    atom.clone()
                };
                push_unique(&mut positives, atom);
            }
            for atom in &disjuncts[i].negatives {
                // Ground (checked during unfolding): renaming is a no-op.
                push_unique(&mut negatives, atom.clone());
            }
        }
        // A ground atom both asserted and negated makes the term
        // unsatisfiable: it contributes probability 0 and is dropped.
        if negatives.iter().any(|n| positives.contains(n)) {
            continue;
        }
        let m = negatives.len();
        if m >= MAX_TERMS.ilog2() as usize || terms.len() + (1usize << m) > MAX_TERMS {
            return Err(LowerError::TooManyTerms { limit: MAX_TERMS });
        }
        for nmask in 0u64..(1u64 << m) {
            let picked = nmask.count_ones();
            let sign = base_sign * if picked % 2 == 0 { 1 } else { -1 };
            let mut atoms = positives.clone();
            for (j, negative) in negatives.iter().enumerate() {
                if nmask & (1 << j) != 0 {
                    push_unique(&mut atoms, negative.clone());
                }
            }
            let query = if atoms.is_empty() {
                None
            } else {
                Some(ConjunctiveQuery::boolean(atoms))
            };
            terms.push(SignedTerm { sign, query });
        }
    }
    Ok(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Lowers the single goal of `src`, with all rules of `src` in scope.
    fn lower(src: &str) -> Result<LoweredGoal, LowerError> {
        let program = parse_program(src).unwrap();
        let rules = program.rules();
        let queries = program.queries();
        assert_eq!(queries.len(), 1, "test source must have one goal");
        lower_goal(&queries[0].goal, &rules)
    }

    fn queries_of(goal: &LoweredGoal) -> Vec<String> {
        goal.terms
            .iter()
            .map(|t| {
                let body = t
                    .query
                    .as_ref()
                    .map_or("true".to_string(), |q| q.to_string());
                format!("{:+} {body}", t.sign)
            })
            .collect()
    }

    #[test]
    fn plain_conjunction_lowers_to_one_positive_term() {
        let goal = lower("?- R(x), S(x, y).").unwrap();
        assert_eq!(queries_of(&goal), vec!["+1 R(x), S(x, y)"]);
        assert!(!goal.used_rules);
        assert!(!goal.has_negation);
    }

    #[test]
    fn union_expands_by_inclusion_exclusion_with_renaming() {
        let goal = lower("?- R(x); S(x).").unwrap();
        assert_eq!(
            queries_of(&goal),
            vec!["+1 R(x)", "+1 S(x)", "-1 R(x__d0), S(x__d1)"]
        );
    }

    #[test]
    fn rules_unfold_with_unification() {
        let goal = lower("Hop(x, z) :- R(x, y), R(y, z).\n?- Hop(\"a\", z).").unwrap();
        assert_eq!(goal.disjunct_count, 1);
        assert!(goal.used_rules);
        let only = goal.terms[0].query.as_ref().unwrap();
        assert_eq!(only.atoms.len(), 2);
        assert_eq!(only.atoms[0].args[0], Term::Const("a".to_string()));
    }

    #[test]
    fn multiple_rules_become_a_union() {
        let goal = lower(
            "P(x) :- R(x).\n\
             P(x) :- S(x).\n\
             ?- P(\"a\").",
        )
        .unwrap();
        assert_eq!(goal.disjunct_count, 2);
        assert_eq!(goal.terms.len(), 3);
    }

    #[test]
    fn head_constants_select_rules_and_bind_goal_variables() {
        let goal = lower(
            "Special(\"a\") :- R(\"a\").\n\
             ?- Special(x).",
        )
        .unwrap();
        assert_eq!(queries_of(&goal), vec!["+1 R(\"a\")"]);
        // A clashing constant drops the rule entirely.
        let empty = lower(
            "Special(\"a\") :- R(\"a\").\n\
             ?- Special(\"b\").",
        )
        .unwrap();
        assert!(empty.terms.is_empty());
    }

    #[test]
    fn nested_rules_unfold_transitively() {
        let goal = lower(
            "Mid(x) :- R(x).\n\
             Top(x) :- Mid(x), S(x).\n\
             ?- Top(y).",
        )
        .unwrap();
        assert_eq!(goal.disjunct_count, 1);
        let only = goal.terms[0].query.as_ref().unwrap();
        let relations: Vec<&str> = only.atoms.iter().map(|a| a.relation.as_str()).collect();
        assert_eq!(relations, vec!["S", "R"]);
    }

    #[test]
    fn recursive_programs_are_rejected() {
        let error = lower(
            "Reach(x, y) :- Edge(x, y).\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z).\n\
             ?- Reach(\"a\", \"b\").",
        )
        .unwrap_err();
        assert!(matches!(error, LowerError::RecursiveProgram));
    }

    #[test]
    fn ground_negation_expands_with_alternating_signs() {
        let goal = lower("?- R(x), !S(\"b\").").unwrap();
        assert!(goal.has_negation);
        assert_eq!(queries_of(&goal), vec!["+1 R(x)", "-1 R(x), S(\"b\")"]);
    }

    #[test]
    fn purely_negative_goals_use_the_tautology_term() {
        let goal = lower("?- !S(\"b\").").unwrap();
        assert_eq!(queries_of(&goal), vec!["+1 true", "-1 S(\"b\")"]);
    }

    #[test]
    fn non_ground_negation_is_rejected() {
        let error = lower("?- R(x), !S(x).").unwrap_err();
        assert!(matches!(error, LowerError::NonGroundNegation { .. }));
    }

    #[test]
    fn negated_intensional_atoms_are_rejected() {
        let error = lower(
            "P(x) :- R(x).\n\
             ?- S(y), !P(\"a\").",
        )
        .unwrap_err();
        assert!(matches!(error, LowerError::NegatedIntensional { .. }));
    }

    #[test]
    fn contradictory_terms_are_dropped() {
        // R("a") ∨ (S("c") ∧ ¬R("a")): the conjoined term R("a") ∧ S("c") ∧
        // ¬R("a") is unsatisfiable, so only its negation-free expansion
        // remains.
        let goal = lower("?- R(\"a\"); S(\"c\"), !R(\"a\").").unwrap();
        for rendered in queries_of(&goal) {
            assert!(
                !(rendered.contains("R(\"a\")")
                    && rendered.contains("S(\"c\")")
                    && rendered.starts_with("-1")
                    && rendered.matches("R(\"a\")").count() > 1),
                "unsatisfiable term survived: {rendered}"
            );
        }
        // Sanity: 2 disjuncts → 3 subsets; negation doubles the second
        // disjunct's subsets, minus dropped contradictions.
        assert_eq!(goal.disjunct_count, 2);
    }

    #[test]
    fn expansion_caps_are_enforced() {
        let wide: Vec<String> = (0..12).map(|i| format!("R{i}(x{i})")).collect();
        let source = format!("?- {}.", wide.join("; "));
        let error = lower(&source).unwrap_err();
        assert!(matches!(error, LowerError::TooManyTerms { .. }));
    }

    #[test]
    fn combine_applies_signs_and_tautology() {
        let goal = lower("?- !S(\"b\").").unwrap();
        let p = goal.combine(|_q| Ok::<f64, ()>(0.3)).unwrap();
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn program_instance_builds_a_tid_with_override_semantics() {
        let program = parse_program(
            "0.5 :: R(\"a\", \"b\").\n\
             0.25 :: S(\"b\").\n\
             0.75 :: S(\"b\").",
        )
        .unwrap();
        let tid = program_instance(&program).unwrap();
        assert_eq!(tid.instance().fact_count(), 2);
        let probabilities: Vec<f64> = tid
            .instance()
            .facts()
            .map(|(id, _)| tid.probability(id))
            .collect();
        assert!(probabilities.contains(&0.5));
        assert!(probabilities.contains(&0.75));
    }
}
