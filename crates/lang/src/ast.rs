//! The spanned abstract syntax tree of the stuc surface language, and its
//! pretty-printer.
//!
//! Every node carries the [`Span`] it was parsed from, so semantic errors
//! (safety violations, unsupported constructs) point at source positions
//! just like parse errors do. The `Display` implementations print a
//! *canonical* rendering — one space after commas, `?-` before every goal,
//! a trailing `.` after every statement — chosen so that printing is
//! idempotent under re-parsing: `print ∘ parse ∘ print = print` (the
//! round-trip property tests in the crate pin this down).

use crate::lexer::Span;
use std::fmt;

/// A term of an atom: a variable or a constant.
///
/// Following the workspace-wide convention of [`stuc_query::cq`], a bare
/// identifier is a **variable** and a quoted string is a **constant**;
/// numeric literals in term position are constants too (their lexeme is the
/// constant name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermAst {
    /// A variable, named by a bare identifier.
    Var(String),
    /// A constant, written quoted (or as a number).
    Const(String),
}

impl TermAst {
    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermAst::Var(name) => Some(name),
            TermAst::Const(_) => None,
        }
    }
}

impl fmt::Display for TermAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermAst::Var(name) => f.write_str(name),
            TermAst::Const(name) => write!(f, "\"{name}\""),
        }
    }
}

/// A term together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTerm {
    /// The term.
    pub term: TermAst,
    /// Where it was parsed from.
    pub span: Span,
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomAst {
    /// The relation name.
    pub relation: String,
    /// The argument terms.
    pub args: Vec<SpannedTerm>,
    /// The span of the whole atom.
    pub span: Span,
}

impl AtomAst {
    /// The variables of the atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for arg in &self.args {
            if let Some(name) = arg.term.as_var() {
                if !seen.contains(&name) {
                    seen.push(name);
                }
            }
        }
        seen
    }

    /// True when every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|a| a.term.as_var().is_none())
    }
}

impl fmt::Display for AtomAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", arg.term)?;
        }
        f.write_str(")")
    }
}

/// A literal: an atom, possibly negated (`!R(…)` / `not R(…)`).
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralAst {
    /// True for a negated occurrence.
    pub negated: bool,
    /// The underlying atom.
    pub atom: AtomAst,
    /// The span of the literal (including the negation marker).
    pub span: Span,
}

impl fmt::Display for LiteralAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            f.write_str("!")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A conjunction of literals, `L₁, …, Lₙ`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctAst {
    /// The literals, in source order.
    pub literals: Vec<LiteralAst>,
    /// The span of the whole conjunction.
    pub span: Span,
}

impl ConjunctAst {
    /// The positive literals' atoms.
    pub fn positive(&self) -> impl Iterator<Item = &AtomAst> {
        self.literals.iter().filter(|l| !l.negated).map(|l| &l.atom)
    }

    /// The negated literals.
    pub fn negated(&self) -> impl Iterator<Item = &LiteralAst> {
        self.literals.iter().filter(|l| l.negated)
    }
}

impl fmt::Display for ConjunctAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, literal) in self.literals.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{literal}")?;
        }
        Ok(())
    }
}

/// A union (disjunction) of conjunctions, `C₁; …; Cₖ` — a UCQ body.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionAst {
    /// The disjuncts, in source order. Each disjunct is independently
    /// existentially quantified (UCQ semantics).
    pub disjuncts: Vec<ConjunctAst>,
    /// The span of the whole union.
    pub span: Span,
}

impl fmt::Display for UnionAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, disjunct) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{disjunct}")?;
        }
        Ok(())
    }
}

/// A rule `Head(…) :- Body₁(…), …, Bodyₙ(…).`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleAst {
    /// The head atom (the derived fact pattern).
    pub head: AtomAst,
    /// The body conjunction.
    pub body: ConjunctAst,
    /// The span of the whole rule.
    pub span: Span,
}

impl fmt::Display for RuleAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- {}.", self.head, self.body)
    }
}

/// A probabilistic fact `p :: R(c₁, …, cₖ).`
#[derive(Debug, Clone, PartialEq)]
pub struct FactAst {
    /// The probability of the fact.
    pub probability: f64,
    /// The span of the probability literal.
    pub probability_span: Span,
    /// The ground atom.
    pub atom: AtomAst,
    /// The span of the whole statement.
    pub span: Span,
}

impl fmt::Display for FactAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :: {}.", self.probability, self.atom)
    }
}

/// A query goal `?- C₁; …; Cₖ.`
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// The goal body: a union of conjunctions, evaluated as a Boolean UCQ
    /// (every variable is existentially quantified).
    pub goal: UnionAst,
    /// The span of the whole statement.
    pub span: Span,
}

impl fmt::Display for QueryAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- {}.", self.goal)
    }
}

/// One statement of a program.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementAst {
    /// A probabilistic fact.
    Fact(FactAst),
    /// A rule.
    Rule(RuleAst),
    /// A query goal.
    Query(QueryAst),
}

impl StatementAst {
    /// The span of the statement.
    pub fn span(&self) -> Span {
        match self {
            StatementAst::Fact(fact) => fact.span,
            StatementAst::Rule(rule) => rule.span,
            StatementAst::Query(query) => query.span,
        }
    }
}

impl fmt::Display for StatementAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementAst::Fact(fact) => write!(f, "{fact}"),
            StatementAst::Rule(rule) => write!(f, "{rule}"),
            StatementAst::Query(query) => write!(f, "{query}"),
        }
    }
}

/// A whole program: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramAst {
    /// The statements, in source order.
    pub statements: Vec<StatementAst>,
}

impl ProgramAst {
    /// The fact statements, in order.
    pub fn facts(&self) -> impl Iterator<Item = &FactAst> {
        self.statements.iter().filter_map(|s| match s {
            StatementAst::Fact(fact) => Some(fact),
            _ => None,
        })
    }

    /// The rule statements, in order.
    pub fn rules(&self) -> Vec<&RuleAst> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                StatementAst::Rule(rule) => Some(rule),
                _ => None,
            })
            .collect()
    }

    /// The query goals, in order.
    pub fn queries(&self) -> Vec<&QueryAst> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                StatementAst::Query(query) => Some(query),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for ProgramAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, statement) in self.statements.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{statement}")?;
        }
        Ok(())
    }
}
