//! The cost model that routes a lowered goal to an evaluator.
//!
//! Two routes exist downstream:
//!
//! * the **safe-plan** evaluator — polynomial-time extensional rules,
//!   applicable only when every inclusion–exclusion term is a hierarchical,
//!   self-join-free CQ (the Dalvi–Suciu dichotomy frontier, which the
//!   source paper's structural story generalises away from);
//! * **lineage → compiled circuit** — always applicable, cost governed by
//!   the match count and the width of the compiled representation.
//!
//! The model scores both from cheap syntactic facts (atom counts) and
//! per-relation fact fan-in gathered from the instance, then picks the
//! cheaper *eligible* route. It deliberately stays coarse: its job is to
//! pick safe plans when they apply and not to regress badly otherwise,
//! and to explain its choice in the evaluation report.

use crate::lower::LoweredGoal;
use std::collections::BTreeMap;
use stuc_data::instance::Instance;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::safe::is_hierarchical;

/// Per-relation fact counts ("fan-in") of the instance under query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationStats {
    counts: BTreeMap<String, usize>,
}

impl RelationStats {
    /// Collects fact counts per relation name from a plain instance.
    pub fn from_instance(instance: &Instance) -> Self {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (_, fact) in instance.facts() {
            *counts
                .entry(instance.relation_name(fact.relation).to_string())
                .or_insert(0) += 1;
        }
        RelationStats { counts }
    }

    /// Builds stats from explicit `(relation, count)` pairs.
    pub fn from_counts(pairs: impl IntoIterator<Item = (String, usize)>) -> Self {
        RelationStats {
            counts: pairs.into_iter().collect(),
        }
    }

    /// The number of facts of a relation (0 when absent).
    pub fn fan_in(&self, relation: &str) -> usize {
        self.counts.get(relation).copied().unwrap_or(0)
    }

    /// Total fact count across all relations.
    pub fn total_facts(&self) -> usize {
        self.counts.values().sum()
    }
}

/// The evaluator a goal is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The extensional safe-plan evaluator.
    SafePlan,
    /// Lineage construction followed by circuit compilation.
    Circuit,
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Route::SafePlan => f.write_str("safe-plan"),
            Route::Circuit => f.write_str("circuit"),
        }
    }
}

/// The routing decision together with the evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// The chosen route.
    pub route: Route,
    /// True when every term is hierarchical and self-join-free, i.e. the
    /// safe-plan route was structurally available at all.
    pub safe_eligible: bool,
    /// Estimated cost of the safe-plan route (meaningless when ineligible).
    pub safe_cost: f64,
    /// Estimated cost of the lineage/circuit route.
    pub circuit_cost: f64,
    /// True when a compiled circuit for this goal was already cached, which
    /// discounts the circuit route.
    pub cached_lineage: bool,
}

impl RouteDecision {
    /// A deterministic, float-free one-line explanation of the decision
    /// (golden-output friendly: no raw cost numbers, whose last bits vary
    /// across libm implementations).
    pub fn summary(&self) -> String {
        match (self.route, self.safe_eligible) {
            (Route::SafePlan, _) => {
                "route=safe-plan (all terms hierarchical and self-join-free, cheaper than compilation)"
                    .to_string()
            }
            (Route::Circuit, false) => {
                "route=circuit (some term is non-hierarchical or has self-joins; safe plan inapplicable)"
                    .to_string()
            }
            (Route::Circuit, true) if self.cached_lineage => {
                "route=circuit (safe plan applicable, but a compiled circuit is already cached)"
                    .to_string()
            }
            (Route::Circuit, true) => {
                "route=circuit (safe plan applicable but costed higher than compilation)".to_string()
            }
        }
    }
}

/// Cap on the estimated match count, to keep products finite.
const MATCH_ESTIMATE_CAP: f64 = 1e12;

/// The cost model. Tunable constants are public fields so experiments can
/// re-weight the routes without recompiling call sites.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per-gate cost factor of the compiled-circuit route.
    pub gate_factor: f64,
    /// Multiplicative discount applied to the circuit route when a
    /// compiled circuit is already cached.
    pub cached_discount: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gate_factor: 3.0,
            cached_discount: 0.1,
        }
    }
}

impl CostModel {
    /// Estimated cost of evaluating one CQ term with the safe-plan rules:
    /// each atom scans its relation and participates in sort/aggregate
    /// passes, so `Σᵢ fᵢ · (1 + ln(1 + fᵢ))` over the atoms' fan-ins.
    pub fn safe_cost(&self, query: &ConjunctiveQuery, stats: &RelationStats) -> f64 {
        query
            .atoms
            .iter()
            .map(|atom| {
                let f = stats.fan_in(&atom.relation) as f64;
                f * (1.0 + (1.0 + f).ln())
            })
            .sum()
    }

    /// Estimated cost of the lineage/circuit route for one CQ term:
    /// lineage construction touches every candidate fact, and compilation
    /// plus weighted counting is linear in the circuit size, which grows
    /// with the (capped) estimated match count.
    pub fn circuit_cost(&self, query: &ConjunctiveQuery, stats: &RelationStats) -> f64 {
        let scan: f64 = query
            .atoms
            .iter()
            .map(|atom| stats.fan_in(&atom.relation) as f64)
            .sum();
        let mut matches: f64 = 1.0;
        for atom in &query.atoms {
            matches =
                (matches * (stats.fan_in(&atom.relation).max(1) as f64)).min(MATCH_ESTIMATE_CAP);
        }
        scan + self.gate_factor * matches
    }

    /// Scores both routes for a lowered goal and picks the cheaper
    /// eligible one. `cached_lineage` reports whether the engine already
    /// holds a compiled circuit for this goal.
    pub fn choose(
        &self,
        goal: &LoweredGoal,
        stats: &RelationStats,
        cached_lineage: bool,
    ) -> RouteDecision {
        let mut safe_eligible = true;
        let mut safe_cost = 0.0;
        let mut circuit_cost = 0.0;
        for term in &goal.terms {
            let Some(query) = &term.query else {
                continue; // The tautology costs nothing on either route.
            };
            safe_eligible &= query.is_self_join_free() && is_hierarchical(query);
            safe_cost += self.safe_cost(query, stats);
            circuit_cost += self.circuit_cost(query, stats);
        }
        if cached_lineage {
            circuit_cost *= self.cached_discount;
        }
        let route = if safe_eligible && safe_cost <= circuit_cost {
            Route::SafePlan
        } else {
            Route::Circuit
        };
        RouteDecision {
            route,
            safe_eligible,
            safe_cost,
            circuit_cost,
            cached_lineage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_goal;
    use crate::parser::parse_query;

    fn lowered(src: &str) -> LoweredGoal {
        let query = parse_query(src).unwrap();
        lower_goal(&query.goal, &[]).unwrap()
    }

    fn stats(pairs: &[(&str, usize)]) -> RelationStats {
        RelationStats::from_counts(pairs.iter().map(|(r, c)| (r.to_string(), *c)))
    }

    #[test]
    fn hierarchical_queries_route_to_the_safe_plan() {
        let goal = lowered("?- R(x), S(x, y).");
        let decision = CostModel::default().choose(&goal, &stats(&[("R", 100), ("S", 100)]), false);
        assert!(decision.safe_eligible);
        assert_eq!(decision.route, Route::SafePlan);
        assert!(decision.summary().contains("safe-plan"));
    }

    #[test]
    fn the_hard_query_routes_to_the_circuit() {
        // R(x), S(x, y), T(y) — the canonical non-hierarchical query.
        let goal = lowered("?- R(x), S(x, y), T(y).");
        let decision =
            CostModel::default().choose(&goal, &stats(&[("R", 10), ("S", 10), ("T", 10)]), false);
        assert!(!decision.safe_eligible);
        assert_eq!(decision.route, Route::Circuit);
        assert!(decision.summary().contains("inapplicable"));
    }

    #[test]
    fn self_joins_disqualify_the_safe_plan() {
        let goal = lowered("?- R(x, y), R(y, z).");
        let decision = CostModel::default().choose(&goal, &stats(&[("R", 10)]), false);
        assert!(!decision.safe_eligible);
        assert_eq!(decision.route, Route::Circuit);
    }

    #[test]
    fn union_terms_are_scored_jointly() {
        // The union's cross term R(x__d0), S(x__d1) stays hierarchical
        // (variables in disjoint atom sets), so the goal is still safe.
        let goal = lowered("?- R(x); S(x).");
        let decision = CostModel::default().choose(&goal, &stats(&[("R", 5), ("S", 5)]), false);
        assert!(decision.safe_eligible);
        assert_eq!(decision.route, Route::SafePlan);
    }

    #[test]
    fn cached_lineage_discounts_the_circuit_route() {
        let goal = lowered("?- R(x), S(x, y).");
        let model = CostModel::default();
        let s = stats(&[("R", 3), ("S", 3)]);
        let cold = model.choose(&goal, &s, false);
        let warm = model.choose(&goal, &s, true);
        assert!(warm.circuit_cost < cold.circuit_cost);
        assert!(warm.summary().contains("cached") || warm.route == Route::SafePlan);
    }

    #[test]
    fn match_estimates_are_capped() {
        let goal = lowered("?- R(x), S(x, y).");
        let decision = CostModel::default().choose(
            &goal,
            &stats(&[("R", 10_000_000), ("S", 10_000_000)]),
            false,
        );
        assert!(decision.circuit_cost.is_finite());
    }

    #[test]
    fn zero_fan_in_relations_cost_nothing_on_the_safe_route() {
        let goal = lowered("?- Missing(x).");
        let model = CostModel::default();
        let decision = model.choose(&goal, &stats(&[]), false);
        assert_eq!(decision.safe_cost, 0.0);
        assert_eq!(decision.route, Route::SafePlan);
    }
}
