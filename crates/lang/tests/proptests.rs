//! Property tests for the front-end:
//!
//! * **round-trip** — pretty-printing a random program and re-parsing it
//!   reproduces the same canonical rendering (`print ∘ parse ∘ print =
//!   print`), and parsing is total on printed output;
//! * **robustness** — the lexer and parser never panic, on arbitrary bytes
//!   and on adversarial near-miss token soup alike; failures are always
//!   spanned [`ParseError`]s.

use proptest::prelude::*;
use stuc_lang::ast::{
    AtomAst, ConjunctAst, FactAst, LiteralAst, ProgramAst, QueryAst, RuleAst, SpannedTerm,
    StatementAst, TermAst, UnionAst,
};
use stuc_lang::lexer::Span;
use stuc_lang::parser::parse_program;

/// A tiny deterministic generator for random ASTs, seeded per case.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

fn span() -> Span {
    Span::point(0, 1, 1)
}

const RELATIONS: &[&str] = &["R", "S", "T", "Edge", "Claim_2", "_aux"];
const VARIABLES: &[&str] = &["x", "y", "z", "w1", "_v"];
const CONSTANTS: &[&str] = &["a", "b", "paris", "n 1", ""];

fn term(g: &mut Gen) -> SpannedTerm {
    let term = if g.below(2) == 0 {
        TermAst::Var(VARIABLES[g.below(VARIABLES.len() as u64) as usize].to_string())
    } else {
        TermAst::Const(CONSTANTS[g.below(CONSTANTS.len() as u64) as usize].to_string())
    };
    SpannedTerm { term, span: span() }
}

fn atom(g: &mut Gen) -> AtomAst {
    let arity = g.below(4) as usize;
    AtomAst {
        relation: RELATIONS[g.below(RELATIONS.len() as u64) as usize].to_string(),
        args: (0..arity).map(|_| term(g)).collect(),
        span: span(),
    }
}

fn conjunct(g: &mut Gen, allow_negation: bool) -> ConjunctAst {
    let n = 1 + g.below(3) as usize;
    ConjunctAst {
        literals: (0..n)
            .map(|_| LiteralAst {
                negated: allow_negation && g.below(4) == 0,
                atom: atom(g),
                span: span(),
            })
            .collect(),
        span: span(),
    }
}

fn statement(g: &mut Gen) -> StatementAst {
    match g.below(3) {
        0 => StatementAst::Fact(FactAst {
            probability: g.below(101) as f64 / 100.0,
            probability_span: span(),
            atom: atom(g),
            span: span(),
        }),
        1 => StatementAst::Rule(RuleAst {
            head: atom(g),
            body: conjunct(g, false),
            span: span(),
        }),
        _ => {
            let k = 1 + g.below(3) as usize;
            StatementAst::Query(QueryAst {
                goal: UnionAst {
                    disjuncts: (0..k).map(|_| conjunct(g, true)).collect(),
                    span: span(),
                },
                span: span(),
            })
        }
    }
}

fn program(g: &mut Gen) -> ProgramAst {
    let n = g.below(6) as usize;
    ProgramAst {
        statements: (0..n).map(|_| statement(g)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printing_then_parsing_is_the_identity_on_renderings(seed in 0u64..u64::MAX) {
        let original = program(&mut Gen::new(seed));
        let printed = original.to_string();
        let reparsed = match parse_program(&printed) {
            Ok(p) => p,
            Err(error) => {
                return Err(TestCaseError::fail(format!(
                    "printed program failed to parse: {error}\nsource:\n{printed}"
                )));
            }
        };
        prop_assert_eq!(&printed, &reparsed.to_string());
        // The statement shapes survive too, not just the text.
        prop_assert_eq!(original.statements.len(), reparsed.statements.len());
        for (a, b) in original.statements.iter().zip(&reparsed.statements) {
            let same_shape = matches!(
                (a, b),
                (StatementAst::Fact(_), StatementAst::Fact(_))
                    | (StatementAst::Rule(_), StatementAst::Rule(_))
                    | (StatementAst::Query(_), StatementAst::Query(_))
            );
            prop_assert!(same_shape, "statement kind changed across the round-trip");
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in collection::vec(0u8..255, 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        match parse_program(&text) {
            Ok(_) => {}
            Err(error) => {
                prop_assert!(error.span.line >= 1);
                prop_assert!(error.span.col >= 1);
                prop_assert!(!error.expected.is_empty() || !error.found.is_empty());
            }
        }
    }

    #[test]
    fn token_soup_never_panics_the_parser(picks in collection::vec(0usize..18, 0..48)) {
        // Near-miss fragments: individually valid tokens glued randomly, the
        // adversarial inputs a byte fuzzer rarely stumbles into.
        const FRAGMENTS: &[&str] = &[
            "R", "(", ")", ",", ";", ".", "!", ":-", "::", "?-", "x",
            "\"a\"", "0.5", "not", "%c\n", "'", ":", "1.",
        ];
        let text: String = picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        match parse_program(&text) {
            Ok(_) => {}
            Err(error) => {
                prop_assert!(error.span.line >= 1);
                prop_assert!(!error.to_string().is_empty());
            }
        }
    }
}
