//! Cooperative evaluation budgets: a wall-clock deadline plus a shared
//! cancellation flag, installed per thread and polled from long loops.
//!
//! The budget is deliberately *ambient* (thread-local) rather than threaded
//! through every function signature: deep loops — min-fill ordering, sweep
//! plans, DPLL branching, the chase — poll [`check`] or [`tripped`] without
//! their callers changing shape. Worker threads that fan out on behalf of a
//! budgeted caller re-install a clone obtained from [`current`].

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted evaluation stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// The wall-clock deadline passed; `stage` names the loop that noticed.
    DeadlineExceeded {
        /// Checkpoint that observed the expiry (e.g. `"circuit sweep"`).
        stage: &'static str,
    },
    /// The shared cancel flag was raised; `stage` names the loop that noticed.
    Cancelled {
        /// Checkpoint that observed the cancellation.
        stage: &'static str,
    },
}

impl BudgetError {
    /// The checkpoint that tripped, for error messages and metrics labels.
    pub fn stage(&self) -> &'static str {
        match self {
            BudgetError::DeadlineExceeded { stage } | BudgetError::Cancelled { stage } => stage,
        }
    }
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::DeadlineExceeded { stage } => {
                write!(f, "evaluation deadline exceeded during {stage}")
            }
            BudgetError::Cancelled { stage } => {
                write!(f, "evaluation cancelled during {stage}")
            }
        }
    }
}

impl Error for BudgetError {}

/// Shared cancellation flag: clone freely, raise once from any thread.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Fresh, un-raised handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every budget built from this handle trips on its
    /// next poll. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelHandle::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cooperative evaluation budget: an optional deadline and an optional
/// cancellation flag. `Clone` is cheap (an `Instant` and an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct EvalBudget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl EvalBudget {
    /// A budget that never trips. Installing it still exercises the
    /// checkpoint machinery (useful for measuring overhead).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget expiring `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// Budget expiring at an absolute instant — used by the server, which
    /// anchors deadlines at accept time so queueing counts against them.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        EvalBudget {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// Attaches a cancellation handle; the budget trips once it is raised.
    pub fn cancelled_by(mut self, handle: &CancelHandle) -> Self {
        self.cancel = Some(Arc::clone(&handle.flag));
        self
    }

    /// Whether this budget can ever trip.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline (`None` when undeadlined, zero when
    /// already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Polls the budget directly (without going through the thread-local
    /// scope). Cancellation is reported ahead of deadline expiry so a
    /// disconnected client reads as `Cancelled`, not `DeadlineExceeded`.
    pub fn check(&self, stage: &'static str) -> Result<(), BudgetError> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Acquire) {
                return Err(BudgetError::Cancelled { stage });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetError::DeadlineExceeded { stage });
            }
        }
        Ok(())
    }
}

/// What a budget scope observed: how many checkpoints polled the budget and
/// how much wall time those polls cost in total. Feeds the
/// `stuc_engine_budget_check_seconds` histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetStats {
    /// Number of checkpoint polls that reached the installed budget.
    pub checks: u64,
    /// Total wall time spent inside those polls.
    pub spent: Duration,
}

struct ScopeState {
    budget: EvalBudget,
    checks: u64,
    spent: Duration,
}

thread_local! {
    static CURRENT: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Restores the previous scope even if `f` panics, so a caught panic cannot
/// leak a stale budget into the worker's next request.
struct ScopeGuard {
    previous: Option<ScopeState>,
    taken: bool,
}

impl ScopeGuard {
    fn install(budget: EvalBudget) -> Self {
        let previous = CURRENT.with(|c| {
            c.borrow_mut().replace(ScopeState {
                budget,
                checks: 0,
                spent: Duration::ZERO,
            })
        });
        ScopeGuard {
            previous,
            taken: false,
        }
    }

    fn finish(mut self) -> BudgetStats {
        self.taken = true;
        let state = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.previous.take()));
        match state {
            Some(s) => BudgetStats {
                checks: s.checks,
                spent: s.spent,
            },
            None => BudgetStats::default(),
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.taken {
            CURRENT.with(|c| {
                *c.borrow_mut() = self.previous.take();
            });
        }
    }
}

/// Runs `f` with `budget` installed as the thread's ambient budget.
/// Scopes nest: the previous budget is restored afterwards (also on panic).
pub fn scope<T>(budget: EvalBudget, f: impl FnOnce() -> T) -> T {
    let (value, _) = scope_with_stats(budget, f);
    value
}

/// Like [`scope`], additionally returning how many checkpoints polled the
/// budget and the wall time those polls cost.
pub fn scope_with_stats<T>(budget: EvalBudget, f: impl FnOnce() -> T) -> (T, BudgetStats) {
    let guard = ScopeGuard::install(budget);
    let value = f();
    let stats = guard.finish();
    (value, stats)
}

/// How often a limited-budget poll is *itself* timed for the overhead
/// histogram: 1 in 16, scaled back up. Timing every poll would double the
/// clock reads and make the measurement the dominant cost it reports.
const SPENT_SAMPLE_EVERY: u64 = 16;

/// Polls the ambient budget. `Ok(())` when no budget is installed — the
/// fast path is a single thread-local read with no clock access. For a
/// limited budget, overhead accounting is sampled (1 in
/// `SPENT_SAMPLE_EVERY` = 16 polls, scaled), so a poll normally costs one
/// clock read, not three.
pub fn check(stage: &'static str) -> Result<(), BudgetError> {
    CURRENT.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return Ok(());
        };
        if !state.budget.is_limited() {
            state.checks += 1;
            return Ok(());
        }
        let sampled = state.checks.is_multiple_of(SPENT_SAMPLE_EVERY);
        let started = sampled.then(Instant::now);
        let verdict = state.budget.check(stage);
        state.checks += 1;
        if let Some(started) = started {
            state.spent += started.elapsed() * SPENT_SAMPLE_EVERY as u32;
        }
        verdict
    })
}

/// Infallible poll for code that degrades rather than errors (e.g. min-fill
/// falls back to identifier order). True once the ambient budget tripped.
pub fn tripped() -> bool {
    check("tripped-poll").is_err()
}

/// Clone of the ambient budget, for re-installing in worker threads that
/// fan out on behalf of a budgeted caller. `None` when no budget is set.
pub fn current() -> Option<EvalBudget> {
    CURRENT.with(|c| c.borrow().as_ref().map(|s| s.budget.clone()))
}

/// Amortises checkpoint polls over hot loops: `tick()` is true once every
/// `interval` calls. Keeps even the thread-local read off the per-iteration
/// path of the tightest loops.
#[derive(Debug)]
pub struct Gate {
    interval: u32,
    count: u32,
}

impl Gate {
    /// A gate whose `tick` fires every `interval` calls (first fire on the
    /// `interval`-th call). `interval` of 0 is treated as 1.
    pub fn every(interval: u32) -> Self {
        Gate {
            interval: interval.max(1),
            count: 0,
        }
    }

    /// Advances the gate; true when a checkpoint poll is due.
    pub fn tick(&mut self) -> bool {
        self.count += 1;
        if self.count >= self.interval {
            self.count = 0;
            true
        } else {
            false
        }
    }

    /// Convenience: `tick` then [`check`] when due.
    pub fn check(&mut self, stage: &'static str) -> Result<(), BudgetError> {
        if self.tick() {
            check(stage)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_check_is_ok() {
        assert_eq!(check("nowhere"), Ok(()));
        assert!(!tripped());
        assert!(current().is_none());
    }

    #[test]
    fn deadline_trips_and_scope_restores() {
        let budget = EvalBudget::with_deadline(Duration::ZERO);
        let (result, stats) = scope_with_stats(budget, || {
            std::thread::sleep(Duration::from_millis(1));
            check("stage-a")
        });
        assert_eq!(
            result,
            Err(BudgetError::DeadlineExceeded { stage: "stage-a" })
        );
        assert_eq!(stats.checks, 1);
        assert_eq!(check("after"), Ok(()));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let handle = CancelHandle::new();
        handle.cancel();
        let budget = EvalBudget::with_deadline(Duration::ZERO).cancelled_by(&handle);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(
            budget.check("stage-b"),
            Err(BudgetError::Cancelled { stage: "stage-b" })
        );
    }

    #[test]
    fn scopes_nest_and_unwind_on_panic() {
        let outer = EvalBudget::unlimited();
        scope(outer, || {
            let caught = std::panic::catch_unwind(|| {
                scope(EvalBudget::with_deadline(Duration::from_secs(3600)), || {
                    panic!("inner scope panics")
                })
            });
            assert!(caught.is_err());
            // Outer (unlimited) budget must be back in place.
            let ambient = current().expect("outer budget restored");
            assert!(!ambient.is_limited());
        });
        assert!(current().is_none());
    }

    #[test]
    fn gate_fires_on_interval() {
        let mut gate = Gate::every(4);
        let fired: Vec<bool> = (0..8).map(|_| gate.tick()).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn unlimited_scope_counts_checks_without_tripping() {
        let (result, stats) = scope_with_stats(EvalBudget::unlimited(), || {
            for _ in 0..100 {
                check("loop").unwrap();
            }
            42
        });
        assert_eq!(result, 42);
        assert_eq!(stats.checks, 100);
    }
}
