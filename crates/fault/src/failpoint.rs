//! Compile-time-gated named failpoints, in the style of fail-rs but with
//! zero dependencies. A failpoint is a named probe planted at a fault-prone
//! site (cache publish, plan build, serve read, ...). Tests arm it through
//! the process-global registry to panic, sleep, or yield an error string;
//! unarmed probes only bump a hit counter.
//!
//! The whole registry only exists when the `fault-injection` feature is on;
//! the [`failpoint!`](crate::failpoint!) macro expands to nothing otherwise,
//! so production builds carry no probe code.

/// What an armed failpoint does when evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum FailAction {
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    SleepMs(u64),
    /// Yield this error message to the probe site (which maps it into its
    /// own typed error). Ignored at infallible sites.
    Error(String),
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    #[derive(Default)]
    struct Entry {
        action: Option<FailAction>,
        hits: u64,
    }

    fn table() -> &'static Mutex<HashMap<String, Entry>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
        TABLE.get_or_init(Mutex::default)
    }

    fn with_table<T>(f: impl FnOnce(&mut HashMap<String, Entry>) -> T) -> T {
        // Chaos tests arm failpoints to panic while the lock is *not* held;
        // recover from poisoning anyway so one panicking test cannot wedge
        // the registry for the rest of the suite.
        let mut guard = table().lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }

    /// Arms `name` with `action`; replaces any previous action.
    pub fn arm(name: &str, action: FailAction) {
        with_table(|t| t.entry(name.to_owned()).or_default().action = Some(action));
    }

    /// Disarms `name` (hit counter is preserved).
    pub fn disarm(name: &str) {
        with_table(|t| {
            if let Some(entry) = t.get_mut(name) {
                entry.action = None;
            }
        });
    }

    /// Disarms every failpoint.
    pub fn disarm_all() {
        with_table(|t| {
            for entry in t.values_mut() {
                entry.action = None;
            }
        });
    }

    /// Times the probe at `name` was evaluated (armed or not) since process
    /// start. Registers the name on first query.
    pub fn hits(name: &str) -> u64 {
        with_table(|t| t.get(name).map_or(0, |e| e.hits))
    }

    /// Every failpoint name the process has evaluated or armed, sorted.
    pub fn registered() -> Vec<String> {
        let mut names = with_table(|t| t.keys().cloned().collect::<Vec<_>>());
        names.sort();
        names
    }

    /// RAII arming: disarms on drop so a failing assertion cannot leave the
    /// fault armed for later tests.
    pub struct ArmGuard {
        name: String,
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            disarm(&self.name);
        }
    }

    /// Arms `name` and returns a guard that disarms it on drop.
    pub fn arm_guard(name: &str, action: FailAction) -> ArmGuard {
        arm(name, action);
        ArmGuard {
            name: name.to_owned(),
        }
    }

    /// Probe evaluation: bumps the hit counter and applies the armed action.
    /// `Panic` panics here; `SleepMs` sleeps here; `Error` returns its
    /// message for the site to wrap. Called via the [`failpoint!`](crate::failpoint!) macro.
    pub fn eval(name: &'static str) -> Option<String> {
        let action = with_table(|t| {
            let entry = t.entry(name.to_owned()).or_default();
            entry.hits += 1;
            entry.action.clone()
        });
        match action {
            None => None,
            Some(FailAction::Panic) => panic!("failpoint '{name}' armed to panic"),
            Some(FailAction::SleepMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
            Some(FailAction::Error(message)) => Some(message),
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{arm, arm_guard, disarm, disarm_all, eval, hits, registered, ArmGuard};

/// Plants a named failpoint.
///
/// Two forms:
///
/// * `failpoint!("name")` — infallible site. An armed `Panic` panics, an
///   armed `SleepMs` sleeps; an armed `Error` is ignored (the site has no
///   error channel).
/// * `failpoint!("name", |msg| expr)` — fallible site. Additionally, an
///   armed `Error(msg)` makes the enclosing function `return Err(expr)`
///   with the closure applied to the message.
///
/// Both forms expand to nothing unless the *consuming* crate enables its
/// `fault-injection` feature (which must forward to
/// `stuc-fault/fault-injection`).
#[macro_export]
macro_rules! failpoint {
    ($name:literal) => {
        #[cfg(feature = "fault-injection")]
        {
            let _ = $crate::failpoint::eval($name);
        }
    };
    ($name:literal, $wrap:expr) => {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(message) = $crate::failpoint::eval($name) {
                return Err(($wrap)(message));
            }
        }
    };
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_probe_counts_hits() {
        let before = hits("test-unarmed");
        assert_eq!(eval("test-unarmed"), None);
        assert_eq!(hits("test-unarmed"), before + 1);
        assert!(registered().contains(&"test-unarmed".to_owned()));
    }

    #[test]
    fn error_mode_yields_message_and_guard_disarms() {
        {
            let _guard = arm_guard("test-error", FailAction::Error("boom".into()));
            assert_eq!(eval("test-error"), Some("boom".into()));
        }
        assert_eq!(eval("test-error"), None);
    }

    #[test]
    fn panic_mode_panics() {
        let _guard = arm_guard("test-panic", FailAction::Panic);
        let caught = std::panic::catch_unwind(|| eval("test-panic"));
        assert!(caught.is_err());
    }

    #[test]
    fn macro_fallible_form_returns_error() {
        fn site() -> Result<u32, String> {
            failpoint!("test-macro", |m: String| format!("wrapped: {m}"));
            Ok(7)
        }
        assert_eq!(site(), Ok(7));
        let _guard = arm_guard("test-macro", FailAction::Error("injected".into()));
        assert_eq!(site(), Err("wrapped: injected".to_owned()));
    }
}
