//! Fault-tolerance primitives for the stuc engine: cooperative evaluation
//! budgets (wall-clock deadlines plus shared cancellation flags) and
//! compile-time-gated named failpoints for chaos testing.
//!
//! The crate has zero dependencies and two halves:
//!
//! * [`budget`] — an ambient, thread-local [`EvalBudget`] installed with
//!   [`budget::scope`] and polled from long-running loops with
//!   [`budget::check`] (fallible code) or [`budget::tripped`] (infallible
//!   code that degrades instead of erroring). When no budget is installed
//!   the poll is a single thread-local read, so undeadlined evaluation pays
//!   essentially nothing.
//! * [`mod@failpoint`] — a registry of named fault sites that tests arm to
//!   panic, sleep, or return an error. The [`failpoint!`] macro expands to
//!   nothing unless the consuming crate enables its `fault-injection`
//!   feature (which forwards to `stuc-fault/fault-injection`), so release
//!   builds carry no probe code at all.

pub mod budget;
pub mod failpoint;

pub use budget::{BudgetError, BudgetStats, CancelHandle, EvalBudget};
