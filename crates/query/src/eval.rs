//! Conjunctive query evaluation on plain instances.
//!
//! Evaluation is a backtracking homomorphism search: atoms are matched one by
//! one against the facts of the instance, threading a partial assignment of
//! the query variables. This is exponential in the query but polynomial in
//! the data (the usual combined/data complexity split), which is all the
//! possible-world baselines and lineage construction need.

use crate::cq::{Atom, ConjunctiveQuery, Term};
use std::collections::BTreeMap;
use stuc_data::instance::{ConstId, FactId, Instance};

/// A homomorphism from the query variables to instance constants, together
/// with the facts used to match each atom (in atom order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Assignment of query variables to constants.
    pub assignment: BTreeMap<String, ConstId>,
    /// For each atom (in query order), the fact that matched it.
    pub witnesses: Vec<FactId>,
}

/// Returns every homomorphism from the query body into the instance.
///
/// The witnesses record which fact matched each atom, which is exactly what
/// lineage construction needs.
pub fn all_matches(instance: &Instance, query: &ConjunctiveQuery) -> Vec<Match> {
    let mut results = Vec::new();
    let mut assignment = BTreeMap::new();
    let mut witnesses = Vec::new();
    search(
        instance,
        &query.atoms,
        0,
        &mut assignment,
        &mut witnesses,
        &mut results,
    );
    results
}

/// True if the Boolean query holds on the instance (some homomorphism exists).
pub fn query_holds(instance: &Instance, query: &ConjunctiveQuery) -> bool {
    !all_matches_limited(instance, query, 1).is_empty()
}

/// Like [`all_matches`] but stops after `limit` matches (used for existence
/// checks).
pub fn all_matches_limited(
    instance: &Instance,
    query: &ConjunctiveQuery,
    limit: usize,
) -> Vec<Match> {
    let mut results = Vec::new();
    let mut assignment = BTreeMap::new();
    let mut witnesses = Vec::new();
    search_limited(
        instance,
        &query.atoms,
        0,
        &mut assignment,
        &mut witnesses,
        &mut results,
        limit,
    );
    results
}

/// The distinct answer tuples of a non-Boolean query: projections of the
/// matches onto the free variables, deduplicated and sorted.
pub fn all_answers(instance: &Instance, query: &ConjunctiveQuery) -> Vec<Vec<ConstId>> {
    let mut answers: Vec<Vec<ConstId>> = all_matches(instance, query)
        .into_iter()
        .map(|m| {
            query
                .free_variables
                .iter()
                .map(|v| {
                    *m.assignment
                        .get(v)
                        .expect("head variables are bound in the body")
                })
                .collect()
        })
        .collect();
    answers.sort();
    answers.dedup();
    answers
}

fn search(
    instance: &Instance,
    atoms: &[Atom],
    index: usize,
    assignment: &mut BTreeMap<String, ConstId>,
    witnesses: &mut Vec<FactId>,
    results: &mut Vec<Match>,
) {
    search_limited(
        instance,
        atoms,
        index,
        assignment,
        witnesses,
        results,
        usize::MAX,
    );
}

#[allow(clippy::too_many_arguments)]
fn search_limited(
    instance: &Instance,
    atoms: &[Atom],
    index: usize,
    assignment: &mut BTreeMap<String, ConstId>,
    witnesses: &mut Vec<FactId>,
    results: &mut Vec<Match>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    if index == atoms.len() {
        results.push(Match {
            assignment: assignment.clone(),
            witnesses: witnesses.clone(),
        });
        return;
    }
    let atom = &atoms[index];
    let Some(relation) = instance.find_relation(&atom.relation) else {
        return; // no facts for this relation: no match
    };
    for fact_id in instance.facts_of(relation) {
        let fact = instance.fact(fact_id);
        if fact.args.len() != atom.args.len() {
            continue;
        }
        // Try to extend the assignment to match this fact.
        let mut newly_bound = Vec::new();
        let mut ok = true;
        for (term, &constant) in atom.args.iter().zip(&fact.args) {
            match term {
                Term::Const(name) => {
                    if instance.find_constant(name) != Some(constant) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(&bound) if bound != constant => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        assignment.insert(v.clone(), constant);
                        newly_bound.push(v.clone());
                    }
                },
            }
        }
        if ok {
            witnesses.push(fact_id);
            search_limited(
                instance,
                atoms,
                index + 1,
                assignment,
                witnesses,
                results,
                limit,
            );
            witnesses.pop();
        }
        for v in newly_bound {
            assignment.remove(&v);
        }
        if results.len() >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::ConjunctiveQuery;

    fn rst_instance() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a"]);
        inst.add_fact_named("R", &["b"]);
        inst.add_fact_named("S", &["a", "c"]);
        inst.add_fact_named("S", &["b", "d"]);
        inst.add_fact_named("T", &["c"]);
        inst
    }

    #[test]
    fn boolean_query_holds() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert!(query_holds(&inst, &q));
    }

    #[test]
    fn boolean_query_fails_when_no_join() {
        let inst = rst_instance();
        // T(d) does not exist, so the chain through b fails; only a→c works.
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y), T(x)").unwrap();
        assert!(!query_holds(&inst, &q));
    }

    #[test]
    fn all_matches_enumerates_homomorphisms() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let matches = all_matches(&inst, &q);
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert_eq!(m.witnesses.len(), 2);
        }
    }

    #[test]
    fn constants_constrain_matches() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("S(\"a\", y)").unwrap();
        let matches = all_matches(&inst, &q);
        assert_eq!(matches.len(), 1);
        let q = ConjunctiveQuery::parse("S(\"z\", y)").unwrap();
        assert!(all_matches(&inst, &q).is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut inst = Instance::new();
        inst.add_fact_named("E", &["a", "a"]);
        inst.add_fact_named("E", &["a", "b"]);
        let q = ConjunctiveQuery::parse("E(x, x)").unwrap();
        let matches = all_matches(&inst, &q);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn answers_with_free_variables() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("ans(x) <- R(x), S(x, y)").unwrap();
        let answers = all_answers(&inst, &q);
        assert_eq!(answers.len(), 2);
        let names: Vec<&str> = answers.iter().map(|t| inst.constant_name(t[0])).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn answers_are_deduplicated() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a", "b"]);
        inst.add_fact_named("R", &["a", "c"]);
        let q = ConjunctiveQuery::parse("ans(x) <- R(x, y)").unwrap();
        assert_eq!(all_answers(&inst, &q).len(), 1);
    }

    #[test]
    fn unknown_relation_means_no_match() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("Unknown(x)").unwrap();
        assert!(!query_holds(&inst, &q));
    }

    #[test]
    fn arity_mismatch_is_skipped() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a", "b"]);
        let q = ConjunctiveQuery::parse("R(x)").unwrap();
        assert!(!query_holds(&inst, &q));
    }

    #[test]
    fn limited_search_stops_early() {
        let inst = rst_instance();
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        assert_eq!(all_matches_limited(&inst, &q, 1).len(), 1);
    }

    #[test]
    fn self_join_query_on_path() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a", "b"]);
        inst.add_fact_named("R", &["b", "c"]);
        let q = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let matches = all_matches(&inst, &q);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].witnesses, vec![FactId(0), FactId(1)]);
    }
}
