//! Lineage circuits of Boolean conjunctive queries.
//!
//! The lineage (Boolean provenance) of a Boolean CQ `q` on an uncertain
//! instance is a circuit over the event variables that is true in exactly the
//! possible worlds where `q` holds: the disjunction, over all homomorphisms
//! of `q` into the instance, of the conjunction of the events (or annotation
//! formulas) of the facts used by the homomorphism.
//!
//! This is the classical "intensional" query evaluation method the paper
//! relates its automaton-based construction to: "our method relates to CQ
//! evaluation methods on probabilistic instances which compute a lineage of
//! the query and evaluate the probability of that lineage." It serves as a
//! general-purpose lineage builder (no treewidth assumption) and as a
//! cross-check for the automaton pipeline in `stuc-core`.

use crate::cq::ConjunctiveQuery;
use crate::eval::all_matches;
use std::collections::BTreeMap;
use stuc_circuit::circuit::{Circuit, GateId};
use stuc_data::cinstance::CInstance;
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;

/// Builds the lineage circuit of a Boolean CQ on a TID instance.
///
/// Each fact `i` of the TID is represented by the input variable `i`
/// (matching [`TidInstance::fact_event`]); the circuit is the OR over all
/// matches of the AND of the witnesses' variables.
pub fn tid_lineage(tid: &TidInstance, query: &ConjunctiveQuery) -> Circuit {
    let mut circuit = Circuit::new();
    let matches = all_matches(tid.instance(), query);
    // Share one input gate per fact.
    let mut fact_gate: BTreeMap<usize, GateId> = BTreeMap::new();
    let mut disjuncts = Vec::with_capacity(matches.len());
    for m in matches {
        let mut conjuncts = Vec::with_capacity(m.witnesses.len());
        for f in m.witnesses {
            let gate = *fact_gate
                .entry(f.0)
                .or_insert_with(|| circuit.add_input(tid.fact_event(f)));
            conjuncts.push(gate);
        }
        conjuncts.sort();
        conjuncts.dedup();
        disjuncts.push(circuit.add_and(conjuncts));
    }
    let output = circuit.add_or(disjuncts);
    circuit.set_output(output);
    circuit
}

/// Builds the lineage circuit of a Boolean CQ on a c-instance: the OR over
/// matches of the AND of the witnesses' annotation formulas (compiled into
/// the circuit, shared per fact).
pub fn cinstance_lineage(ci: &CInstance, query: &ConjunctiveQuery) -> Circuit {
    let mut circuit = Circuit::new();
    let matches = all_matches(ci.instance(), query);
    let mut fact_gate: BTreeMap<usize, GateId> = BTreeMap::new();
    let mut disjuncts = Vec::with_capacity(matches.len());
    for m in matches {
        let mut conjuncts = Vec::with_capacity(m.witnesses.len());
        for f in m.witnesses {
            let gate = *fact_gate
                .entry(f.0)
                .or_insert_with(|| ci.annotation(f).append_to_circuit(&mut circuit));
            conjuncts.push(gate);
        }
        conjuncts.sort();
        conjuncts.dedup();
        disjuncts.push(circuit.add_and(conjuncts));
    }
    let output = circuit.add_or(disjuncts);
    circuit.set_output(output);
    circuit
}

/// Builds the lineage circuit of a Boolean CQ on a pcc-instance by extending
/// a copy of the shared annotation circuit with the OR-of-ANDs of the
/// matched facts' annotation gates.
pub fn pcc_lineage(pcc: &PccInstance, query: &ConjunctiveQuery) -> Circuit {
    let mut circuit = pcc.annotation_circuit().clone();
    let matches = all_matches(pcc.instance(), query);
    let mut disjuncts = Vec::with_capacity(matches.len());
    for m in matches {
        let mut conjuncts: Vec<GateId> = m.witnesses.iter().map(|&f| pcc.fact_gate(f)).collect();
        conjuncts.sort();
        conjuncts.dedup();
        disjuncts.push(circuit.add_and(conjuncts));
    }
    let output = circuit.add_or(disjuncts);
    circuit.set_output(output);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::enumeration::probability_by_enumeration;
    use stuc_circuit::weights::Weights;
    use stuc_data::worlds;

    fn path_tid(n: usize, p: f64) -> TidInstance {
        let mut tid = TidInstance::new();
        for i in 0..n {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
        }
        tid
    }

    #[test]
    fn tid_lineage_of_two_step_path() {
        let tid = path_tid(2, 0.5);
        let q = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let lineage = tid_lineage(&tid, &q);
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tid_lineage_matches_world_enumeration() {
        let tid = path_tid(4, 0.3);
        let q = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let lineage = tid_lineage(&tid, &q);
        let from_lineage = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        let from_worlds = worlds::tid_query_probability(&tid, |facts| {
            // The query holds when two consecutive path facts are present.
            (0..3).any(|i| {
                facts.contains(&stuc_data::instance::FactId(i))
                    && facts.contains(&stuc_data::instance::FactId(i + 1))
            })
        })
        .unwrap();
        assert!((from_lineage - from_worlds).abs() < 1e-12);
    }

    #[test]
    fn unsatisfiable_query_has_false_lineage() {
        let tid = path_tid(2, 0.5);
        let q = ConjunctiveQuery::parse("Missing(x)").unwrap();
        let lineage = tid_lineage(&tid, &q);
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn cinstance_lineage_on_table1() {
        // "Some round trip CDG → MEL → CDG exists" requires pods (first leg)
        // and pods ∧ ¬stoc (return leg): probability = P(pods) · P(¬stoc).
        let ci = CInstance::table1_example();
        let q = ConjunctiveQuery::parse(
            "Trip(\"Paris_CDG\", \"Melbourne_MEL\"), Trip(\"Melbourne_MEL\", \"Paris_CDG\")",
        )
        .unwrap();
        let lineage = cinstance_lineage(&ci, &q);
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let mut w = Weights::new();
        w.set(pods, 0.8);
        w.set(stoc, 0.3);
        let p = probability_by_enumeration(&lineage, &w).unwrap();
        assert!((p - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn cinstance_lineage_agrees_with_world_enumeration() {
        let ci = CInstance::table1_example();
        let q = ConjunctiveQuery::parse("Trip(x, \"Paris_CDG\")").unwrap();
        let lineage = cinstance_lineage(&ci, &q);
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let mut w = Weights::new();
        w.set(pods, 0.6);
        w.set(stoc, 0.45);
        let from_lineage = probability_by_enumeration(&lineage, &w).unwrap();

        let pc = ci.clone().with_probabilities(w);
        let cdg = pc.instance().find_constant("Paris_CDG").unwrap();
        let from_worlds = worlds::query_probability(&pc, |facts| {
            facts
                .iter()
                .any(|&f| pc.instance().fact(f).args.get(1) == Some(&cdg))
        })
        .unwrap();
        assert!((from_lineage - from_worlds).abs() < 1e-12);
    }

    #[test]
    fn pcc_lineage_uses_shared_annotations() {
        // Two facts correlated by a single trust event: the query needing
        // both facts has probability equal to the trust probability.
        let mut pcc = PccInstance::new();
        let jane = stuc_circuit::circuit::VarId(0);
        let gate = pcc.annotation_circuit_mut().add_input(jane);
        pcc.probabilities_mut().set(jane, 0.9);
        pcc.add_fact_with_gate("PlaceOfBirth", &["manning", "crescent"], gate);
        pcc.add_fact_with_gate("Surname", &["manning", "manning_s"], gate);
        let q = ConjunctiveQuery::parse("PlaceOfBirth(x, y), Surname(x, z)").unwrap();
        let lineage = pcc_lineage(&pcc, &q);
        let p = probability_by_enumeration(&lineage, pcc.probabilities()).unwrap();
        assert!((p - 0.9).abs() < 1e-12);
    }

    #[test]
    fn lineage_is_monotone_for_tid() {
        let tid = path_tid(3, 0.5);
        let q = ConjunctiveQuery::parse("R(x, y)").unwrap();
        let lineage = tid_lineage(&tid, &q);
        assert!(lineage.is_monotone());
    }

    #[test]
    fn duplicate_witnesses_are_deduplicated() {
        // Query with a repeated atom matching the same fact must not create
        // duplicate conjuncts.
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "a"], 0.5);
        let q = ConjunctiveQuery::parse("R(x, x), R(x, x)").unwrap();
        let lineage = tid_lineage(&tid, &q);
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
