//! Datalog programs and their evaluation on plain instances.
//!
//! The paper repeatedly points at Datalog fragments as the realistic query
//! languages for its tractability programme: "Datalog \[2\], or some of its
//! variants such as frontier-guarded Datalog \[11\]" as query languages for
//! (p)c-instances, and monadic Datalog \[26\] as the way around the
//! non-elementary cost of compiling MSO to automata. This module provides the
//! language layer: positive Datalog rules (no negation), program parsing,
//! fixpoint evaluation by iterated rule application, and the syntactic
//! fragment tests (monadic, guarded, frontier-guarded) the paper refers to.
//!
//! Provenance circuits for Datalog-derived facts over uncertain instances —
//! the ingredient needed to lift this to probabilistic data — live in
//! [`crate::datalog_provenance`].

use std::collections::BTreeSet;
use std::fmt;

use crate::cq::{Atom, ConjunctiveQuery, QueryParseError, Term};
use crate::eval::all_matches;
use stuc_data::instance::Instance;

/// A positive Datalog rule `Head(…) :- Body₁(…), …, Bodyₖ(…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogRule {
    /// The head atom (the derived fact pattern).
    pub head: Atom,
    /// The body atoms, all positive.
    pub body: Vec<Atom>,
}

impl DatalogRule {
    /// Creates a rule, checking safety: every head variable must occur in the
    /// body (Datalog has no existential variables — those are the subject of
    /// the `stuc-rules` crate).
    pub fn new(head: Atom, body: Vec<Atom>) -> Result<Self, DatalogError> {
        let body_variables: BTreeSet<String> = body.iter().flat_map(|a| a.variables()).collect();
        for variable in head.variables() {
            if !body_variables.contains(&variable) {
                return Err(DatalogError::UnsafeRule {
                    rule: format!("{head} :- …"),
                    variable,
                });
            }
        }
        if body.is_empty() {
            return Err(DatalogError::EmptyBody {
                rule: head.to_string(),
            });
        }
        Ok(DatalogRule { head, body })
    }

    /// The variables shared between the head and the body (the *frontier*).
    pub fn frontier(&self) -> BTreeSet<String> {
        self.head.variables()
    }

    /// True if some body atom contains every body variable (guardedness).
    pub fn is_guarded(&self) -> bool {
        let all: BTreeSet<String> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.body.iter().any(|a| all.is_subset(&a.variables()))
    }

    /// True if some body atom contains every frontier variable
    /// (frontier-guardedness, the fragment of reference \[11\]).
    pub fn is_frontier_guarded(&self) -> bool {
        let frontier = self.frontier();
        frontier.is_empty() || self.body.iter().any(|a| frontier.is_subset(&a.variables()))
    }

    /// The body as a conjunctive query whose free variables are the head
    /// variables, ready for homomorphism search.
    pub fn body_query(&self) -> ConjunctiveQuery {
        let free: Vec<String> = self.head.variables().into_iter().collect();
        ConjunctiveQuery {
            atoms: self.body.clone(),
            free_variables: free,
        }
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(f, "{} :- {}", self.head, body.join(", "))
    }
}

/// A positive Datalog program: a list of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatalogProgram {
    rules: Vec<DatalogRule>,
}

stuc_errors::stuc_error! {
    /// Errors raised when building or evaluating Datalog programs.
    #[derive(Clone, PartialEq, Eq)]
    pub enum DatalogError {
        /// A head variable does not appear in the rule body.
        UnsafeRule { rule: String, variable: String },
        /// A rule has an empty body.
        EmptyBody { rule: String },
        /// A rule could not be parsed.
        Parse(String),
        /// The fixpoint exceeded the configured size bound.
        FixpointTooLarge { facts: usize, limit: usize },
    }
    display {
        Self::UnsafeRule { rule, variable } => "unsafe rule {rule}: head variable {variable} not bound in the body",
        Self::EmptyBody { rule } => "rule {rule} has an empty body",
        Self::Parse(message) => "parse error: {message}",
        Self::FixpointTooLarge { facts, limit } => "fixpoint produced {facts} facts, exceeding the limit of {limit}",
    }
}

impl From<QueryParseError> for DatalogError {
    fn from(error: QueryParseError) -> Self {
        DatalogError::Parse(error.to_string())
    }
}

/// Default bound on the number of facts a fixpoint may produce.
pub const DEFAULT_FACT_LIMIT: usize = 100_000;

impl DatalogProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: DatalogRule) {
        self.rules.push(rule);
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[DatalogRule] {
        &self.rules
    }

    /// Parses a program: one rule per line (or separated by `.`), each of the
    /// form `Head(x, y) :- Body1(x, z), Body2(z, y)`. Blank lines and lines
    /// starting with `%` are ignored.
    pub fn parse(text: &str) -> Result<Self, DatalogError> {
        let mut program = DatalogProgram::new();
        for raw in text.split(['\n', '.']) {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let (head_text, body_text) = line
                .split_once(":-")
                .ok_or_else(|| DatalogError::Parse(format!("missing ':-' in '{line}'")))?;
            let head_query = ConjunctiveQuery::parse(head_text.trim())?;
            if head_query.atoms.len() != 1 {
                return Err(DatalogError::Parse(format!(
                    "rule head must be a single atom in '{line}'"
                )));
            }
            let body_query = ConjunctiveQuery::parse(body_text.trim())?;
            program.add_rule(DatalogRule::new(
                head_query.atoms.into_iter().next().expect("one head atom"),
                body_query.atoms,
            )?);
        }
        Ok(program)
    }

    /// The intensional (derived) relation names: those appearing in some
    /// rule head.
    pub fn idb_relations(&self) -> BTreeSet<String> {
        self.rules.iter().map(|r| r.head.relation.clone()).collect()
    }

    /// The extensional relation names: those appearing only in rule bodies.
    pub fn edb_relations(&self) -> BTreeSet<String> {
        let idb = self.idb_relations();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.relation.clone()))
            .filter(|name| !idb.contains(name))
            .collect()
    }

    /// True if every intensional relation is monadic (arity at most one) —
    /// the monadic Datalog fragment the paper cites as a practical substitute
    /// for MSO-to-automaton compilation.
    pub fn is_monadic(&self) -> bool {
        let idb = self.idb_relations();
        self.rules.iter().all(|rule| {
            rule.head.args.len() <= 1
                && rule
                    .body
                    .iter()
                    .all(|atom| !idb.contains(&atom.relation) || atom.args.len() <= 1)
        })
    }

    /// True if every rule is guarded.
    pub fn is_guarded(&self) -> bool {
        self.rules.iter().all(DatalogRule::is_guarded)
    }

    /// True if every rule is frontier-guarded.
    pub fn is_frontier_guarded(&self) -> bool {
        self.rules.iter().all(DatalogRule::is_frontier_guarded)
    }

    /// True if the program is non-recursive: no intensional relation is
    /// (transitively) used to derive itself.
    pub fn is_recursive(&self) -> bool {
        // Build the dependency graph between head relations.
        let idb = self.idb_relations();
        let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
        for rule in &self.rules {
            for atom in &rule.body {
                if idb.contains(&atom.relation) {
                    edges.insert((rule.head.relation.clone(), atom.relation.clone()));
                }
            }
        }
        // Depth-first search for a cycle.
        for start in &idb {
            let mut stack = vec![start.clone()];
            let mut seen = BTreeSet::new();
            while let Some(current) = stack.pop() {
                for (from, to) in &edges {
                    if from == &current {
                        if to == start {
                            return true;
                        }
                        if seen.insert(to.clone()) {
                            stack.push(to.clone());
                        }
                    }
                }
            }
        }
        false
    }

    /// Evaluates the program on an instance: returns the instance extended
    /// with every derivable intensional fact (the least fixpoint), using the
    /// default fact limit.
    pub fn evaluate(&self, instance: &Instance) -> Result<Instance, DatalogError> {
        self.evaluate_with_limit(instance, DEFAULT_FACT_LIMIT)
    }

    /// Evaluates the program with an explicit bound on the total number of
    /// facts, guarding against runaway fixpoints.
    pub fn evaluate_with_limit(
        &self,
        instance: &Instance,
        limit: usize,
    ) -> Result<Instance, DatalogError> {
        let mut saturated = instance.clone();
        loop {
            let derived = self.immediate_consequences(&saturated);
            let mut changed = false;
            for (relation, args) in derived {
                let argument_names: Vec<String> = args.clone();
                let argument_refs: Vec<&str> = argument_names.iter().map(String::as_str).collect();
                let relation_id = saturated.relation(&relation);
                let constant_ids: Vec<_> = argument_refs
                    .iter()
                    .map(|a| saturated.constant(a))
                    .collect();
                if !saturated.contains(relation_id, &constant_ids) {
                    saturated.add_fact(relation_id, constant_ids);
                    changed = true;
                }
            }
            if saturated.fact_count() > limit {
                return Err(DatalogError::FixpointTooLarge {
                    facts: saturated.fact_count(),
                    limit,
                });
            }
            if !changed {
                return Ok(saturated);
            }
        }
    }

    /// One round of rule application: the ground head atoms derivable from
    /// the current instance, as `(relation name, argument constant names)`.
    pub fn immediate_consequences(&self, instance: &Instance) -> Vec<(String, Vec<String>)> {
        let mut derived = Vec::new();
        for rule in &self.rules {
            let query = ConjunctiveQuery {
                atoms: rule.body.clone(),
                free_variables: vec![],
            };
            for homomorphism in all_matches(instance, &query) {
                let mut arguments = Vec::with_capacity(rule.head.args.len());
                for term in &rule.head.args {
                    match term {
                        Term::Const(name) => arguments.push(name.clone()),
                        Term::Var(variable) => {
                            let constant = homomorphism
                                .assignment
                                .get(variable)
                                .expect("safe rule: head variable bound by the body");
                            arguments.push(instance.constant_name(*constant).to_string());
                        }
                    }
                }
                derived.push((rule.head.relation.clone(), arguments));
            }
        }
        derived.sort();
        derived.dedup();
        derived
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::query_holds;

    fn transitive_closure_program() -> DatalogProgram {
        DatalogProgram::parse(
            "Reach(x, y) :- Edge(x, y)\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z)",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let program = transitive_closure_program();
        assert_eq!(program.rules().len(), 2);
        let reparsed = DatalogProgram::parse(&program.to_string()).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn parse_rejects_unsafe_and_malformed_rules() {
        assert!(matches!(
            DatalogProgram::parse("Head(x, z) :- Body(x, y)"),
            Err(DatalogError::UnsafeRule { .. })
        ));
        assert!(matches!(
            DatalogProgram::parse("Head(x, y) Body(x, y)"),
            Err(DatalogError::Parse(_))
        ));
        assert!(matches!(
            DatalogProgram::parse("Head(x), Other(x) :- Body(x)"),
            Err(DatalogError::Parse(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let program = DatalogProgram::parse(
            "% transitive closure\n\
             \n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z).",
        )
        .unwrap();
        assert_eq!(program.rules().len(), 2);
    }

    #[test]
    fn idb_and_edb_relations_are_separated() {
        let program = transitive_closure_program();
        assert_eq!(
            program.idb_relations(),
            BTreeSet::from(["Reach".to_string()])
        );
        assert_eq!(
            program.edb_relations(),
            BTreeSet::from(["Edge".to_string()])
        );
    }

    #[test]
    fn fragment_tests() {
        let transitive = transitive_closure_program();
        assert!(!transitive.is_monadic());
        // The recursive rule's frontier {x, z} is split across two body
        // atoms, so the program is neither guarded nor frontier-guarded.
        assert!(!transitive.is_frontier_guarded());
        assert!(!transitive.is_guarded());
        assert!(transitive.is_recursive());

        let monadic = DatalogProgram::parse(
            "Good(x) :- Person(x), Trusted(x)\n\
             Good(x) :- Endorses(y, x), Good(y)",
        )
        .unwrap();
        assert!(monadic.is_monadic());
        assert!(monadic.is_recursive());

        let guarded = DatalogProgram::parse("Pair(x, y) :- Edge(x, y), Node(x)").unwrap();
        assert!(guarded.is_guarded());
        assert!(!guarded.is_recursive());
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let mut instance = Instance::new();
        instance.add_fact_named("Edge", &["a", "b"]);
        instance.add_fact_named("Edge", &["b", "c"]);
        instance.add_fact_named("Edge", &["c", "d"]);
        let saturated = transitive_closure_program().evaluate(&instance).unwrap();
        // 3 edges + 6 reachability facts (a→b, b→c, c→d, a→c, b→d, a→d).
        assert_eq!(saturated.fact_count(), 9);
        let query = ConjunctiveQuery::parse("Reach(\"a\", \"d\")").unwrap();
        assert!(query_holds(&saturated, &query));
        let missing = ConjunctiveQuery::parse("Reach(\"d\", \"a\")").unwrap();
        assert!(!query_holds(&saturated, &missing));
    }

    #[test]
    fn constants_in_heads_are_supported() {
        let program = DatalogProgram::parse("Flag(\"seen\") :- Edge(x, y)").unwrap();
        let mut instance = Instance::new();
        instance.add_fact_named("Edge", &["a", "b"]);
        let saturated = program.evaluate(&instance).unwrap();
        let query = ConjunctiveQuery::parse("Flag(\"seen\")").unwrap();
        assert!(query_holds(&saturated, &query));
    }

    #[test]
    fn evaluation_is_idempotent_at_fixpoint() {
        let mut instance = Instance::new();
        instance.add_fact_named("Edge", &["a", "b"]);
        instance.add_fact_named("Edge", &["b", "a"]);
        let program = transitive_closure_program();
        let once = program.evaluate(&instance).unwrap();
        let twice = program.evaluate(&once).unwrap();
        assert_eq!(once.fact_count(), twice.fact_count());
    }

    #[test]
    fn fact_limit_is_enforced() {
        let mut instance = Instance::new();
        for i in 0..6 {
            instance.add_fact_named("Edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let result = transitive_closure_program().evaluate_with_limit(&instance, 10);
        assert!(matches!(result, Err(DatalogError::FixpointTooLarge { .. })));
    }

    #[test]
    fn empty_body_is_rejected() {
        let head = Atom {
            relation: "R".to_string(),
            args: vec![],
        };
        assert!(matches!(
            DatalogRule::new(head, vec![]),
            Err(DatalogError::EmptyBody { .. })
        ));
    }

    #[test]
    fn immediate_consequences_single_round() {
        let mut instance = Instance::new();
        instance.add_fact_named("Edge", &["a", "b"]);
        instance.add_fact_named("Edge", &["b", "c"]);
        let program = transitive_closure_program();
        let first_round = program.immediate_consequences(&instance);
        // Only the base rule fires in the first round.
        assert_eq!(first_round.len(), 2);
        assert!(first_round.iter().all(|(relation, _)| relation == "Reach"));
    }
}
