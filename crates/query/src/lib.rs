//! # stuc-query — conjunctive queries, lineage, and the extensional baseline
//!
//! The query-language layer of STUC. The paper's data-complexity results are
//! stated for MSO (handled by `stuc-automata` via tree automata); this crate
//! provides the *relational* query machinery those results are compared
//! against and composed with:
//!
//! * [`cq`] — conjunctive queries (existentially quantified conjunctions of
//!   atoms), with a small parser and free variables for non-Boolean queries;
//! * [`eval`] — query evaluation on plain instances by backtracking join
//!   (homomorphism search);
//! * [`lineage`] — lineage circuits of Boolean CQs over TID instances and
//!   c-instances: the OR-over-matches / AND-over-atoms circuit whose
//!   probability is the query probability (the "intensional" method);
//! * [`safe`] — the hierarchical-query test and safe-plan ("extensional")
//!   probability evaluation for self-join-free CQs on TIDs, the classic
//!   Dalvi–Suciu tractable case used as a baseline in experiment E5;
//! * [`datalog`] — positive Datalog programs (parsing, fixpoint evaluation,
//!   and the monadic / guarded / frontier-guarded fragment tests the paper
//!   points at as realistic query languages);
//! * [`datalog_provenance`] — provenance circuits for Datalog-derived facts
//!   over TID and c-instances (the circuits-for-Datalog-provenance
//!   construction the paper relates its lineages to).
//!
//! ## Example
//!
//! ```
//! use stuc_query::cq::ConjunctiveQuery;
//! use stuc_data::instance::Instance;
//! use stuc_query::eval::query_holds;
//!
//! let mut inst = Instance::new();
//! inst.add_fact_named("R", &["a", "b"]);
//! inst.add_fact_named("S", &["b", "c"]);
//! let q = ConjunctiveQuery::parse("R(x, y), S(y, z)").unwrap();
//! assert!(query_holds(&inst, &q));
//! ```

pub mod cq;
pub mod datalog;
pub mod datalog_provenance;
pub mod eval;
pub mod lineage;
pub mod safe;

pub use cq::{Atom, ConjunctiveQuery, Term};
pub use datalog::{DatalogProgram, DatalogRule};
pub use datalog_provenance::DatalogProvenance;
pub use eval::{all_answers, query_holds};
pub use lineage::{cinstance_lineage, tid_lineage};
pub use safe::{is_hierarchical, safe_plan_probability};
