//! Provenance (lineage) circuits for Datalog over uncertain instances.
//!
//! The paper casts its automaton-produced lineages as "provenance circuits
//! \[21\] matching standard definitions of semiring provenance \[28\]", citing
//! the circuits-for-Datalog-provenance line of work. This module provides the
//! classical fixpoint construction of those circuits for positive Datalog
//! programs over tuple-independent and c-instances: every fact of the
//! saturated instance receives a gate whose Boolean function is true in
//! exactly the possible worlds where the fact is derivable.
//!
//! The construction iterates the provenance equations
//! `gate_{i+1}(f) = gate_EDB(f) ∨ ⋁_{instantiations deriving f} ⋀ gate_i(body)`
//! for as many stages as there are intensional facts; since every derivable
//! fact has a proof tree whose intensional depth is bounded by the number of
//! intensional facts, the Boolean function reached at that point is the least
//! fixpoint, even for recursive (e.g. transitive-closure) programs.

use std::collections::BTreeMap;

use crate::cq::ConjunctiveQuery;
use crate::datalog::{DatalogError, DatalogProgram};
use crate::eval::all_matches;
use stuc_circuit::circuit::{Circuit, GateId};
use stuc_data::cinstance::CInstance;
use stuc_data::instance::{FactId, Instance};
use stuc_data::tid::TidInstance;

/// Provenance circuits for every fact of a saturated Datalog instance.
#[derive(Debug, Clone)]
pub struct DatalogProvenance {
    saturated: Instance,
    circuit: Circuit,
    fact_gates: BTreeMap<FactId, GateId>,
}

impl DatalogProvenance {
    /// Builds the provenance of `program` over a tuple-independent instance:
    /// each extensional fact is represented by its own independent event
    /// variable (as in [`TidInstance::fact_event`]).
    pub fn from_tid(tid: &TidInstance, program: &DatalogProgram) -> Result<Self, DatalogError> {
        let mut circuit = Circuit::new();
        let edb_gates: Vec<GateId> = tid
            .instance()
            .facts()
            .map(|(fact, _)| circuit.add_input(tid.fact_event(fact)))
            .collect();
        Self::build(tid.instance(), program, circuit, &edb_gates)
    }

    /// Builds the provenance of `program` over a c-instance: each extensional
    /// fact contributes its annotation formula (compiled into the circuit).
    pub fn from_cinstance(
        cinstance: &CInstance,
        program: &DatalogProgram,
    ) -> Result<Self, DatalogError> {
        let mut circuit = Circuit::new();
        let edb_gates: Vec<GateId> = cinstance
            .instance()
            .facts()
            .map(|(fact, _)| cinstance.annotation(fact).append_to_circuit(&mut circuit))
            .collect();
        Self::build(cinstance.instance(), program, circuit, &edb_gates)
    }

    fn build(
        base: &Instance,
        program: &DatalogProgram,
        mut circuit: Circuit,
        edb_gates: &[GateId],
    ) -> Result<Self, DatalogError> {
        let saturated = program.evaluate(base)?;
        // Gates of the current stage; extensional facts keep their gate
        // throughout, intensional facts start undefined (never derivable yet).
        let mut gates: BTreeMap<FactId, GateId> = base
            .facts()
            .map(|(fact, _)| (fact, edb_gates[fact.0]))
            .collect();
        let intensional: Vec<FactId> = saturated
            .facts()
            .map(|(fact, _)| fact)
            .filter(|fact| fact.0 >= base.fact_count())
            .collect();
        let stages = intensional.len();
        for _ in 0..stages {
            // Collect, per intensional fact, the derivations available with
            // the previous stage's gates.
            let mut disjuncts: BTreeMap<FactId, Vec<GateId>> = BTreeMap::new();
            for rule in program.rules() {
                let body_query = ConjunctiveQuery {
                    atoms: rule.body.clone(),
                    free_variables: vec![],
                };
                for homomorphism in all_matches(&saturated, &body_query) {
                    // The derived head fact under this homomorphism.
                    let Some(head_fact) =
                        instantiated_head(&saturated, rule, &homomorphism.assignment)
                    else {
                        continue;
                    };
                    if head_fact.0 < base.fact_count() {
                        // The head is an extensional fact; its lineage is its
                        // own event, derivations do not add anything.
                        continue;
                    }
                    let mut conjuncts = Vec::with_capacity(homomorphism.witnesses.len());
                    let mut all_defined = true;
                    for &witness in &homomorphism.witnesses {
                        match gates.get(&witness) {
                            Some(&gate) => conjuncts.push(gate),
                            None => {
                                all_defined = false;
                                break;
                            }
                        }
                    }
                    if !all_defined {
                        continue;
                    }
                    conjuncts.sort();
                    conjuncts.dedup();
                    let derivation = circuit.add_and(conjuncts);
                    disjuncts.entry(head_fact).or_default().push(derivation);
                }
            }
            // Install the new stage's gates.
            let mut changed = false;
            for &fact in &intensional {
                if let Some(derivations) = disjuncts.remove(&fact) {
                    let gate = circuit.add_or(derivations);
                    if gates.insert(fact, gate) != Some(gate) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Intensional facts never derived in any stage cannot actually occur;
        // the saturation is over the union of all possible worlds, so give
        // them a constant-false gate for completeness.
        let fact_gates: BTreeMap<FactId, GateId> = saturated
            .facts()
            .map(|(fact, _)| {
                let gate = gates
                    .get(&fact)
                    .copied()
                    .unwrap_or_else(|| circuit.add_const(false));
                (fact, gate)
            })
            .collect();
        Ok(DatalogProvenance {
            saturated,
            circuit,
            fact_gates,
        })
    }

    /// The instance saturated with every fact derivable in *some* possible
    /// world.
    pub fn saturated_instance(&self) -> &Instance {
        &self.saturated
    }

    /// The shared provenance circuit (without an output gate set).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The lineage circuit of one fact of the saturated instance, identified
    /// by relation name and argument constant names. Returns `None` if the
    /// fact is not in the saturated instance (it is derivable in no world).
    pub fn fact_lineage(&self, relation: &str, args: &[&str]) -> Option<Circuit> {
        let relation_id = self.saturated.find_relation(relation)?;
        let argument_ids: Option<Vec<_>> = args
            .iter()
            .map(|a| self.saturated.find_constant(a))
            .collect();
        let argument_ids = argument_ids?;
        let fact = self
            .saturated
            .facts()
            .find(|(_, f)| f.relation == relation_id && f.args == argument_ids)
            .map(|(id, _)| id)?;
        let mut circuit = self.circuit.clone();
        circuit.set_output(self.fact_gates[&fact]);
        Some(circuit)
    }

    /// The lineage circuit of a Boolean conjunctive query over the saturated
    /// instance: the OR over homomorphisms of the AND of the witnesses'
    /// lineage gates. This is how a query mixing extensional and derived
    /// relations is evaluated on the uncertain instance.
    pub fn query_lineage(&self, query: &ConjunctiveQuery) -> Circuit {
        let mut circuit = self.circuit.clone();
        let matches = all_matches(&self.saturated, query);
        let mut disjuncts = Vec::with_capacity(matches.len());
        for homomorphism in matches {
            let mut conjuncts: Vec<GateId> = homomorphism
                .witnesses
                .iter()
                .map(|witness| self.fact_gates[witness])
                .collect();
            conjuncts.sort();
            conjuncts.dedup();
            disjuncts.push(circuit.add_and(conjuncts));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        circuit
    }
}

/// Resolves the head fact of a rule under a homomorphism of its body, if that
/// fact exists in the saturated instance.
fn instantiated_head(
    saturated: &Instance,
    rule: &crate::datalog::DatalogRule,
    assignment: &BTreeMap<String, stuc_data::instance::ConstId>,
) -> Option<FactId> {
    use crate::cq::Term;
    let relation = saturated.find_relation(&rule.head.relation)?;
    let mut arguments = Vec::with_capacity(rule.head.args.len());
    for term in &rule.head.args {
        match term {
            Term::Const(name) => arguments.push(saturated.find_constant(name)?),
            Term::Var(variable) => arguments.push(*assignment.get(variable)?),
        }
    }
    saturated
        .facts()
        .find(|(_, fact)| fact.relation == relation && fact.args == arguments)
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::enumeration::probability_by_enumeration;
    use stuc_circuit::weights::Weights;
    use stuc_circuit::wmc::TreewidthWmc;
    use stuc_data::formula::Formula;

    fn transitive_closure() -> DatalogProgram {
        DatalogProgram::parse(
            "Reach(x, y) :- Edge(x, y)\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z)",
        )
        .unwrap()
    }

    #[test]
    fn path_reachability_probability_is_the_product() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b"], 0.9);
        tid.add_fact_named("Edge", &["b", "c"], 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        let lineage = provenance.fact_lineage("Reach", &["a", "c"]).unwrap();
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((p - 0.45).abs() < 1e-9);
        let direct = provenance.fact_lineage("Reach", &["a", "b"]).unwrap();
        let p_direct = probability_by_enumeration(&direct, &tid.fact_weights()).unwrap();
        assert!((p_direct - 0.9).abs() < 1e-9);
    }

    #[test]
    fn diamond_reachability_combines_two_independent_paths() {
        // a→b→d and a→c→d, each edge with probability 0.5:
        // P[Reach(a,d)] = 1 − (1 − 0.25)² = 0.4375.
        let mut tid = TidInstance::new();
        for (from, to) in [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")] {
            tid.add_fact_named("Edge", &[from, to], 0.5);
        }
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        let lineage = provenance.fact_lineage("Reach", &["a", "d"]).unwrap();
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((p - 0.4375).abs() < 1e-9);
        // The treewidth back-end agrees with enumeration.
        let p_mp = TreewidthWmc::default()
            .probability(&lineage, &tid.fact_weights())
            .unwrap();
        assert!((p - p_mp).abs() < 1e-9);
    }

    #[test]
    fn cyclic_programs_converge() {
        // A 2-cycle a⇄b: Reach(a, a) requires both edges.
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b"], 0.5);
        tid.add_fact_named("Edge", &["b", "a"], 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        let lineage = provenance.fact_lineage("Reach", &["a", "a"]).unwrap();
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((p - 0.25).abs() < 1e-9);
    }

    #[test]
    fn underivable_facts_have_no_lineage() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b"], 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        assert!(provenance.fact_lineage("Reach", &["b", "a"]).is_none());
    }

    #[test]
    fn query_lineage_mixes_edb_and_idb_atoms() {
        // "some node reaches d through an edge into d": Reach(x, y), Edge(y, "d").
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b"], 1.0);
        tid.add_fact_named("Edge", &["b", "d"], 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        let query = ConjunctiveQuery::parse("Reach(x, y), Edge(y, \"d\")").unwrap();
        let lineage = provenance.query_lineage(&query);
        let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        // Requires Edge(b, d): probability 0.5 (Reach(a, b) is certain).
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cinstance_provenance_respects_correlated_annotations() {
        // Both edges carry the same event e: reachability over two hops has
        // probability P(e), not P(e)².
        let mut cinstance = CInstance::new();
        let event = cinstance.events_mut().intern("e");
        cinstance.add_annotated_fact("Edge", &["a", "b"], Formula::Var(event));
        cinstance.add_annotated_fact("Edge", &["b", "c"], Formula::Var(event));
        let provenance =
            DatalogProvenance::from_cinstance(&cinstance, &transitive_closure()).unwrap();
        let lineage = provenance.fact_lineage("Reach", &["a", "c"]).unwrap();
        let mut weights = Weights::new();
        weights.set(event, 0.3);
        let p = probability_by_enumeration(&lineage, &weights).unwrap();
        assert!((p - 0.3).abs() < 1e-9);
    }

    #[test]
    fn saturated_instance_contains_all_possible_derivations() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("Edge", &["a", "b"], 0.1);
        tid.add_fact_named("Edge", &["b", "c"], 0.1);
        let provenance = DatalogProvenance::from_tid(&tid, &transitive_closure()).unwrap();
        // 2 edges + Reach(a,b), Reach(b,c), Reach(a,c).
        assert_eq!(provenance.saturated_instance().fact_count(), 5);
    }
}
