//! Conjunctive queries.
//!
//! A conjunctive query (CQ) is an existentially quantified conjunction of
//! relational atoms, e.g. the paper's hard query `∃x y  R(x) ∧ S(x,y) ∧ T(y)`.
//! Queries may declare *free* (answer) variables; a query with no free
//! variables is Boolean.

use std::collections::BTreeSet;
use std::fmt;

/// A term of an atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A query variable, identified by name.
    Var(String),
    /// A constant, identified by its (external) name.
    Const(String),
}

impl Term {
    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "\"{c}\""),
        }
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// The set of variables appearing in the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.args
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, args.join(", "))
    }
}

/// A conjunctive query: a conjunction of atoms with optional free variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// The atoms of the query body.
    pub atoms: Vec<Atom>,
    /// The free (answer) variables; empty for Boolean queries.
    pub free_variables: Vec<String>,
}

impl ConjunctiveQuery {
    /// Creates a Boolean query from atoms.
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            atoms,
            free_variables: Vec::new(),
        }
    }

    /// True if the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.free_variables.is_empty()
    }

    /// All variables appearing in the query body.
    pub fn variables(&self) -> BTreeSet<String> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// True if no relation name appears in two different atoms.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(a.relation.clone()))
    }

    /// The atoms in which a variable occurs.
    pub fn atoms_with_variable(&self, var: &str) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.variables().contains(var))
            .map(|(i, _)| i)
            .collect()
    }

    /// Parses a query from a textual syntax:
    ///
    /// ```text
    /// query  := (head '<-')? atom (',' atom)*
    /// head   := 'ans' '(' var (',' var)* ')'
    /// atom   := relation '(' term (',' term)* ')' | relation '(' ')'
    /// term   := identifier            (a variable)
    ///         | '"' characters '"'    (a constant)
    /// ```
    ///
    /// Examples: `R(x), S(x, y), T(y)` (Boolean) or
    /// `ans(x) <- R(x, y), S(y, "paris")`.
    pub fn parse(text: &str) -> Result<Self, QueryParseError> {
        let (head, body) = match text.split_once("<-") {
            Some((h, b)) => (Some(h.trim()), b.trim()),
            None => (None, text.trim()),
        };
        let free_variables = match head {
            None => Vec::new(),
            Some(h) => parse_head(h)?,
        };
        let atoms = parse_atoms(body)?;
        if atoms.is_empty() {
            return Err(QueryParseError::EmptyQuery);
        }
        let query = ConjunctiveQuery {
            atoms,
            free_variables,
        };
        let body_vars = query.variables();
        for v in &query.free_variables {
            if !body_vars.contains(v) {
                return Err(QueryParseError::UnboundHeadVariable(v.clone()));
            }
        }
        Ok(query)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.free_variables.is_empty() {
            write!(f, "ans({}) <- ", self.free_variables.join(", "))?;
        }
        let atoms: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", atoms.join(", "))
    }
}

stuc_errors::stuc_error! {
    /// Errors raised when parsing a conjunctive query.
    #[derive(Clone, PartialEq, Eq)]
    pub enum QueryParseError {
        /// The query body has no atoms.
        EmptyQuery,
        /// General syntax error with a human-readable description.
        Syntax(String),
        /// A head variable does not appear in the body.
        UnboundHeadVariable(String),
    }
    display {
        Self::EmptyQuery => "query has no atoms",
        Self::Syntax(s) => "syntax error: {s}",
        Self::UnboundHeadVariable(v) => "head variable {v} does not appear in the body",
    }
}

fn parse_head(text: &str) -> Result<Vec<String>, QueryParseError> {
    let text = text.trim();
    let inner = text
        .strip_prefix("ans")
        .map(str::trim)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| QueryParseError::Syntax(format!("invalid head '{text}'")))?;
    Ok(inner
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect())
}

fn parse_atoms(text: &str) -> Result<Vec<Atom>, QueryParseError> {
    let mut atoms = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| QueryParseError::Syntax(format!("expected '(' in '{rest}'")))?;
        let relation = rest[..open].trim().to_string();
        if relation.is_empty() {
            return Err(QueryParseError::Syntax("missing relation name".to_string()));
        }
        let close = rest[open..]
            .find(')')
            .map(|i| open + i)
            .ok_or_else(|| QueryParseError::Syntax(format!("unclosed '(' in '{rest}'")))?;
        let args_text = &rest[open + 1..close];
        let args = parse_terms(args_text)?;
        atoms.push(Atom { relation, args });
        rest = rest[close + 1..].trim();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim();
        } else if !rest.is_empty() {
            return Err(QueryParseError::Syntax(format!(
                "expected ',' between atoms near '{rest}'"
            )));
        }
    }
    Ok(atoms)
}

fn parse_terms(text: &str) -> Result<Vec<Term>, QueryParseError> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| {
            let t = t.trim();
            if t.is_empty() {
                return Err(QueryParseError::Syntax("empty term".to_string()));
            }
            if (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
                || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2)
            {
                Ok(Term::Const(t[1..t.len() - 1].to_string()))
            } else if t.chars().all(|c| c.is_alphanumeric() || c == '_') {
                Ok(Term::Var(t.to_string()))
            } else {
                Err(QueryParseError::Syntax(format!("invalid term '{t}'")))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_boolean_query() {
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(
            q.variables(),
            BTreeSet::from(["x".to_string(), "y".to_string()])
        );
        assert!(q.is_self_join_free());
    }

    #[test]
    fn parse_query_with_head() {
        let q = ConjunctiveQuery::parse("ans(x) <- R(x, y), S(y, \"paris\")").unwrap();
        assert_eq!(q.free_variables, vec!["x".to_string()]);
        assert_eq!(q.atoms[1].args[1], Term::Const("paris".to_string()));
    }

    #[test]
    fn parse_self_join() {
        let q = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        assert!(!q.is_self_join_free());
    }

    #[test]
    fn parse_nullary_atom() {
        let q = ConjunctiveQuery::parse("Alarm()").unwrap();
        assert_eq!(q.atoms[0].args.len(), 0);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            ConjunctiveQuery::parse(""),
            Err(QueryParseError::EmptyQuery) | Err(QueryParseError::Syntax(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::parse("R(x"),
            Err(QueryParseError::Syntax(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::parse("ans(z) <- R(x)"),
            Err(QueryParseError::UnboundHeadVariable(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::parse("R(x) S(y)"),
            Err(QueryParseError::Syntax(_))
        ));
    }

    #[test]
    fn atoms_with_variable() {
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert_eq!(q.atoms_with_variable("x"), vec![0, 1]);
        assert_eq!(q.atoms_with_variable("y"), vec![1, 2]);
        assert_eq!(q.atoms_with_variable("z"), Vec::<usize>::new());
    }

    #[test]
    fn display_round_trip() {
        let q = ConjunctiveQuery::parse("ans(x) <- R(x, y), S(y, \"c\")").unwrap();
        let shown = q.to_string();
        let reparsed = ConjunctiveQuery::parse(&shown).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn quoted_constants_with_single_quotes() {
        let q = ConjunctiveQuery::parse("R(x, 'a')").unwrap();
        assert_eq!(q.atoms[0].args[1], Term::Const("a".to_string()));
    }
}
