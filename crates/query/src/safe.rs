//! Hierarchical queries and extensional ("safe plan") evaluation on TIDs.
//!
//! The paper contrasts its data-based tractability with the *query*-based
//! dichotomy of Dalvi and Suciu: on arbitrary TID instances, a self-join-free
//! Boolean CQ can be evaluated in polynomial time exactly when it is
//! *hierarchical* (for any two variables, their atom sets are disjoint or
//! nested); otherwise it is `#P`-hard — the canonical example being
//! `∃x y R(x), S(x,y), T(y)` from the paper's introduction.
//!
//! This module implements the hierarchical test and the classic extensional
//! evaluation rules (independent join, independent project) for self-join-
//! free queries. It is the baseline of experiment E5: safe queries are easy
//! for everyone, but for unsafe queries the extensional approach simply gives
//! up, whereas the paper's treewidth-based method still works when the *data*
//! is tree-like.

use crate::cq::{Atom, ConjunctiveQuery, Term};
use std::collections::BTreeSet;
use stuc_data::instance::FactId;
use stuc_data::tid::TidInstance;

/// Why extensional evaluation refused a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafePlanError {
    /// The query has a self-join (two atoms over the same relation), which
    /// the extensional rules do not handle.
    SelfJoin,
    /// The query is not hierarchical, hence unsafe (`#P`-hard in general).
    NotHierarchical,
    /// The query has no atoms.
    EmptyQuery,
}

impl std::fmt::Display for SafePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafePlanError::SelfJoin => write!(f, "query has a self-join"),
            SafePlanError::NotHierarchical => write!(f, "query is not hierarchical (unsafe)"),
            SafePlanError::EmptyQuery => write!(f, "query has no atoms"),
        }
    }
}

impl std::error::Error for SafePlanError {}

/// True if the self-join-free Boolean CQ is hierarchical: for every pair of
/// variables, their atom sets are disjoint or one contains the other.
pub fn is_hierarchical(query: &ConjunctiveQuery) -> bool {
    let vars: Vec<String> = query.variables().into_iter().collect();
    for (i, x) in vars.iter().enumerate() {
        let ax: BTreeSet<usize> = query.atoms_with_variable(x).into_iter().collect();
        for y in &vars[i + 1..] {
            let ay: BTreeSet<usize> = query.atoms_with_variable(y).into_iter().collect();
            let disjoint = ax.is_disjoint(&ay);
            let nested = ax.is_subset(&ay) || ay.is_subset(&ax);
            if !disjoint && !nested {
                return false;
            }
        }
    }
    true
}

/// Computes the probability of a self-join-free Boolean CQ on a TID instance
/// using the extensional safe-plan rules (independent join / independent
/// project / ground-atom base case).
///
/// Returns an error for self-joins and for non-hierarchical (unsafe) queries;
/// the caller is expected to fall back to an intensional method.
pub fn safe_plan_probability(tid: &TidInstance, query: &ConjunctiveQuery) -> Result<f64, SafePlanError> {
    if query.atoms.is_empty() {
        return Err(SafePlanError::EmptyQuery);
    }
    if !query.is_self_join_free() {
        return Err(SafePlanError::SelfJoin);
    }
    if !is_hierarchical(query) {
        return Err(SafePlanError::NotHierarchical);
    }
    evaluate(tid, &query.atoms)
}

fn evaluate(tid: &TidInstance, atoms: &[Atom]) -> Result<f64, SafePlanError> {
    // Base case: all atoms ground → independent existence probabilities.
    if atoms.iter().all(|a| a.variables().is_empty()) {
        let mut p = 1.0;
        for atom in atoms {
            p *= ground_atom_probability(tid, atom);
        }
        return Ok(p);
    }

    // Independent join: split into variable-disjoint components.
    let components = variable_components(atoms);
    if components.len() > 1 {
        let mut p = 1.0;
        for component in components {
            let component_atoms: Vec<Atom> =
                component.into_iter().map(|i| atoms[i].clone()).collect();
            p *= evaluate(tid, &component_atoms)?;
        }
        return Ok(p);
    }

    // Independent project: find a root variable occurring in every non-ground atom.
    let non_ground: Vec<usize> = atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.variables().is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut root: Option<String> = None;
    for v in atoms.iter().flat_map(|a| a.variables()) {
        if non_ground
            .iter()
            .all(|&i| atoms[i].variables().contains(&v))
        {
            root = Some(v);
            break;
        }
    }
    let Some(root) = root else {
        // A single connected component with no root variable: not safe.
        return Err(SafePlanError::NotHierarchical);
    };

    // Candidate constants: every constant appearing at a position of the root
    // variable in some fact of a matching relation.
    let mut candidates: BTreeSet<String> = BTreeSet::new();
    for atom in atoms {
        let Some(relation) = tid.instance().find_relation(&atom.relation) else { continue };
        let positions: Vec<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var() == Some(root.as_str()))
            .map(|(i, _)| i)
            .collect();
        for f in tid.instance().facts_of(relation) {
            let fact = tid.instance().fact(f);
            for &pos in &positions {
                if let Some(&c) = fact.args.get(pos) {
                    candidates.insert(tid.instance().constant_name(c).to_string());
                }
            }
        }
    }

    // Independent project: P = 1 - Π_c (1 - P(q[root := c])).
    let mut product = 1.0;
    for constant in candidates {
        let grounded: Vec<Atom> = atoms
            .iter()
            .map(|a| substitute(a, &root, &constant))
            .collect();
        let p = evaluate(tid, &grounded)?;
        product *= 1.0 - p;
    }
    Ok(1.0 - product)
}

/// Probability that at least one TID fact matches the ground atom.
fn ground_atom_probability(tid: &TidInstance, atom: &Atom) -> f64 {
    let Some(relation) = tid.instance().find_relation(&atom.relation) else { return 0.0 };
    let wanted: Option<Vec<_>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(name) => tid.instance().find_constant(name),
            Term::Var(_) => unreachable!("ground atom has no variables"),
        })
        .collect();
    let Some(wanted) = wanted else { return 0.0 };
    let mut none_present = 1.0;
    let mut found = false;
    for f in tid.instance().facts_of(relation) {
        if tid.instance().fact(f).args == wanted {
            found = true;
            none_present *= 1.0 - tid.probability(FactId(f.0));
        }
    }
    if found { 1.0 - none_present } else { 0.0 }
}

/// Splits atoms into connected components under the "shares a variable"
/// relation; ground atoms each form their own component.
fn variable_components(atoms: &[Atom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if !atoms[i].variables().is_disjoint(&atoms[j].variables()) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    let mut components: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(i);
    }
    components.into_values().collect()
}

/// Substitutes a constant for a variable in an atom.
fn substitute(atom: &Atom, var: &str, constant: &str) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) if v == var => Term::Const(constant.to_string()),
                other => other.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::tid_lineage;
    use stuc_circuit::enumeration::probability_by_enumeration;

    fn star_tid() -> TidInstance {
        // R(a), R(b), S(a, c), S(b, d)
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.5);
        tid.add_fact_named("R", &["b"], 0.25);
        tid.add_fact_named("S", &["a", "c"], 0.8);
        tid.add_fact_named("S", &["b", "d"], 0.4);
        tid
    }

    #[test]
    fn hierarchical_detection() {
        // R(x), S(x, y): at(x) = {0,1}, at(y) = {1} — nested → hierarchical.
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        assert!(is_hierarchical(&q));
        // The paper's hard query is not hierarchical.
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert!(!is_hierarchical(&q));
        // Variable-disjoint atoms are fine.
        let q = ConjunctiveQuery::parse("R(x), T(y)").unwrap();
        assert!(is_hierarchical(&q));
    }

    #[test]
    fn unsafe_query_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert_eq!(
            safe_plan_probability(&tid, &q),
            Err(SafePlanError::NotHierarchical)
        );
    }

    #[test]
    fn self_join_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), R(y)").unwrap();
        assert_eq!(safe_plan_probability(&tid, &q), Err(SafePlanError::SelfJoin));
    }

    #[test]
    fn safe_query_matches_lineage_probability() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional =
            probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!(
            (extensional - intensional).abs() < 1e-12,
            "{extensional} vs {intensional}"
        );
    }

    #[test]
    fn independent_join_of_disjoint_atoms() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(y, z)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        // P(∃x R(x)) = 1 - 0.5·0.75 = 0.625; P(∃yz S(y,z)) = 1 - 0.2·0.6 = 0.88.
        assert!((extensional - 0.625 * 0.88).abs() < 1e-12);
    }

    #[test]
    fn ground_query_probability() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(\"a\")").unwrap();
        assert!((safe_plan_probability(&tid, &q).unwrap() - 0.5).abs() < 1e-12);
        let q = ConjunctiveQuery::parse("R(\"missing\")").unwrap();
        assert_eq!(safe_plan_probability(&tid, &q).unwrap(), 0.0);
    }

    #[test]
    fn single_atom_existential_query() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("S(x, y)").unwrap();
        let p = safe_plan_probability(&tid, &q).unwrap();
        assert!((p - (1.0 - 0.2 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn constants_in_safe_queries() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("S(x, \"c\")").unwrap();
        let p = safe_plan_probability(&tid, &q).unwrap();
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn agreement_with_lineage_on_random_hierarchical_queries() {
        // Larger instance, same hierarchical query, several probability
        // settings: extensional and intensional evaluations must agree.
        let mut tid = TidInstance::new();
        for i in 0..4 {
            tid.add_fact_named("R", &[&format!("a{i}")], 0.3 + 0.1 * i as f64);
            for j in 0..3 {
                tid.add_fact_named("S", &[&format!("a{i}"), &format!("b{j}")], 0.2 + 0.05 * j as f64);
            }
        }
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional =
            probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((extensional - intensional).abs() < 1e-9);
    }

    #[test]
    fn empty_query_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery { atoms: vec![], free_variables: vec![] };
        assert_eq!(safe_plan_probability(&tid, &q), Err(SafePlanError::EmptyQuery));
    }
}
