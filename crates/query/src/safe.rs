//! Hierarchical queries and extensional ("safe plan") evaluation on TIDs.
//!
//! The paper contrasts its data-based tractability with the *query*-based
//! dichotomy of Dalvi and Suciu: on arbitrary TID instances, a self-join-free
//! Boolean CQ can be evaluated in polynomial time exactly when it is
//! *hierarchical* (for any two variables, their atom sets are disjoint or
//! nested); otherwise it is `#P`-hard — the canonical example being
//! `∃x y R(x), S(x,y), T(y)` from the paper's introduction.
//!
//! This module implements the hierarchical test and the classic extensional
//! evaluation rules (independent join, independent project) for self-join-
//! free queries. It is the baseline of experiment E5: safe queries are easy
//! for everyone, but for unsafe queries the extensional approach simply gives
//! up, whereas the paper's treewidth-based method still works when the *data*
//! is tree-like.

use crate::cq::{Atom, ConjunctiveQuery, Term};
use std::collections::{BTreeMap, BTreeSet};
use stuc_data::instance::FactId;
use stuc_data::tid::TidInstance;

stuc_errors::stuc_error! {
    /// Why extensional evaluation refused a query.
    #[derive(Clone, PartialEq, Eq)]
    pub enum SafePlanError {
        /// The query has a self-join (two atoms over the same relation), which
        /// the extensional rules do not handle.
        SelfJoin,
        /// The query is not hierarchical, hence unsafe (`#P`-hard in general).
        NotHierarchical,
        /// The query has no atoms.
        EmptyQuery,
    }
    display {
        Self::SelfJoin => "query has a self-join",
        Self::NotHierarchical => "query is not hierarchical (unsafe)",
        Self::EmptyQuery => "query has no atoms",
    }
}

/// True if the self-join-free Boolean CQ is hierarchical: for every pair of
/// variables, their atom sets are disjoint or one contains the other.
pub fn is_hierarchical(query: &ConjunctiveQuery) -> bool {
    let vars: Vec<String> = query.variables().into_iter().collect();
    for (i, x) in vars.iter().enumerate() {
        let ax: BTreeSet<usize> = query.atoms_with_variable(x).into_iter().collect();
        for y in &vars[i + 1..] {
            let ay: BTreeSet<usize> = query.atoms_with_variable(y).into_iter().collect();
            let disjoint = ax.is_disjoint(&ay);
            let nested = ax.is_subset(&ay) || ay.is_subset(&ax);
            if !disjoint && !nested {
                return false;
            }
        }
    }
    true
}

/// Computes the probability of a self-join-free Boolean CQ on a TID instance
/// using the extensional safe-plan rules (independent join / independent
/// project / ground-atom base case).
///
/// Returns an error for self-joins and for non-hierarchical (unsafe) queries;
/// the caller is expected to fall back to an intensional method.
pub fn safe_plan_probability(
    tid: &TidInstance,
    query: &ConjunctiveQuery,
) -> Result<f64, SafePlanError> {
    if query.atoms.is_empty() {
        return Err(SafePlanError::EmptyQuery);
    }
    if !query.is_self_join_free() {
        return Err(SafePlanError::SelfJoin);
    }
    if !is_hierarchical(query) {
        return Err(SafePlanError::NotHierarchical);
    }
    evaluate(tid, &query.atoms)
}

/// One atom of the residual query plus the facts still compatible with its
/// ground positions. Threading these lists through the recursion is what
/// makes the plan near-linear: the independent-project step partitions each
/// atom's facts by the root constant instead of re-scanning the instance for
/// every candidate grounding.
#[derive(Debug, Clone)]
struct AtomTask {
    atom: Atom,
    facts: Vec<FactId>,
}

fn evaluate(tid: &TidInstance, atoms: &[Atom]) -> Result<f64, SafePlanError> {
    let tasks: Vec<AtomTask> = atoms
        .iter()
        .map(|atom| AtomTask {
            atom: atom.clone(),
            facts: compatible_facts(tid, atom),
        })
        .collect();
    evaluate_tasks(tid, &tasks)
}

/// All facts of the atom's relation whose constants agree with the atom's
/// ground positions (repeated variables are *not* checked here; they are
/// enforced when the variable is grounded).
fn compatible_facts(tid: &TidInstance, atom: &Atom) -> Vec<FactId> {
    let Some(relation) = tid.instance().find_relation(&atom.relation) else {
        return Vec::new();
    };
    let wanted: Vec<Option<stuc_data::instance::ConstId>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(name) => tid.instance().find_constant(name),
            Term::Var(_) => None,
        })
        .collect();
    let is_ground: Vec<bool> = atom.args.iter().map(|t| t.as_var().is_none()).collect();
    // A ground position naming an unknown constant can never match.
    if is_ground
        .iter()
        .zip(&wanted)
        .any(|(&ground, w)| ground && w.is_none())
    {
        return Vec::new();
    }
    tid.instance()
        .facts_of(relation)
        .into_iter()
        .filter(|&f| {
            let args = &tid.instance().fact(f).args;
            args.len() == atom.args.len()
                && args
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| !is_ground[i] || wanted[i] == Some(c))
        })
        .collect()
}

fn evaluate_tasks(tid: &TidInstance, tasks: &[AtomTask]) -> Result<f64, SafePlanError> {
    // Base case: all atoms ground → independent existence probabilities.
    if tasks.iter().all(|t| t.atom.variables().is_empty()) {
        let mut p = 1.0;
        for task in tasks {
            p *= ground_task_probability(tid, task);
        }
        return Ok(p);
    }

    // Independent join: split into variable-disjoint components.
    let atoms: Vec<Atom> = tasks.iter().map(|t| t.atom.clone()).collect();
    let components = variable_components(&atoms);
    if components.len() > 1 {
        let mut p = 1.0;
        for component in components {
            let component_tasks: Vec<AtomTask> =
                component.into_iter().map(|i| tasks[i].clone()).collect();
            p *= evaluate_tasks(tid, &component_tasks)?;
        }
        return Ok(p);
    }

    // Independent project: find a root variable occurring in every non-ground atom.
    let non_ground: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.atom.variables().is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut root: Option<String> = None;
    for v in tasks.iter().flat_map(|t| t.atom.variables()) {
        if non_ground
            .iter()
            .all(|&i| tasks[i].atom.variables().contains(&v))
        {
            root = Some(v);
            break;
        }
    }
    let Some(root) = root else {
        // A single connected component with no root variable: not safe.
        return Err(SafePlanError::NotHierarchical);
    };

    // Partition each atom's compatible facts by the constant they put at the
    // root variable's positions (facts with conflicting constants at two
    // root positions can never match and are dropped). `root_occurs[i]`
    // distinguishes "the root is not in this atom" (fact list passes through
    // unchanged) from "the root is in this atom but no fact satisfies its
    // repeated positions" (fact list becomes empty) — conflating the two
    // would smuggle non-matching facts into the grounded subquery.
    let mut by_constant: Vec<BTreeMap<stuc_data::instance::ConstId, Vec<FactId>>> =
        vec![BTreeMap::new(); tasks.len()];
    let mut root_occurs: Vec<bool> = vec![false; tasks.len()];
    for (i, task) in tasks.iter().enumerate() {
        let positions: Vec<usize> = task
            .atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var() == Some(root.as_str()))
            .map(|(p, _)| p)
            .collect();
        if positions.is_empty() {
            continue;
        }
        root_occurs[i] = true;
        for &f in &task.facts {
            let args = &tid.instance().fact(f).args;
            let first = args[positions[0]];
            if positions.iter().all(|&p| args[p] == first) {
                by_constant[i].entry(first).or_default().push(f);
            }
        }
    }
    let candidates: BTreeSet<stuc_data::instance::ConstId> =
        by_constant.iter().flat_map(|m| m.keys().copied()).collect();

    // Independent project: P = 1 - Π_c (1 - P(q[root := c])).
    let mut product = 1.0;
    for constant in candidates {
        let name = tid.instance().constant_name(constant);
        let grounded: Vec<AtomTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, task)| AtomTask {
                atom: substitute(&task.atom, &root, name),
                facts: if root_occurs[i] {
                    by_constant[i].get(&constant).cloned().unwrap_or_default()
                } else {
                    // The root does not occur in this atom (it was ground
                    // already): its fact list is unchanged.
                    task.facts.clone()
                },
            })
            .collect();
        let p = evaluate_tasks(tid, &grounded)?;
        product *= 1.0 - p;
    }
    Ok(1.0 - product)
}

/// Probability that at least one of the task's remaining facts is present
/// (the atom is fully ground, so every remaining fact matches it exactly).
fn ground_task_probability(tid: &TidInstance, task: &AtomTask) -> f64 {
    if task.facts.is_empty() {
        return 0.0;
    }
    let mut none_present = 1.0;
    for &f in &task.facts {
        none_present *= 1.0 - tid.probability(f);
    }
    1.0 - none_present
}

/// Splits atoms into connected components under the "shares a variable"
/// relation; ground atoms each form their own component.
fn variable_components(atoms: &[Atom]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if !atoms[i].variables().is_disjoint(&atoms[j].variables()) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    let mut components: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(i);
    }
    components.into_values().collect()
}

/// Substitutes a constant for a variable in an atom.
fn substitute(atom: &Atom, var: &str, constant: &str) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) if v == var => Term::Const(constant.to_string()),
                other => other.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::tid_lineage;
    use stuc_circuit::enumeration::probability_by_enumeration;

    fn star_tid() -> TidInstance {
        // R(a), R(b), S(a, c), S(b, d)
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.5);
        tid.add_fact_named("R", &["b"], 0.25);
        tid.add_fact_named("S", &["a", "c"], 0.8);
        tid.add_fact_named("S", &["b", "d"], 0.4);
        tid
    }

    #[test]
    fn hierarchical_detection() {
        // R(x), S(x, y): at(x) = {0,1}, at(y) = {1} — nested → hierarchical.
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        assert!(is_hierarchical(&q));
        // The paper's hard query is not hierarchical.
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert!(!is_hierarchical(&q));
        // Variable-disjoint atoms are fine.
        let q = ConjunctiveQuery::parse("R(x), T(y)").unwrap();
        assert!(is_hierarchical(&q));
    }

    #[test]
    fn unsafe_query_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        assert_eq!(
            safe_plan_probability(&tid, &q),
            Err(SafePlanError::NotHierarchical)
        );
    }

    #[test]
    fn self_join_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), R(y)").unwrap();
        assert_eq!(
            safe_plan_probability(&tid, &q),
            Err(SafePlanError::SelfJoin)
        );
    }

    #[test]
    fn safe_query_matches_lineage_probability() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!(
            (extensional - intensional).abs() < 1e-12,
            "{extensional} vs {intensional}"
        );
    }

    #[test]
    fn independent_join_of_disjoint_atoms() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(x), S(y, z)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        // P(∃x R(x)) = 1 - 0.5·0.75 = 0.625; P(∃yz S(y,z)) = 1 - 0.2·0.6 = 0.88.
        assert!((extensional - 0.625 * 0.88).abs() < 1e-12);
    }

    #[test]
    fn ground_query_probability() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("R(\"a\")").unwrap();
        assert!((safe_plan_probability(&tid, &q).unwrap() - 0.5).abs() < 1e-12);
        let q = ConjunctiveQuery::parse("R(\"missing\")").unwrap();
        assert_eq!(safe_plan_probability(&tid, &q).unwrap(), 0.0);
    }

    #[test]
    fn single_atom_existential_query() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("S(x, y)").unwrap();
        let p = safe_plan_probability(&tid, &q).unwrap();
        assert!((p - (1.0 - 0.2 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn constants_in_safe_queries() {
        let tid = star_tid();
        let q = ConjunctiveQuery::parse("S(x, \"c\")").unwrap();
        let p = safe_plan_probability(&tid, &q).unwrap();
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn agreement_with_lineage_on_random_hierarchical_queries() {
        // Larger instance, same hierarchical query, several probability
        // settings: extensional and intensional evaluations must agree.
        let mut tid = TidInstance::new();
        for i in 0..4 {
            tid.add_fact_named("R", &[&format!("a{i}")], 0.3 + 0.1 * i as f64);
            for j in 0..3 {
                tid.add_fact_named(
                    "S",
                    &[&format!("a{i}"), &format!("b{j}")],
                    0.2 + 0.05 * j as f64,
                );
            }
        }
        let q = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!((extensional - intensional).abs() < 1e-9);
    }

    #[test]
    fn empty_query_is_rejected() {
        let tid = star_tid();
        let q = ConjunctiveQuery {
            atoms: vec![],
            free_variables: vec![],
        };
        assert_eq!(
            safe_plan_probability(&tid, &q),
            Err(SafePlanError::EmptyQuery)
        );
    }

    #[test]
    fn repeated_variable_atom_with_no_matching_fact_contributes_zero() {
        // Regression: `R(x, x), S(x)` on {R(a, b), S(a)} — the only R-fact
        // conflicts at the two x-positions, so no grounding satisfies the
        // R-atom and the probability is exactly 0. A fact list passed
        // through unchanged here (instead of emptied) silently yields 0.25.
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "b"], 0.5);
        tid.add_fact_named("S", &["a"], 0.5);
        let q = ConjunctiveQuery::parse("R(x, x), S(x)").unwrap();
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!(
            (extensional - intensional).abs() < 1e-12,
            "{extensional} vs {intensional}"
        );
        assert_eq!(extensional, 0.0);

        // And with a fact that *does* satisfy the repeated positions the
        // plan must count exactly that fact.
        tid.add_fact_named("R", &["a", "a"], 0.25);
        let extensional = safe_plan_probability(&tid, &q).unwrap();
        let lineage = tid_lineage(&tid, &q);
        let intensional = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        assert!(
            (extensional - intensional).abs() < 1e-12,
            "{extensional} vs {intensional}"
        );
        assert!((extensional - 0.25 * 0.5).abs() < 1e-12);
    }
}
