//! Exact sampling of possible worlds, conditioned on the query holding.
//!
//! One table-retaining sum-product sweep turns the compiled plan into a
//! sampler: a top-down descent re-reads the stored tables, drawing the root
//! bag's assignment proportional to its weighted table and each forgotten
//! gate's value proportional to its two branch weights — the
//! forward-filter / backward-sample scheme of junction trees. Every descent
//! is an **exact** i.i.d. draw from `P(world | query true)`; no Markov
//! chain, no rejection, cost O(plan) per world after the one-off sweep.

use crate::report::InferenceReport;
use crate::world::World;
use crate::{ensure_budget, InferError};
use rand::rngs::SplitMix64;
use rand::Rng;
use std::sync::Arc;
use stuc_circuit::circuit::VarId;
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::plan::{RetainedSweep, SumProduct, SweepPlan};
use stuc_circuit::weights::Weights;
use stuc_obs::Stopwatch;

/// An exact sampler of possible worlds conditioned on the compiled
/// lineage being true.
///
/// Construction pays one table-retaining sweep; every
/// [`WorldSampler::sample`] after that is an independent exact draw. The
/// sampler owns its retained tables and its [`SplitMix64`] stream, so it
/// can outlive the engine call that built it and replay deterministically
/// from its seed.
///
/// **Cloning replays, it does not fork**: a clone carries the parent's RNG
/// state and will emit the *same* world sequence. To draw disjoint streams
/// from one setup sweep (e.g. one clone per thread), call
/// [`WorldSampler::reseed`] on each clone with a distinct seed.
#[derive(Debug, Clone)]
pub struct WorldSampler {
    plan: Arc<SweepPlan>,
    retained: RetainedSweep,
    /// The root-input-weighted root table, computed once at construction so
    /// each draw pays only the O(plan nodes) descent.
    root_weights: Vec<f64>,
    /// Inclusive prefix sums of `root_weights`: the root draw is one
    /// `partition_point` binary search instead of a linear walk over the
    /// (up to `1 << bag`-entry) root table.
    root_cdf: Vec<f64>,
    /// Largest positive-weight root index — the clamp target for the
    /// floating-point slack at the very top of the CDF.
    root_fallback: usize,
    /// Variables the lineage never reads, sampled as independent
    /// Bernoulli(prior) coins.
    independent: Vec<(VarId, f64)>,
    rng: SplitMix64,
    evidence_probability: f64,
    report: InferenceReport,
}

impl WorldSampler {
    /// Builds a sampler for `compiled` under `weights`, seeding its RNG
    /// stream with `seed` (same seed, same worlds).
    ///
    /// Fails when the width exceeds `max_bag_size`, when the circuit is too
    /// wide to plan densely ([`InferError::Unplannable`] — the sampler has
    /// no interpreted fallback), or when the lineage has probability 0
    /// ([`InferError::ImpossibleEvidence`]).
    pub fn new(
        compiled: &CompiledCircuit,
        weights: &Weights,
        max_bag_size: usize,
        seed: u64,
    ) -> Result<WorldSampler, InferError> {
        let started = Stopwatch::start();
        ensure_budget(compiled, max_bag_size)?;
        let Some(plan) = compiled.sweep_plan() else {
            return Err(InferError::Unplannable {
                width: compiled.width(),
            });
        };
        let plan = Arc::clone(plan);
        let retained = plan.run_retained::<SumProduct>(weights)?;
        let root_weights = plan.weighted_root_table(&retained);
        let evidence_probability = retained.value();
        if evidence_probability <= 0.0 {
            return Err(InferError::ImpossibleEvidence);
        }
        let mut running = 0.0f64;
        let mut root_fallback = 0usize;
        let root_cdf: Vec<f64> = root_weights
            .iter()
            .enumerate()
            .map(|(index, &weight)| {
                if weight > 0.0 {
                    root_fallback = index;
                }
                running += weight;
                running
            })
            .collect();
        let circuit_vars = compiled.variables();
        let independent: Vec<(VarId, f64)> = weights
            .iter()
            .filter(|(v, _)| !circuit_vars.contains(v))
            .collect();
        let report = InferenceReport {
            sweeps_run: 1,
            tables_retained: retained.tables_retained(),
            table_entries: retained.table_entries(),
            planned: true,
            lineage_cached: false,
            wall_time: started.elapsed(),
        };
        Ok(WorldSampler {
            plan,
            retained,
            root_weights,
            root_cdf,
            root_fallback,
            independent,
            rng: SplitMix64::new(seed),
            evidence_probability,
            report,
        })
    }

    /// `P(query)` — the probability mass of the worlds being sampled from.
    pub fn evidence_probability(&self) -> f64 {
        self.evidence_probability
    }

    /// Provenance of the sampler's setup sweep.
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// Mutable access to the provenance report, for wrappers (like the
    /// engine) that annotate it — e.g. flagging that the compiled lineage
    /// came from a cache.
    pub fn report_mut(&mut self) -> &mut InferenceReport {
        &mut self.report
    }

    /// Restarts the sampler's RNG stream from `seed` without repeating the
    /// setup sweep — how clones of one sampler are turned into independent
    /// streams.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SplitMix64::new(seed);
    }

    /// Draws one world, exactly proportional to its probability among the
    /// worlds where the query holds.
    pub fn sample(&mut self) -> World {
        // Root choice by binary search over the precomputed CDF (the root
        // table can be huge; every later choice point is a 2-entry slice).
        let total = *self.root_cdf.last().expect("plans are never empty");
        let target = self.rng.random::<f64>() * total;
        let root_pick = self
            .root_cdf
            .partition_point(|&c| c <= target)
            .min(self.root_fallback);
        let rng = &mut self.rng;
        let first = std::cell::Cell::new(Some(root_pick));
        let mut choose = |branch_weights: &[f64]| {
            first
                .take()
                .unwrap_or_else(|| weighted_choice(rng, branch_weights))
        };
        let mut values =
            self.plan
                .descend_with_root(&self.retained, &self.root_weights, &mut choose);
        for &(v, prior) in &self.independent {
            values.push((v, self.rng.random_bool(prior)));
        }
        World::from_values(values)
    }

    /// Draws `count` independent worlds (a convenience loop over
    /// [`WorldSampler::sample`]).
    pub fn sample_many(&mut self, count: usize) -> Vec<World> {
        (0..count).map(|_| self.sample()).collect()
    }
}

/// A batch of exactly sampled worlds with the evidence mass and the
/// provenance of the whole call (setup sweep + all descents).
#[derive(Debug, Clone)]
pub struct SampledWorlds {
    /// The sampled worlds, in draw order.
    pub worlds: Vec<World>,
    /// `P(query)` — the conditioning mass.
    pub evidence_probability: f64,
    /// Provenance: one retained sweep, `worlds.len()` descents.
    pub report: InferenceReport,
}

/// Samples `count` i.i.d. possible worlds conditioned on the lineage being
/// true — the batch API over [`WorldSampler`]. Deterministic per `seed`.
pub fn sample_worlds(
    compiled: &CompiledCircuit,
    weights: &Weights,
    max_bag_size: usize,
    count: usize,
    seed: u64,
) -> Result<SampledWorlds, InferError> {
    let started = Stopwatch::start();
    let mut sampler = WorldSampler::new(compiled, weights, max_bag_size, seed)?;
    let worlds = sampler.sample_many(count);
    let mut report = sampler.report().clone();
    report.wall_time = started.elapsed();
    Ok(SampledWorlds {
        worlds,
        evidence_probability: sampler.evidence_probability(),
        report,
    })
}

/// Draws an index proportional to the (unnormalised, non-negative) weights,
/// never returning a zero-weight index when any weight is positive.
fn weighted_choice(rng: &mut SplitMix64, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = rng.random::<f64>() * total;
    let mut fallback = 0usize;
    for (index, &weight) in weights.iter().enumerate() {
        if weight <= 0.0 {
            continue;
        }
        fallback = index;
        if target < weight {
            return index;
        }
        target -= weight;
    }
    // Floating-point slack at the top of the cumulative walk: return the
    // last positive-weight index.
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stuc_circuit::builder;
    use stuc_circuit::circuit::Circuit;

    fn compile(circuit: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default()).unwrap()
    }

    #[test]
    fn samples_are_deterministic_per_seed_and_satisfy_the_query() {
        let circuit = builder::random_circuit(6, 10, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let compiled = compile(&circuit);
        let a = sample_worlds(&compiled, &weights, 22, 50, 42).unwrap();
        let b = sample_worlds(&compiled, &weights, 22, 50, 42).unwrap();
        assert_eq!(a.worlds, b.worlds, "same seed, same stream");
        let c = sample_worlds(&compiled, &weights, 22, 50, 43).unwrap();
        assert_ne!(a.worlds, c.worlds, "different seed, different stream");
        for world in &a.worlds {
            assert!(world.satisfies(&circuit).unwrap(), "conditioned on query");
        }
        assert_eq!(a.report.sweeps_run, 1);
        assert!(a.report.planned);
    }

    #[test]
    fn empirical_frequency_tracks_the_exact_probability() {
        // (x0 AND x1) OR x2 with p = 0.5 each: conditioned on the output,
        // P(x2 | out) = P(x2) / P(out) = 0.5 / 0.625 = 0.8.
        let mut circuit = Circuit::new();
        let x0 = circuit.add_input(VarId(0));
        let x1 = circuit.add_input(VarId(1));
        let x2 = circuit.add_input(VarId(2));
        let and = circuit.add_and(vec![x0, x1]);
        let or = circuit.add_or(vec![and, x2]);
        circuit.set_output(or);
        let weights = Weights::uniform([VarId(0), VarId(1), VarId(2)], 0.5);
        let compiled = compile(&circuit);
        let mut sampler = WorldSampler::new(&compiled, &weights, 22, 7).unwrap();
        assert!((sampler.evidence_probability() - 0.625).abs() < 1e-12);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| sampler.sample().is_present(VarId(2)))
            .count();
        let frequency = hits as f64 / n as f64;
        assert!(
            (frequency - 0.8).abs() < 0.02,
            "empirical {frequency} vs exact 0.8"
        );
    }

    #[test]
    fn independent_variables_are_sampled_from_their_prior() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        circuit.set_output(x);
        let mut weights = Weights::new();
        weights.set(VarId(0), 0.5);
        weights.set(VarId(9), 0.25); // not read by the lineage
        let compiled = compile(&circuit);
        let mut sampler = WorldSampler::new(&compiled, &weights, 22, 11).unwrap();
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| sampler.sample().is_present(VarId(9)))
            .count();
        let frequency = hits as f64 / n as f64;
        assert!((frequency - 0.25).abs() < 0.02, "empirical {frequency}");
    }

    #[test]
    fn clones_replay_until_reseeded() {
        let circuit = builder::random_circuit(5, 8, 1);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let compiled = compile(&circuit);
        let mut parent = WorldSampler::new(&compiled, &weights, 22, 17).unwrap();
        let mut replay = parent.clone();
        let mut forked = parent.clone();
        forked.reseed(18);
        let from_parent = parent.sample_many(30);
        assert_eq!(
            from_parent,
            replay.sample_many(30),
            "a plain clone replays the parent's stream"
        );
        assert_ne!(
            from_parent,
            forked.sample_many(30),
            "a reseeded clone draws an independent stream"
        );
    }

    #[test]
    fn impossible_evidence_is_refused() {
        let mut circuit = Circuit::new();
        let t = circuit.add_const(false);
        circuit.set_output(t);
        let compiled = compile(&circuit);
        assert!(matches!(
            WorldSampler::new(&compiled, &Weights::new(), 22, 0),
            Err(InferError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn weighted_choice_never_picks_zero_weight_indices() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..2000 {
            let picked = weighted_choice(&mut rng, &[0.0, 0.3, 0.0, 0.7, 0.0]);
            assert!(picked == 1 || picked == 3);
        }
    }
}
