//! All-fact posterior marginals by one backward sweep.
//!
//! The naive route to `P(fact | query)` is one conditioned counting sweep
//! per fact: fix the fact true, re-count, divide by `P(query)` — n + 1
//! sweeps for n facts. The backward (outward) pass computes the same n
//! posteriors in **two** sweeps: the upward pass retains every node table
//! ([`stuc_circuit::plan::SweepPlan::run_retained`]), and a single reverse
//! traversal pushes downward messages from the root, reading off each
//! variable's unnormalised marginal at the unique edge where its input gate
//! leaves scope
//! ([`stuc_circuit::plan::SweepPlan::marginal_numerators`]).

use crate::report::InferenceReport;
use crate::{ensure_budget, InferError};
use std::collections::BTreeMap;
use stuc_circuit::circuit::VarId;
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::plan::SumProduct;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::WmcError;
use stuc_obs::Stopwatch;

/// The posterior marginal `P(v | query)` of every fact variable, together
/// with the evidence probability and the computation's provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginals {
    /// `P(query)` — the evidence mass everything is normalised by.
    pub evidence_probability: f64,
    marginals: BTreeMap<VarId, f64>,
    /// How the marginals were computed (sweeps, retention, wall time).
    pub report: InferenceReport,
}

impl Marginals {
    /// The posterior of `v`, if it was among the weighted variables.
    pub fn get(&self, v: VarId) -> Option<f64> {
        self.marginals.get(&v).copied()
    }

    /// Iterator over `(variable, posterior)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.marginals.iter().map(|(&v, &p)| (v, p))
    }

    /// Number of variables with a posterior.
    pub fn len(&self) -> usize {
        self.marginals.len()
    }

    /// True when no variable has a posterior (an unweighted, constant
    /// lineage).
    pub fn is_empty(&self) -> bool {
        self.marginals.is_empty()
    }
}

/// Computes the posterior marginal `P(v | lineage true)` of **every**
/// weighted variable of `compiled` under `weights`, in one upward + one
/// backward dense sweep (≈2–3× the cost of a single WMC sweep, versus one
/// conditioned sweep *per variable* without the backward pass).
///
/// Variables in `weights` that the circuit never reads are independent of
/// the evidence; their posterior is their prior, included so the result
/// covers the full fact set. Circuits too wide for a dense plan fall back
/// to per-variable conditioned interpreted sweeps (same answers, the old
/// cost — [`InferenceReport::planned`] says which path ran).
///
/// Fails with [`InferError::ImpossibleEvidence`] when `P(lineage) = 0`.
pub fn marginals(
    compiled: &CompiledCircuit,
    weights: &Weights,
    max_bag_size: usize,
) -> Result<Marginals, InferError> {
    let started = Stopwatch::start();
    ensure_budget(compiled, max_bag_size)?;

    let mut report = InferenceReport::default();
    let mut posteriors: BTreeMap<VarId, f64> = BTreeMap::new();
    let evidence = match compiled.sweep_plan() {
        Some(plan) => {
            let plan = plan.clone();
            let retained = plan.run_retained::<SumProduct>(weights)?;
            let evidence = retained.value();
            if evidence <= 0.0 {
                return Err(InferError::ImpossibleEvidence);
            }
            for (v, numerator) in plan.marginal_numerators(&retained) {
                posteriors.insert(v, (numerator / evidence).clamp(0.0, 1.0));
            }
            report.sweeps_run = 2;
            report.tables_retained = retained.tables_retained();
            report.table_entries = retained.table_entries();
            report.planned = true;
            evidence
        }
        None => {
            // Interpreted fallback: one conditioned sparse sweep per
            // circuit variable. Same posteriors, pre-backward-pass cost.
            let evidence = compiled.run_interpreted(weights, max_bag_size)?.probability;
            if evidence <= 0.0 {
                return Err(InferError::ImpossibleEvidence);
            }
            report.sweeps_run = 1;
            for &v in compiled.variables() {
                let prior = weights
                    .weight(v, true)
                    .map_err(|e| InferError::Wmc(WmcError::Circuit(e)))?;
                let posterior = if prior == 0.0 {
                    0.0
                } else {
                    let mut fixed = weights.clone();
                    fixed.fix(v, true);
                    // `fix` gives v weight 1, so the conditioned count is
                    // P(lineage ∧ v) / prior; multiply the prior back in.
                    let conditioned = compiled.run_interpreted(&fixed, max_bag_size)?.probability;
                    report.sweeps_run += 1;
                    (prior * conditioned / evidence).clamp(0.0, 1.0)
                };
                posteriors.insert(v, posterior);
            }
            evidence
        }
    };

    // Variables the lineage never reads are independent of the evidence:
    // posterior = prior.
    for (v, prior) in weights.iter() {
        posteriors.entry(v).or_insert(prior);
    }

    report.wall_time = started.elapsed();
    Ok(Marginals {
        evidence_probability: evidence,
        marginals: posteriors,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stuc_circuit::builder;
    use stuc_circuit::circuit::Circuit;
    use stuc_circuit::enumeration::probability_by_enumeration;

    fn compile(circuit: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default()).unwrap()
    }

    /// Ground-truth posterior by world enumeration.
    fn enumerated_posterior(circuit: &Circuit, weights: &Weights, v: VarId) -> f64 {
        let z = probability_by_enumeration(circuit, weights).unwrap();
        let prior = weights.weight(v, true).unwrap();
        let mut fixed = weights.clone();
        fixed.fix(v, true);
        prior * probability_by_enumeration(circuit, &fixed).unwrap() / z
    }

    #[test]
    fn backward_sweep_matches_enumerated_posteriors() {
        for seed in 0..12 {
            let circuit = builder::random_circuit(7, 12, seed);
            let weights = Weights::uniform(circuit.variables(), 0.3 + 0.05 * (seed % 7) as f64);
            let compiled = compile(&circuit);
            let result = match marginals(&compiled, &weights, 22) {
                Ok(result) => result,
                Err(InferError::ImpossibleEvidence) => continue,
                Err(other) => panic!("{other}"),
            };
            assert!(result.report.planned);
            assert_eq!(result.report.sweeps_run, 2);
            assert!(result.report.tables_retained > 0);
            for &v in &circuit.variables() {
                let expected = enumerated_posterior(&circuit, &weights, v);
                let got = result.get(v).expect("every circuit variable covered");
                assert!(
                    (got - expected).abs() < 1e-9,
                    "seed {seed}, {v}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn unread_variables_keep_their_prior() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        circuit.set_output(x);
        let mut weights = Weights::new();
        weights.set(VarId(0), 0.5);
        weights.set(VarId(7), 0.125); // never read by the lineage
        let result = marginals(&compile(&circuit), &weights, 22).unwrap();
        assert!((result.get(VarId(0)).unwrap() - 1.0).abs() < 1e-12);
        assert!((result.get(VarId(7)).unwrap() - 0.125).abs() < 1e-12);
        assert!((result.evidence_probability - 0.5).abs() < 1e-12);
        assert_eq!(result.len(), 2);
        assert!(!result.is_empty());
        assert_eq!(result.iter().count(), 2);
    }

    #[test]
    fn impossible_evidence_is_refused() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        let not = circuit.add_not(x);
        let and = circuit.add_and(vec![x, not]);
        circuit.set_output(and);
        let weights = Weights::uniform([VarId(0)], 0.5);
        assert!(matches!(
            marginals(&compile(&circuit), &weights, 22),
            Err(InferError::ImpossibleEvidence)
        ));
    }

    #[test]
    fn width_budget_is_enforced() {
        let circuit = builder::majority_like_dense_circuit(10, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        assert!(matches!(
            marginals(&compile(&circuit), &weights, 2),
            Err(InferError::Wmc(WmcError::WidthTooLarge { .. }))
        ));
    }
}
