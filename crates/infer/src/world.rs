//! Concrete possible worlds: one Boolean value per fact variable.

use std::collections::BTreeMap;
use stuc_circuit::circuit::{Circuit, CircuitError, VarId};
use stuc_circuit::weights::Weights;

/// One possible world: a total assignment of the fact (event) variables.
///
/// Produced by the exact sampler ([`crate::WorldSampler`]) and the
/// most-probable-world decoder ([`crate::most_probable_world`]); `true`
/// means the fact is present in the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    values: BTreeMap<VarId, bool>,
}

impl World {
    /// A world from explicit `(variable, value)` pairs; later duplicates
    /// overwrite earlier ones.
    pub fn from_values(values: impl IntoIterator<Item = (VarId, bool)>) -> Self {
        World {
            values: values.into_iter().collect(),
        }
    }

    /// The value of `v`, if this world assigns one.
    pub fn get(&self, v: VarId) -> Option<bool> {
        self.values.get(&v).copied()
    }

    /// True when `v` is assigned `true` (absent variables count as false —
    /// the closed-world reading of a sampled instance).
    pub fn is_present(&self, v: VarId) -> bool {
        self.get(v).unwrap_or(false)
    }

    /// The variables assigned `true`, in increasing order — the facts of
    /// the sampled instance.
    pub fn present(&self) -> impl Iterator<Item = VarId> + '_ {
        self.values.iter().filter_map(|(&v, &b)| b.then_some(v))
    }

    /// Iterator over every `(variable, value)` pair, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, bool)> + '_ {
        self.values.iter().map(|(&v, &b)| (v, b))
    }

    /// The full assignment as a map, the shape
    /// [`Circuit::evaluate`] consumes.
    pub fn values(&self) -> &BTreeMap<VarId, bool> {
        &self.values
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the world assigns no variable at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The world's prior probability: the product of `w(v, value)` over
    /// every assigned variable. Fails if `weights` misses one of them.
    pub fn probability(&self, weights: &Weights) -> Result<f64, CircuitError> {
        let mut p = 1.0;
        for (&v, &value) in &self.values {
            p *= weights.weight(v, value)?;
        }
        Ok(p)
    }

    /// Whether the world satisfies `circuit` (evaluates its output to
    /// true). Fails if the circuit reads a variable this world leaves
    /// unassigned.
    pub fn satisfies(&self, circuit: &Circuit) -> Result<bool, CircuitError> {
        circuit.evaluate(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_accessors_and_probability() {
        let world = World::from_values([(VarId(0), true), (VarId(2), false), (VarId(5), true)]);
        assert_eq!(world.len(), 3);
        assert!(!world.is_empty());
        assert_eq!(world.get(VarId(0)), Some(true));
        assert_eq!(world.get(VarId(1)), None);
        assert!(world.is_present(VarId(5)));
        assert!(!world.is_present(VarId(2)));
        assert!(!world.is_present(VarId(99)));
        assert_eq!(
            world.present().collect::<Vec<_>>(),
            vec![VarId(0), VarId(5)]
        );

        let mut weights = Weights::new();
        weights.set(VarId(0), 0.5);
        weights.set(VarId(2), 0.25);
        weights.set(VarId(5), 0.8);
        let p = world.probability(&weights).unwrap();
        assert!((p - 0.5 * 0.75 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn satisfies_evaluates_the_circuit() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        let y = circuit.add_input(VarId(1));
        let and = circuit.add_and(vec![x, y]);
        circuit.set_output(and);
        let yes = World::from_values([(VarId(0), true), (VarId(1), true)]);
        let no = World::from_values([(VarId(0), true), (VarId(1), false)]);
        assert!(yes.satisfies(&circuit).unwrap());
        assert!(!no.satisfies(&circuit).unwrap());
        let partial = World::from_values([(VarId(0), true)]);
        assert!(partial.satisfies(&circuit).is_err());
    }
}
