#![warn(missing_docs)]
//! # stuc-infer — posterior inference on compiled lineage circuits
//!
//! Weighted model counting answers one question about an uncertain
//! database: *what is the probability that the query holds?* But the same
//! message-passing structure that computes that number — the dense-table
//! sweep over a tree decomposition of the lineage circuit
//! ([`stuc_circuit::plan::SweepPlan`]) — supports a whole family of richer
//! workloads, the "next-step" tasks the paper's line of work calls out
//! (sampling, ranked answers, explanations). This crate opens three of
//! them, all running at compiled-plan speed on a
//! [`stuc_circuit::compiled::CompiledCircuit`]:
//!
//! * [`marginals`](fn@marginals) — the **backward (outward) sweep**: after
//!   one table-retaining upward pass, a single reverse traversal combines
//!   upward and downward messages into the posterior marginal
//!   `P(fact | query)` of *every* fact variable at once, ~2 sweeps total
//!   instead of one conditioned re-evaluation per fact.
//! * [`WorldSampler`] — **exact world sampling**: top-down stochastic
//!   descent through the retained tables draws i.i.d. possible worlds
//!   exactly proportional to their probability, conditioned on the query
//!   holding, with a seedable [`rand::rngs::SplitMix64`] stream and a batch
//!   API ([`sample_worlds`]).
//! * [`most_probable_world`] — **max-product (Viterbi)**: the same sweep in
//!   the [`stuc_circuit::plan::MaxProduct`] semiring, decoded by an argmax
//!   descent, returns the single most probable world satisfying the query
//!   and its probability.
//!
//! Fact variables the lineage never mentions are independent of the
//! evidence, so their posterior is their prior; all three tasks handle them
//! directly from the weight table (prior marginal, Bernoulli draw, argmax
//! value) and report over the *full* variable set.
//!
//! Every result carries an [`InferenceReport`] saying how it was computed:
//! sweeps run, dense tables retained, whether the compiled plan or the
//! interpreted fallback served, and wall time. The engine in `stuc-core`
//! surfaces all of this as `Engine::marginals`, `Engine::sample_worlds` and
//! `Engine::most_probable_world`, sharing its compiled-lineage cache so one
//! cached compilation serves WMC and every inference mode.

pub mod marginals;
pub mod mpe;
pub mod report;
pub mod sampler;
pub mod world;

pub use marginals::{marginals, Marginals};
pub use mpe::{most_probable_world, MostProbableWorld};
pub use report::InferenceReport;
pub use sampler::{sample_worlds, SampledWorlds, WorldSampler};
pub use world::World;

use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::wmc::WmcError;

stuc_errors::stuc_error! {
    /// Why a posterior-inference task could not run.
    #[derive(Clone, PartialEq)]
    pub enum InferError {
        /// The underlying counting sweep refused (width over the budget, a
        /// variable without a weight, ...).
        Wmc(WmcError),
        /// The evidence — the query lineage — has probability 0, so the
        /// posterior distribution conditioned on it is undefined: there is
        /// nothing to marginalise over, sample from, or maximise.
        ImpossibleEvidence,
        /// The circuit's bags are too wide for a dense sweep plan
        /// ([`stuc_circuit::plan::MAX_PLANNED_BAG`]); sampling and
        /// most-probable-world need the retained plan tables and have no
        /// interpreted fallback.
        Unplannable {
            /// Width of the circuit-graph decomposition.
            width: usize,
        },
    }
    display {
        Self::Wmc(e) => "{e}",
        Self::ImpossibleEvidence => "the query lineage has probability 0; posterior inference conditioned on it is undefined",
        Self::Unplannable { width } => "circuit decomposition width {width} exceeds the dense sweep-plan budget; world sampling and most-probable-world need a compiled plan",
    }
    from {
        WmcError => Wmc,
    }
}

/// Enforces the caller's evaluation-time width budget — the same refusal
/// the counting back-end produces ([`CompiledCircuit::ensure_width`]).
pub(crate) fn ensure_budget(
    compiled: &CompiledCircuit,
    max_bag_size: usize,
) -> Result<(), InferError> {
    Ok(compiled.ensure_width(max_bag_size)?)
}
