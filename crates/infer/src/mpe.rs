//! Most-probable-world (MPE) decoding by a max-product sweep.
//!
//! Swapping the sweep's sum for a max ([`stuc_circuit::plan::MaxProduct`])
//! turns weighted model counting into Viterbi: the root aggregate becomes
//! the weight of the *single heaviest* consistent, query-satisfying
//! assignment, and an argmax descent through the retained tables decodes
//! which world achieves it. Same plan, same tables, one comparison swapped —
//! the payoff of the semiring-generic inner loop.

use crate::report::InferenceReport;
use crate::world::World;
use crate::{ensure_budget, InferError};
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::plan::MaxProduct;
use stuc_circuit::weights::Weights;
use stuc_obs::Stopwatch;

/// The most probable world satisfying the compiled lineage, with its
/// (prior, unnormalised) probability and the computation's provenance.
#[derive(Debug, Clone)]
pub struct MostProbableWorld {
    /// The argmax world: a total assignment of every weighted variable.
    pub world: World,
    /// The world's probability `∏ w(v, value)` — the maximum over all
    /// worlds where the query holds. Divide by `P(query)` for the posterior
    /// mode's conditional probability.
    pub probability: f64,
    /// How the answer was computed (one max-product sweep + one descent).
    pub report: InferenceReport,
}

/// Computes the single most probable world in which the lineage holds —
/// one max-product table-retaining sweep plus an argmax descent.
///
/// Variables the lineage never reads are independent: they take their
/// individually most likely value (`true` iff prior > 1/2, ties to
/// `false`), and the returned probability includes their `max(p, 1-p)`
/// factors, so it is the true maximum over worlds on the *full* variable
/// set. Ties between worlds are broken deterministically (lowest branch
/// value first).
///
/// Fails with [`InferError::ImpossibleEvidence`] when no world satisfies
/// the lineage (or all satisfying worlds have probability 0), and with
/// [`InferError::Unplannable`] when the circuit is too wide for a dense
/// plan.
pub fn most_probable_world(
    compiled: &CompiledCircuit,
    weights: &Weights,
    max_bag_size: usize,
) -> Result<MostProbableWorld, InferError> {
    let started = Stopwatch::start();
    ensure_budget(compiled, max_bag_size)?;
    let Some(plan) = compiled.sweep_plan() else {
        return Err(InferError::Unplannable {
            width: compiled.width(),
        });
    };
    let retained = plan.run_retained::<MaxProduct>(weights)?;
    let mut probability = retained.value();
    if probability <= 0.0 {
        return Err(InferError::ImpossibleEvidence);
    }
    let mut choose = |branch_weights: &[f64]| -> usize {
        let mut best = 0usize;
        for (index, &weight) in branch_weights.iter().enumerate() {
            if weight > branch_weights[best] {
                best = index;
            }
        }
        best
    };
    let mut values = plan.descend(&retained, &mut choose);

    // Independent variables take their individually most likely value.
    let circuit_vars = compiled.variables();
    for (v, prior) in weights.iter() {
        if circuit_vars.contains(&v) {
            continue;
        }
        values.push((v, prior > 0.5));
        probability *= prior.max(1.0 - prior);
    }

    let world = World::from_values(values);
    debug_assert!(
        world
            .probability(weights)
            .map(|decoded| (decoded - probability).abs() <= 1e-9 * probability.max(1.0))
            .unwrap_or(false),
        "descent must decode a world of the max-product weight"
    );
    Ok(MostProbableWorld {
        world,
        probability,
        report: InferenceReport {
            sweeps_run: 1,
            tables_retained: retained.tables_retained(),
            table_entries: retained.table_entries(),
            planned: true,
            lineage_cached: false,
            wall_time: started.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stuc_circuit::builder;
    use stuc_circuit::circuit::{Circuit, VarId};

    fn compile(circuit: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default()).unwrap()
    }

    /// Ground truth: enumerate every world over the weighted variables and
    /// keep the heaviest one satisfying the circuit.
    fn enumerate_best(circuit: &Circuit, weights: &Weights) -> Option<f64> {
        let vars: Vec<VarId> = weights.iter().map(|(v, _)| v).collect();
        let mut best: Option<f64> = None;
        for mask in 0u64..(1 << vars.len()) {
            let world = World::from_values(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (mask >> i) & 1 == 1)),
            );
            if !world.satisfies(circuit).unwrap() {
                continue;
            }
            let p = world.probability(weights).unwrap();
            best = Some(best.map_or(p, |b: f64| b.max(p)));
        }
        best
    }

    #[test]
    fn mpe_weight_matches_enumeration_on_random_circuits() {
        for seed in 0..15 {
            let circuit = builder::random_circuit(6, 11, seed);
            let mut weights = Weights::new();
            for (i, v) in circuit.variables().into_iter().enumerate() {
                weights.set(v, 0.15 + 0.1 * ((seed as usize + i) % 8) as f64);
            }
            let compiled = compile(&circuit);
            match most_probable_world(&compiled, &weights, 22) {
                Ok(result) => {
                    let best = enumerate_best(&circuit, &weights).expect("satisfiable");
                    assert!(
                        (result.probability - best).abs() < 1e-9,
                        "seed {seed}: {} vs {best}",
                        result.probability
                    );
                    assert!(result.world.satisfies(&circuit).unwrap());
                    let decoded = result.world.probability(&weights).unwrap();
                    assert!((decoded - result.probability).abs() < 1e-9);
                }
                Err(InferError::ImpossibleEvidence) => {
                    assert_eq!(enumerate_best(&circuit, &weights), None, "seed {seed}");
                }
                Err(other) => panic!("seed {seed}: {other}"),
            }
        }
    }

    #[test]
    fn independent_variables_take_their_modal_value() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        circuit.set_output(x);
        let mut weights = Weights::new();
        weights.set(VarId(0), 0.4);
        weights.set(VarId(3), 0.9); // independent, mode = true
        weights.set(VarId(4), 0.1); // independent, mode = false
        let result = most_probable_world(&compile(&circuit), &weights, 22).unwrap();
        assert_eq!(result.world.get(VarId(0)), Some(true), "evidence forces x0");
        assert_eq!(result.world.get(VarId(3)), Some(true));
        assert_eq!(result.world.get(VarId(4)), Some(false));
        assert!((result.probability - 0.4 * 0.9 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn unsatisfiable_lineage_is_refused() {
        let mut circuit = Circuit::new();
        let f = circuit.add_const(false);
        circuit.set_output(f);
        assert!(matches!(
            most_probable_world(&compile(&circuit), &Weights::new(), 22),
            Err(InferError::ImpossibleEvidence)
        ));
    }
}
