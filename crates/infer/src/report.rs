//! How an inference result was computed: the [`InferenceReport`] attached
//! to every marginal table, sample batch and most-probable-world answer.

use std::time::Duration;

/// Provenance of one posterior-inference computation.
///
/// The interesting trade-off the numbers expose: the backward sweep answers
/// *all* marginals in `sweeps_run = 2` dense passes, where the naive
/// approach pays one conditioned counting sweep per fact — at the price of
/// `tables_retained` node tables held live instead of the sweep's usual
/// peak-live arena.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InferenceReport {
    /// Dense (or interpreted-fallback) sweeps over the decomposition this
    /// task ran: 2 for plan-based marginals (up + down), 1 for a sampler or
    /// max-product setup (the descents replay stored tables and are not
    /// sweeps), `1 + n` for the conditioned-fallback marginal path.
    pub sweeps_run: usize,
    /// Dense node tables retained alive for backward passes and descents
    /// (0 on the interpreted fallback, which retains nothing).
    pub tables_retained: usize,
    /// Total `f64` entries across the retained tables — the memory cost of
    /// retention, in units of 8 bytes.
    pub table_entries: usize,
    /// True when the compiled dense sweep plan served; false on the
    /// interpreted conditioned-sweep fallback (marginals only).
    pub planned: bool,
    /// True when the engine served the compiled lineage from its cache (set
    /// by `stuc-core`; always false when calling `stuc-infer` directly).
    pub lineage_cached: bool,
    /// Wall-clock time of the whole task, sweeps and decoding included.
    pub wall_time: Duration,
}
