//! Bench-trajectory parsing and regression gating — the library behind the
//! `stuc-benchdiff` binary.
//!
//! The committed `BENCH_*.json` files are JSON-lines append logs: every CI
//! run (or curated local run) appends one row per `(suite, case)` with the
//! numbers that run measured. That makes each file a *trajectory* — and a
//! trajectory is checkable: the newest row of a case should not be much
//! worse than the best the case has ever been. This module parses the rows
//! (hand-rolled JSON scanner; the container is offline and the workspace
//! takes no new dependencies), validates them against the row schema, and
//! applies the regression gate:
//!
//! * `best_ns` rows (lower is better): newest vs. the minimum of all prior
//!   rows of the same case; regression when `newest > best * (1 + tol)`.
//! * `rate_per_sec` rows (higher is better): newest vs. the maximum prior;
//!   regression when `newest < best * (1 - tol)`.
//! * count-only and histogram rows are validated but not gated — they
//!   record workload shape (rejection counts, latency buckets), not speed.
//!
//! The default tolerance is 25%: generous enough for shared-runner noise on
//! the committed trajectories, tight enough to catch a real pessimization.
//! Cases with a single row pass vacuously (nothing to compare).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default regression tolerance: newest may be up to 25% worse than the
/// best prior measurement before the gate trips.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, bools)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` — every bench number fits
/// (nanosecond counts stay below 2^53 by ~3 months of wall time).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source key order (bench rows never repeat keys).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `text` (trailing whitespace allowed,
/// anything else is an error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::String(key) => key,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex =
                                    std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (bytes is valid UTF-8:
                        // it came from a &str).
                        let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                        let c = rest.chars().next().expect("non-empty by the match");
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
            text.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("not a number: {text:?}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Row schema
// ---------------------------------------------------------------------------

/// One validated bench row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Suite tag (`"a2"`, `"a7"`, …).
    pub suite: String,
    /// Case name, unique within a suite per run.
    pub case: String,
    /// Best-of-N wall time in nanoseconds (timing rows).
    pub best_ns: Option<u64>,
    /// Throughput in operations per second (rate rows).
    pub rate_per_sec: Option<f64>,
    /// An event count (count rows and histogram rows).
    pub count: Option<u64>,
    /// Speedup factor vs. the row's designated baseline, informational.
    pub speedup_vs_baseline: Option<f64>,
    /// 1-based line number in its source file, for error messages.
    pub line: usize,
}

/// Every key the row schema knows. Anything else is a schema error — the
/// row logs are an interface, and typos silently dropping a measurement
/// are exactly what `--validate` exists to catch.
const KNOWN_KEYS: &[&str] = &[
    "suite",
    "case",
    "best_ns",
    "rate_per_sec",
    "count",
    "speedup_vs_baseline",
    "p50_ns",
    "p90_ns",
    "p99_ns",
    "buckets",
];

fn non_negative_int(row: &Json, key: &str) -> Result<Option<u64>, String> {
    match row.get(key) {
        None => Ok(None),
        Some(value) => {
            let n = value
                .as_f64()
                .ok_or_else(|| format!("{key} must be a number"))?;
            if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
                return Err(format!("{key} must be a non-negative integer, got {n}"));
            }
            Ok(Some(n as u64))
        }
    }
}

/// Validates one parsed line against the row schema.
pub fn validate_row(value: &Json, line: usize) -> Result<BenchRow, String> {
    let Json::Object(members) = value else {
        return Err("row must be a JSON object".into());
    };
    for (key, _) in members {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?}"));
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for (key, _) in members {
        if seen.contains(&key.as_str()) {
            return Err(format!("duplicate key {key:?}"));
        }
        seen.push(key);
    }
    let suite = value
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing string key \"suite\"")?
        .to_string();
    let case = value
        .get("case")
        .and_then(Json::as_str)
        .ok_or("missing string key \"case\"")?
        .to_string();
    if suite.is_empty() || case.is_empty() {
        return Err("suite and case must be non-empty".into());
    }
    let best_ns = non_negative_int(value, "best_ns")?;
    let count = non_negative_int(value, "count")?;
    let rate_per_sec = match value.get("rate_per_sec") {
        None => None,
        Some(rate) => {
            let rate = rate.as_f64().ok_or("rate_per_sec must be a number")?;
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(format!("rate_per_sec must be finite and >= 0, got {rate}"));
            }
            Some(rate)
        }
    };
    let speedup_vs_baseline = match value.get("speedup_vs_baseline") {
        None => None,
        Some(speedup) => {
            let speedup = speedup
                .as_f64()
                .ok_or("speedup_vs_baseline must be a number")?;
            if !(speedup.is_finite() && speedup > 0.0) {
                return Err(format!(
                    "speedup_vs_baseline must be finite and > 0, got {speedup}"
                ));
            }
            Some(speedup)
        }
    };
    // Percentile fields: valid standalone (stuc-loadgen logs exact tail
    // latencies that way) or alongside a histogram's count + buckets.
    // Informational either way — tail latency under load is too noisy on
    // shared runners to gate at a fixed tolerance.
    let mut has_percentile = false;
    for pct in ["p50_ns", "p90_ns", "p99_ns"] {
        if value.get(pct).is_some() {
            non_negative_int(value, pct)?;
            has_percentile = true;
        }
    }
    if best_ns.is_none() && count.is_none() && !has_percentile {
        return Err("row carries no measurement (best_ns, count, or a percentile)".into());
    }
    // Histogram bucket arrays must be cumulative: counts non-decreasing,
    // bounds strictly increasing.
    if let Some(buckets) = value.get("buckets") {
        let Json::Array(buckets) = buckets else {
            return Err("buckets must be an array".into());
        };
        let mut last_le = None;
        let mut last_count = None;
        for (i, bucket) in buckets.iter().enumerate() {
            let le = non_negative_int(bucket, "le_ns")?
                .ok_or_else(|| format!("bucket {i} lacks le_ns"))?;
            let bucket_count = non_negative_int(bucket, "count")?
                .ok_or_else(|| format!("bucket {i} lacks count"))?;
            if let Json::Object(members) = bucket {
                if members.len() != 2 {
                    return Err(format!("bucket {i} has extra keys"));
                }
            }
            if last_le.is_some_and(|prev| le <= prev) {
                return Err(format!("bucket {i} bound {le} not increasing"));
            }
            if last_count.is_some_and(|prev| bucket_count < prev) {
                return Err(format!("bucket {i} count {bucket_count} decreasing"));
            }
            last_le = Some(le);
            last_count = Some(bucket_count);
        }
    }
    Ok(BenchRow {
        suite,
        case,
        best_ns,
        rate_per_sec,
        count,
        speedup_vs_baseline,
        line,
    })
}

/// Parses and validates a whole JSON-lines file. Blank lines are allowed;
/// every error is reported with its line number, and one bad line does not
/// hide the rest.
pub fn parse_rows(text: &str) -> (Vec<BenchRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_json(line).and_then(|value| validate_row(&value, line_no)) {
            Ok(row) => rows.push(row),
            Err(error) => errors.push(format!("line {line_no}: {error}")),
        }
    }
    (rows, errors)
}

// ---------------------------------------------------------------------------
// The regression gate
// ---------------------------------------------------------------------------

/// The verdict for one `(suite, case)` trajectory with at least two
/// comparable measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDiff {
    /// Suite tag.
    pub suite: String,
    /// Case name.
    pub case: String,
    /// What was compared: `"best_ns"` or `"rate_per_sec"`.
    pub metric: &'static str,
    /// The best prior measurement (min ns / max rate).
    pub best_prior: f64,
    /// The newest measurement.
    pub newest: f64,
    /// Signed relative change, positive = worse (slower / lower rate).
    pub ratio_worse: f64,
    /// `ratio_worse > tolerance`.
    pub regressed: bool,
}

/// Compares every case's newest measurement against its best prior one.
/// Cases with fewer than two rows of a metric are skipped (no trajectory
/// yet). Rows are assumed to be in append order, as `parse_rows` returns
/// them.
pub fn diff_rows(rows: &[BenchRow], tolerance: f64) -> Vec<CaseDiff> {
    // (suite, case) → ordered best_ns / rate trajectories.
    let mut times: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    let mut rates: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for row in rows {
        let key = (row.suite.clone(), row.case.clone());
        if let Some(ns) = row.best_ns {
            times.entry(key.clone()).or_default().push(ns as f64);
        }
        if let Some(rate) = row.rate_per_sec {
            rates.entry(key).or_default().push(rate);
        }
    }
    let mut diffs = Vec::new();
    for ((suite, case), trajectory) in &times {
        if trajectory.len() < 2 {
            continue;
        }
        let newest = *trajectory.last().expect("len >= 2");
        let best_prior = trajectory[..trajectory.len() - 1]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // Lower is better; guard the all-zero case (0 → 0 is no change).
        let ratio_worse = if best_prior > 0.0 {
            newest / best_prior - 1.0
        } else if newest > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        diffs.push(CaseDiff {
            suite: suite.clone(),
            case: case.clone(),
            metric: "best_ns",
            best_prior,
            newest,
            ratio_worse,
            regressed: ratio_worse > tolerance,
        });
    }
    for ((suite, case), trajectory) in &rates {
        if trajectory.len() < 2 {
            continue;
        }
        let newest = *trajectory.last().expect("len >= 2");
        let best_prior = trajectory[..trajectory.len() - 1]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // Higher is better.
        let ratio_worse = if best_prior > 0.0 {
            1.0 - newest / best_prior
        } else {
            0.0
        };
        diffs.push(CaseDiff {
            suite: suite.clone(),
            case: case.clone(),
            metric: "rate_per_sec",
            best_prior,
            newest,
            ratio_worse,
            regressed: ratio_worse > tolerance,
        });
    }
    diffs
}

/// Renders the diff table: one aligned line per compared case, regressions
/// marked, sorted worst-first within each metric.
pub fn render_table(diffs: &[CaseDiff], tolerance: f64) -> String {
    let mut sorted: Vec<&CaseDiff> = diffs.iter().collect();
    sorted.sort_by(|a, b| {
        b.ratio_worse
            .partial_cmp(&a.ratio_worse)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let case_width = sorted
        .iter()
        .map(|d| d.suite.len() + d.case.len() + 1)
        .chain(std::iter::once("suite/case".len()))
        .max()
        .unwrap_or(10);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<case_width$}  {:>12}  {:>14}  {:>14}  {:>8}  verdict",
        "suite/case", "metric", "best prior", "newest", "change"
    );
    for diff in sorted {
        let name = format!("{}/{}", diff.suite, diff.case);
        let (prior, newest) = match diff.metric {
            "best_ns" => (
                format!("{} ns", diff.best_prior as u64),
                format!("{} ns", diff.newest as u64),
            ),
            _ => (
                format!("{:.1}/s", diff.best_prior),
                format!("{:.1}/s", diff.newest),
            ),
        };
        let _ = writeln!(
            out,
            "{:<case_width$}  {:>12}  {:>14}  {:>14}  {:>+7.1}%  {}",
            name,
            diff.metric,
            prior,
            newest,
            diff.ratio_worse * 100.0,
            if diff.regressed { "REGRESSION" } else { "ok" }
        );
    }
    let regressions = diffs.iter().filter(|d| d.regressed).count();
    let _ = writeln!(
        out,
        "{} case(s) compared, {} regression(s) beyond {:.0}%",
        diffs.len(),
        regressions,
        tolerance * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_bench_files() -> Vec<std::path::PathBuf> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let mut files: Vec<_> = std::fs::read_dir(&root)
            .expect("repo root listable")
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn every_committed_trajectory_parses_validates_and_passes_the_gate() {
        let files = committed_bench_files();
        assert!(!files.is_empty(), "no BENCH_*.json at the repo root");
        for path in files {
            let text = std::fs::read_to_string(&path).unwrap();
            let (rows, errors) = parse_rows(&text);
            assert!(errors.is_empty(), "{}: {errors:?}", path.display());
            assert!(!rows.is_empty(), "{}: no rows", path.display());
            let diffs = diff_rows(&rows, DEFAULT_TOLERANCE);
            let regressed: Vec<_> = diffs.iter().filter(|d| d.regressed).collect();
            assert!(
                regressed.is_empty(),
                "{}: committed trajectory regresses: {regressed:?}",
                path.display()
            );
        }
    }

    #[test]
    fn an_injected_regression_trips_the_gate_and_shows_in_the_table() {
        let log = r#"{"suite":"x","case":"sweep","best_ns":1000}
{"suite":"x","case":"sweep","best_ns":900}
{"suite":"x","case":"sweep","best_ns":1200}
{"suite":"x","case":"steady","best_ns":500}
{"suite":"x","case":"steady","best_ns":510}
"#;
        let (rows, errors) = parse_rows(log);
        assert!(errors.is_empty(), "{errors:?}");
        let diffs = diff_rows(&rows, DEFAULT_TOLERANCE);
        // sweep: newest 1200 vs best prior 900 → +33% → regression.
        let sweep = diffs
            .iter()
            .find(|d| d.case == "sweep")
            .expect("sweep compared");
        assert!(sweep.regressed, "{sweep:?}");
        assert!((sweep.ratio_worse - 1.0 / 3.0).abs() < 1e-9);
        // steady: +2% → fine.
        let steady = diffs
            .iter()
            .find(|d| d.case == "steady")
            .expect("steady compared");
        assert!(!steady.regressed, "{steady:?}");
        let table = render_table(&diffs, DEFAULT_TOLERANCE);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("x/sweep"), "{table}");
        assert!(table.contains("1 regression(s) beyond 25%"), "{table}");
    }

    #[test]
    fn a_throughput_drop_is_a_regression_a_latency_drop_is_not() {
        let log = r#"{"suite":"x","case":"rate","best_ns":100,"rate_per_sec":1000.0}
{"suite":"x","case":"rate","best_ns":100,"rate_per_sec":600.0}
"#;
        let (rows, errors) = parse_rows(log);
        assert!(errors.is_empty(), "{errors:?}");
        let diffs = diff_rows(&rows, DEFAULT_TOLERANCE);
        let rate = diffs
            .iter()
            .find(|d| d.metric == "rate_per_sec")
            .expect("rate compared");
        assert!(rate.regressed, "rate 1000 → 600 is a 40% drop: {rate:?}");
        let time = diffs
            .iter()
            .find(|d| d.metric == "best_ns")
            .expect("time compared");
        assert!(!time.regressed, "{time:?}");
    }

    #[test]
    fn single_row_cases_pass_vacuously() {
        let (rows, errors) = parse_rows(r#"{"suite":"x","case":"only","best_ns":5}"#);
        assert!(errors.is_empty());
        assert!(diff_rows(&rows, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn validate_rejects_malformed_rows_with_line_numbers() {
        let log = r#"{"suite":"x","case":"ok","best_ns":5}
{"suite":"x","best_ns":5}
{"suite":"x","case":"neg","best_ns":-1}
{"suite":"x","case":"none"}
{"suite":"x","case":"typo","best_nanos":5}
not json at all
{"suite":"x","case":"frac","best_ns":1.5}
"#;
        let (rows, errors) = parse_rows(log);
        assert_eq!(rows.len(), 1, "only the first row is valid");
        assert_eq!(errors.len(), 6, "{errors:?}");
        assert!(errors[0].starts_with("line 2: missing string key \"case\""));
        assert!(errors[1].contains("non-negative integer"));
        assert!(errors[2].contains("no measurement"));
        assert!(errors[3].contains("unknown key \"best_nanos\""));
        assert!(errors[4].starts_with("line 6:"));
        assert!(errors[5].contains("non-negative integer"));
    }

    #[test]
    fn histogram_rows_validate_their_buckets() {
        let good = r#"{"suite":"x","case":"h","count":10,"p50_ns":5,"buckets":[{"le_ns":1,"count":2},{"le_ns":2,"count":10}]}"#;
        let (rows, errors) = parse_rows(good);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(rows[0].count, Some(10));

        let decreasing = r#"{"suite":"x","case":"h","count":10,"buckets":[{"le_ns":1,"count":5},{"le_ns":2,"count":3}]}"#;
        let (_, errors) = parse_rows(decreasing);
        assert!(errors[0].contains("decreasing"), "{errors:?}");

        let unordered = r#"{"suite":"x","case":"h","count":10,"buckets":[{"le_ns":5,"count":1},{"le_ns":2,"count":3}]}"#;
        let (_, errors) = parse_rows(unordered);
        assert!(errors[0].contains("not increasing"), "{errors:?}");
    }
}
