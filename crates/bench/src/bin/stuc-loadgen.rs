//! `stuc-loadgen` — drives a `stuc-serve` instance at high connection
//! counts and records service-level numbers (p50/p90/p99 latency,
//! queries/sec, overload behaviour) to `BENCH_a7.json`, plus the full
//! latency histogram and server-side `/metrics` counter deltas to
//! `BENCH_a8.json`.
//!
//! Two phases:
//!
//! 1. **Throughput** — N client threads (default 1000, each a real TCP
//!    connection per request, rotating over a mix of safe-plan and
//!    circuit-bound goals so the engine's sharded caches see both routes)
//!    hammer an in-process server sized for the load. Records p50/p99
//!    latency and queries/sec.
//! 2. **Overload probe** — a deliberately tiny server (1 worker, queue of
//!    2) under a burst of concurrent clients. Admission control must answer
//!    every surplus connection with a typed `503 overload` immediately:
//!    the probe asserts rejections happened, every client got *some*
//!    complete response (no hangs), and records the rejection count.
//!
//! Offline-container friendly: `std::net` + threads only. Client threads
//! use small stacks so 1000+ of them fit comfortably.
//!
//! ```text
//! cargo run --release -p stuc-bench --bin stuc-loadgen
//! stuc-loadgen --connections 1000 --requests 3000   # explicit sizing
//! stuc-loadgen --addr 127.0.0.1:7878                # drive an external server
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stuc_bench::{report_value, BenchSummary};
use stuc_core::serve::{ServeConfig, Server, ServiceState};
use stuc_core::Engine;
use stuc_obs::metrics::Histogram;

const SUITE: &str = "a7";

/// The observability suite: full latency histograms and server-side
/// `/metrics` deltas land in `BENCH_a8.json`, next to a7's quantiles.
const OBS_SUITE: &str = "a8";

/// The served workload: a probabilistic path relation. Anchored self-join
/// goals over it route to the circuit; the open scan routes to the safe
/// plan.
fn path_program(edges: usize) -> String {
    let mut program = String::new();
    for i in 0..edges {
        program.push_str(&format!("0.5 :: R(\"v{i}\", \"v{}\").\n", i + 1));
    }
    program
}

/// The goal mix, rotated over by request index: mostly warm repeats (the
/// service case), a few distinct anchors (cache diversity), one safe scan.
fn goal_mix() -> Vec<String> {
    let mut goals: Vec<String> = (0..6)
        .map(|k| format!("?- R(\"v{k}\", x), R(x, y), R(y, z)."))
        .collect();
    goals.push("?- R(x, y).".to_string());
    goals.push("?- R(x, y), R(y, z).".to_string());
    goals
}

/// One request over a fresh connection; returns (status, latency).
fn one_request(addr: SocketAddr, body: &str, timeout: Duration) -> Option<(u16, Duration)> {
    let started = Instant::now();
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut stream = stream;
    let request = format!(
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    // A complete response carries the full declared body.
    let body_len: usize = response
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let payload = response.split("\r\n\r\n").nth(1)?;
    if payload.len() != body_len {
        return None;
    }
    Some((status, started.elapsed()))
}

struct PhaseOutcome {
    latencies: Vec<Duration>,
    ok: u64,
    overloaded: u64,
    failed: u64,
    wall: Duration,
}

/// Fans `total_requests` over `connections` client threads against `addr`.
fn drive(
    addr: SocketAddr,
    connections: usize,
    total_requests: usize,
    timeout: Duration,
) -> PhaseOutcome {
    let goals = goal_mix();
    let cursor = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let all_latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(total_requests));
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let goals = &goals;
                let cursor = &cursor;
                let ok = &ok;
                let overloaded = &overloaded;
                let failed = &failed;
                let all_latencies = &all_latencies;
                std::thread::Builder::new()
                    .stack_size(128 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut local = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= total_requests {
                                break;
                            }
                            let goal = &goals[index % goals.len()];
                            match one_request(addr, goal, timeout) {
                                Some((200, latency)) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                    local.push(latency);
                                }
                                Some((503, latency)) => {
                                    overloaded.fetch_add(1, Ordering::Relaxed);
                                    local.push(latency);
                                }
                                Some(_) | None => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        all_latencies
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .extend(local);
                    })
                    .expect("spawn loadgen client thread")
            })
            .collect();
        for handle in handles {
            handle.join().expect("loadgen client panicked");
        }
    });
    let mut latencies = all_latencies
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    latencies.sort_unstable();
    PhaseOutcome {
        latencies,
        ok: ok.into_inner(),
        overloaded: overloaded.into_inner(),
        failed: failed.into_inner(),
        wall: started.elapsed(),
    }
}

/// Scrapes one single-sample metric from the server's `GET /metrics`
/// Prometheus exposition (`None` when the request fails or the family is
/// absent — e.g. against an external server without observability).
fn scrape_metric(addr: SocketAddr, name: &str, timeout: Duration) -> Option<f64> {
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut stream = stream;
    stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let body = response.split("\r\n\r\n").nth(1)?;
    body.lines().find_map(|line| {
        line.strip_prefix(name)?
            .strip_prefix(' ')?
            .parse::<f64>()
            .ok()
    })
}

/// The server-side counters whose phase-1 deltas a8 records: how much
/// engine and cache work the request herd actually caused.
const SCRAPED_COUNTERS: [&str; 4] = [
    "stuc_serve_requests_total",
    "stuc_engine_evaluate_goal_total",
    "stuc_cache_lineage_hits_total",
    "stuc_cache_lineage_misses_total",
];

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let mut connections = 1000usize;
    let mut total_requests = 3000usize;
    let mut external_addr: Option<SocketAddr> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: stuc-loadgen [--connections N] [--requests N] [--addr HOST:PORT]");
                return;
            }
            "--connections" => {
                connections = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --connections needs a number");
                    std::process::exit(2);
                })
            }
            "--requests" => {
                total_requests = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --requests needs a number");
                    std::process::exit(2);
                })
            }
            "--addr" => {
                external_addr =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("error: --addr needs HOST:PORT");
                        std::process::exit(2);
                    }))
            }
            other => {
                eprintln!("error: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let timeout = Duration::from_secs(120);
    let mut summary = BenchSummary::new(SUITE);
    let mut obs_summary = BenchSummary::new(OBS_SUITE);

    // --- phase 1: throughput at high connection count ----------------------
    let own_server = if external_addr.is_none() {
        let state = ServiceState::from_program(Engine::new(), &path_program(60))
            .expect("workload program is well-formed");
        let config = ServeConfig {
            // Admit the whole connection herd: this phase measures service
            // latency, not rejection (phase 2 covers that).
            queue_capacity: connections.max(1024) * 2,
            io_timeout: timeout,
            ..ServeConfig::default()
        };
        Some(Server::spawn(config, state).expect("bind loadgen server"))
    } else {
        None
    };
    let addr = external_addr.unwrap_or_else(|| own_server.as_ref().unwrap().addr());
    report_value(
        SUITE,
        "phase1",
        format!("{connections} connections x {total_requests} requests against {addr}"),
    );
    // Counter baselines before the herd: the registry is process-cumulative,
    // so a8 records deltas, not absolutes.
    let baselines: Vec<Option<f64>> = SCRAPED_COUNTERS
        .iter()
        .map(|name| scrape_metric(addr, name, timeout))
        .collect();
    let outcome = drive(addr, connections, total_requests, timeout);
    assert_eq!(
        outcome.failed, 0,
        "throughput phase must not drop requests (ok={}, overloaded={}, failed={})",
        outcome.ok, outcome.overloaded, outcome.failed
    );
    for (name, baseline) in SCRAPED_COUNTERS.iter().zip(&baselines) {
        let Some(after) = scrape_metric(addr, name, timeout) else {
            continue; // e.g. an external server without observability
        };
        // Families register lazily; absent at baseline means zero so far.
        let before = baseline.unwrap_or(0.0);
        let delta = (after - before).max(0.0).round() as u64;
        report_value(SUITE, &format!("{name}_delta"), delta);
        obs_summary.record_count(&format!("{name}_delta_{connections}conns"), delta);
    }
    let p50 = percentile(&outcome.latencies, 0.50);
    let p90 = percentile(&outcome.latencies, 0.90);
    let p99 = percentile(&outcome.latencies, 0.99);
    // The full distribution, not just quantiles: every client-observed
    // latency lands in one histogram over the standard bucket ladder.
    let latency_histogram = Histogram::latency();
    for latency in &outcome.latencies {
        latency_histogram.observe(*latency);
    }
    obs_summary.record_histogram(
        &format!("serve_latency_{connections}conns"),
        &latency_histogram,
    );
    report_value(SUITE, "completed", outcome.ok + outcome.overloaded);
    report_value(SUITE, "p50_latency", format!("{p50:?}"));
    report_value(SUITE, "p90_latency", format!("{p90:?}"));
    report_value(SUITE, "p99_latency", format!("{p99:?}"));
    report_value(
        SUITE,
        "queries_per_sec",
        format!(
            "{:.1}",
            outcome.ok as f64 / outcome.wall.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    );
    summary.record(&format!("serve_p50_latency_{connections}conns"), p50);
    summary.record(&format!("serve_p90_latency_{connections}conns"), p90);
    summary.record(&format!("serve_p99_latency_{connections}conns"), p99);
    summary.record_rate(
        &format!("serve_throughput_{connections}conns"),
        outcome.ok,
        outcome.wall,
    );
    if let Some(server) = own_server {
        let stats = server.stats();
        report_value(SUITE, "server_stats", format!("{stats:?}"));
        server.shutdown();
    }

    // --- phase 2: overload probe (admission control) -----------------------
    if external_addr.is_none() {
        let state = ServiceState::from_program(Engine::new(), &path_program(60))
            .expect("workload program is well-formed");
        let tiny = Server::spawn(
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                io_timeout: timeout,
                ..ServeConfig::default()
            },
            state,
        )
        .expect("bind overload server");
        let burst = drive(tiny.addr(), 64, 256, timeout);
        let stats = tiny.stats();
        report_value(
            SUITE,
            "overload_probe",
            format!(
                "ok={} overloaded={} failed={} server={stats:?}",
                burst.ok, burst.overloaded, burst.failed
            ),
        );
        assert_eq!(
            burst.failed, 0,
            "overload must degrade to typed rejections, never to hangs or dropped connections"
        );
        assert!(
            burst.overloaded > 0,
            "a 64-client burst against a 1-worker/queue-2 server must trip admission control"
        );
        assert_eq!(burst.ok + burst.overloaded, 256, "every request answered");
        summary.record_count("serve_overload_rejections_64burst", burst.overloaded);
        tiny.shutdown();
    }

    summary.write();
    obs_summary.write();
}
