//! `stuc-loadgen` — drives a `stuc-serve` instance at high connection
//! counts and records service-level numbers (p50/p90/p99 latency,
//! queries/sec, overload behaviour) to `BENCH_a7.json`, plus the full
//! latency histogram and server-side `/metrics` counter deltas to
//! `BENCH_a8.json`.
//!
//! Three phases:
//!
//! 1. **Throughput** — N client threads (default 1000, each a real TCP
//!    connection per request, rotating over a mix of safe-plan and
//!    circuit-bound goals so the engine's sharded caches see both routes)
//!    hammer an in-process server sized for the load. Records p50/p99
//!    latency and queries/sec.
//! 2. **Overload probe** — a deliberately tiny server (1 worker, queue of
//!    2) under a burst of concurrent clients. Admission control must answer
//!    every surplus connection with a typed `503 overload` immediately;
//!    clients retry those with capped exponential backoff + decorrelated
//!    jitter (honoring `Retry-After`), so every request is eventually
//!    answered: the probe asserts retries happened, nothing hung, and
//!    records attempted/retried/failed counts.
//! 3. **Degradation probe** — a tiny server with a cost ceiling between a
//!    cheap and an expensive goal, saturated by both herds at once: every
//!    cheap goal must keep answering (retrying through overload), while
//!    the expensive herd must see `503 shed` responses.
//!
//! Offline-container friendly: `std::net` + threads only. Client threads
//! use small stacks so 1000+ of them fit comfortably.
//!
//! ```text
//! cargo run --release -p stuc-bench --bin stuc-loadgen
//! stuc-loadgen --connections 1000 --requests 3000   # explicit sizing
//! stuc-loadgen --addr 127.0.0.1:7878                # drive an external server
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stuc_bench::{report_value, BenchSummary, Quantile};
use stuc_core::serve::{ServeConfig, Server, ServiceState};
use stuc_core::Engine;
use stuc_obs::metrics::Histogram;

const SUITE: &str = "a7";

/// The observability suite: full latency histograms and server-side
/// `/metrics` deltas land in `BENCH_a8.json`, next to a7's quantiles.
const OBS_SUITE: &str = "a8";

/// The served workload: a probabilistic path relation. Anchored self-join
/// goals over it route to the circuit; the open scan routes to the safe
/// plan.
fn path_program(edges: usize) -> String {
    let mut program = String::new();
    for i in 0..edges {
        program.push_str(&format!("0.5 :: R(\"v{i}\", \"v{}\").\n", i + 1));
    }
    program
}

/// The goal mix, rotated over by request index: mostly warm repeats (the
/// service case), a few distinct anchors (cache diversity), one safe scan.
fn goal_mix() -> Vec<String> {
    let mut goals: Vec<String> = (0..6)
        .map(|k| format!("?- R(\"v{k}\", x), R(x, y), R(y, z)."))
        .collect();
    goals.push("?- R(x, y).".to_string());
    goals.push("?- R(x, y), R(y, z).".to_string());
    goals
}

/// One parsed reply: status, client-observed latency, the `Retry-After`
/// seconds when the server sent one, and whether the 503 was a cost-ceiling
/// shed (as opposed to a queue-full overload).
struct Reply {
    status: u16,
    latency: Duration,
    retry_after: Option<u64>,
    shed: bool,
}

/// One request over a fresh connection; `None` on any transport failure or
/// truncated response.
fn one_request(addr: SocketAddr, body: &str, timeout: Duration) -> Option<Reply> {
    let started = Instant::now();
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut stream = stream;
    let request = format!(
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    // A complete response carries the full declared body.
    let body_len: usize = response
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let payload = response.split("\r\n\r\n").nth(1)?;
    if payload.len() != body_len {
        return None;
    }
    let retry_after = response
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .and_then(|v| v.trim().parse().ok());
    Some(Reply {
        status,
        latency: started.elapsed(),
        retry_after,
        shed: payload.contains("\"kind\":\"shed\""),
    })
}

/// `splitmix64`: a tiny deterministic PRNG for backoff jitter — no `rand`
/// dependency in the binary, and per-thread seeds keep runs reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Retry policy for 503 responses: capped exponential backoff with
/// decorrelated jitter (each sleep drawn uniformly from
/// `[floor, 3 × previous]`, clamped to `cap`), where the floor honors the
/// server's `Retry-After` when present.
#[derive(Clone, Copy)]
struct RetryPolicy {
    max_attempts: u32,
    base: Duration,
    cap: Duration,
}

impl RetryPolicy {
    /// Retries enabled: up to 4 attempts, 50 ms base, 2 s cap.
    fn on() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// A single attempt — 503s are terminal (the degradation probe counts
    /// shed responses instead of retrying them away).
    fn off() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// The next decorrelated-jitter sleep after `previous`, floored at the
    /// server's `Retry-After` (when any) and clamped to the cap.
    fn backoff(&self, rng: &mut Rng, previous: Duration, retry_after: Option<u64>) -> Duration {
        let floor = retry_after
            .map(Duration::from_secs)
            .unwrap_or(self.base)
            .min(self.cap);
        let high = (previous * 3).clamp(floor + Duration::from_millis(1), self.cap.max(floor));
        let span_ms = (high - floor).as_millis().max(1) as u64;
        floor + Duration::from_millis(rng.next() % span_ms)
    }
}

/// What one logical request (including its retries) amounted to.
enum RequestOutcome {
    Ok(Duration),
    Shed(Duration),
    Overloaded(Duration),
    Failed,
}

/// One logical request: retries 503s per `policy`, returns the terminal
/// outcome plus how many retries it took.
fn request_with_retries(
    addr: SocketAddr,
    body: &str,
    timeout: Duration,
    policy: RetryPolicy,
    rng: &mut Rng,
) -> (RequestOutcome, u64) {
    let mut retried = 0u64;
    let mut previous = policy.base;
    loop {
        match one_request(addr, body, timeout) {
            Some(reply) if reply.status == 200 => {
                return (RequestOutcome::Ok(reply.latency), retried)
            }
            Some(reply) if reply.status == 503 => {
                if retried + 1 < policy.max_attempts as u64 {
                    let sleep = policy.backoff(rng, previous, reply.retry_after);
                    previous = sleep;
                    retried += 1;
                    std::thread::sleep(sleep);
                    continue;
                }
                let outcome = if reply.shed {
                    RequestOutcome::Shed(reply.latency)
                } else {
                    RequestOutcome::Overloaded(reply.latency)
                };
                return (outcome, retried);
            }
            Some(_) | None => return (RequestOutcome::Failed, retried),
        }
    }
}

#[derive(Default)]
struct PhaseOutcome {
    latencies: Vec<Duration>,
    ok: u64,
    overloaded: u64,
    shed: u64,
    failed: u64,
    attempted: u64,
    retried: u64,
    wall: Duration,
}

/// Fans `total_requests` over `connections` client threads against `addr`,
/// rotating over `goals` and retrying 503s per `policy`.
fn drive(
    addr: SocketAddr,
    connections: usize,
    total_requests: usize,
    timeout: Duration,
    goals: &[String],
    policy: RetryPolicy,
) -> PhaseOutcome {
    let cursor = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let all_latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(total_requests));
    let started = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|thread_index| {
                let cursor = &cursor;
                let ok = &ok;
                let overloaded = &overloaded;
                let shed = &shed;
                let failed = &failed;
                let retried = &retried;
                let all_latencies = &all_latencies;
                std::thread::Builder::new()
                    .stack_size(128 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut rng = Rng(0x5AFE_u64 ^ ((thread_index as u64) << 17));
                        let mut local = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= total_requests {
                                break;
                            }
                            let goal = &goals[index % goals.len()];
                            let (outcome, retries) =
                                request_with_retries(addr, goal, timeout, policy, &mut rng);
                            retried.fetch_add(retries, Ordering::Relaxed);
                            match outcome {
                                RequestOutcome::Ok(latency) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                    local.push(latency);
                                }
                                RequestOutcome::Shed(latency) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    local.push(latency);
                                }
                                RequestOutcome::Overloaded(latency) => {
                                    overloaded.fetch_add(1, Ordering::Relaxed);
                                    local.push(latency);
                                }
                                RequestOutcome::Failed => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        all_latencies
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .extend(local);
                    })
                    .expect("spawn loadgen client thread")
            })
            .collect();
        for handle in handles {
            handle.join().expect("loadgen client panicked");
        }
    });
    let mut latencies = all_latencies
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    latencies.sort_unstable();
    let completed = ok.load(Ordering::Relaxed)
        + overloaded.load(Ordering::Relaxed)
        + shed.load(Ordering::Relaxed)
        + failed.load(Ordering::Relaxed);
    PhaseOutcome {
        latencies,
        ok: ok.into_inner(),
        overloaded: overloaded.into_inner(),
        shed: shed.into_inner(),
        failed: failed.into_inner(),
        attempted: completed + retried.load(Ordering::Relaxed),
        retried: retried.into_inner(),
        wall: started.elapsed(),
    }
}

/// Scrapes one single-sample metric from the server's `GET /metrics`
/// Prometheus exposition (`None` when the request fails or the family is
/// absent — e.g. against an external server without observability).
fn scrape_metric(addr: SocketAddr, name: &str, timeout: Duration) -> Option<f64> {
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut stream = stream;
    stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let body = response.split("\r\n\r\n").nth(1)?;
    body.lines().find_map(|line| {
        line.strip_prefix(name)?
            .strip_prefix(' ')?
            .parse::<f64>()
            .ok()
    })
}

/// The server-side counters whose phase-1 deltas a8 records: how much
/// engine and cache work the request herd actually caused.
const SCRAPED_COUNTERS: [&str; 4] = [
    "stuc_serve_requests_total",
    "stuc_engine_evaluate_goal_total",
    "stuc_cache_lineage_hits_total",
    "stuc_cache_lineage_misses_total",
];

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let mut connections = 1000usize;
    let mut total_requests = 3000usize;
    let mut external_addr: Option<SocketAddr> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: stuc-loadgen [--connections N] [--requests N] [--addr HOST:PORT]");
                return;
            }
            "--connections" => {
                connections = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --connections needs a number");
                    std::process::exit(2);
                })
            }
            "--requests" => {
                total_requests = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --requests needs a number");
                    std::process::exit(2);
                })
            }
            "--addr" => {
                external_addr =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("error: --addr needs HOST:PORT");
                        std::process::exit(2);
                    }))
            }
            other => {
                eprintln!("error: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let timeout = Duration::from_secs(120);
    let mut summary = BenchSummary::new(SUITE);
    let mut obs_summary = BenchSummary::new(OBS_SUITE);

    // --- phase 1: throughput at high connection count ----------------------
    let own_server = if external_addr.is_none() {
        let state = ServiceState::from_program(Engine::new(), &path_program(60))
            .expect("workload program is well-formed");
        let config = ServeConfig {
            // Admit the whole connection herd: this phase measures service
            // latency, not rejection (phase 2 covers that).
            queue_capacity: connections.max(1024) * 2,
            io_timeout: timeout,
            ..ServeConfig::default()
        };
        Some(Server::spawn(config, state).expect("bind loadgen server"))
    } else {
        None
    };
    let addr = external_addr.unwrap_or_else(|| own_server.as_ref().unwrap().addr());
    report_value(
        SUITE,
        "phase1",
        format!("{connections} connections x {total_requests} requests against {addr}"),
    );
    // Counter baselines before the herd: the registry is process-cumulative,
    // so a8 records deltas, not absolutes.
    let baselines: Vec<Option<f64>> = SCRAPED_COUNTERS
        .iter()
        .map(|name| scrape_metric(addr, name, timeout))
        .collect();
    let outcome = drive(
        addr,
        connections,
        total_requests,
        timeout,
        &goal_mix(),
        RetryPolicy::on(),
    );
    assert_eq!(
        outcome.failed, 0,
        "throughput phase must not drop requests (ok={}, overloaded={}, failed={})",
        outcome.ok, outcome.overloaded, outcome.failed
    );
    report_value(
        SUITE,
        "phase1_requests",
        format!(
            "attempted={} retried={} ok={} overloaded={} shed={} failed={}",
            outcome.attempted,
            outcome.retried,
            outcome.ok,
            outcome.overloaded,
            outcome.shed,
            outcome.failed
        ),
    );
    for (name, baseline) in SCRAPED_COUNTERS.iter().zip(&baselines) {
        let Some(after) = scrape_metric(addr, name, timeout) else {
            continue; // e.g. an external server without observability
        };
        // Families register lazily; absent at baseline means zero so far.
        let before = baseline.unwrap_or(0.0);
        let delta = (after - before).max(0.0).round() as u64;
        report_value(SUITE, &format!("{name}_delta"), delta);
        obs_summary.record_count(&format!("{name}_delta_{connections}conns"), delta);
    }
    let p50 = percentile(&outcome.latencies, 0.50);
    let p90 = percentile(&outcome.latencies, 0.90);
    let p99 = percentile(&outcome.latencies, 0.99);
    // The full distribution, not just quantiles: every client-observed
    // latency lands in one histogram over the standard bucket ladder.
    let latency_histogram = Histogram::latency();
    for latency in &outcome.latencies {
        latency_histogram.observe(*latency);
    }
    obs_summary.record_histogram(
        &format!("serve_latency_{connections}conns"),
        &latency_histogram,
    );
    report_value(SUITE, "completed", outcome.ok + outcome.overloaded);
    report_value(SUITE, "p50_latency", format!("{p50:?}"));
    report_value(SUITE, "p90_latency", format!("{p90:?}"));
    report_value(SUITE, "p99_latency", format!("{p99:?}"));
    report_value(
        SUITE,
        "queries_per_sec",
        format!(
            "{:.1}",
            outcome.ok as f64 / outcome.wall.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    );
    summary.record_percentile(
        &format!("serve_p50_latency_{connections}conns"),
        Quantile::P50,
        p50,
    );
    summary.record_percentile(
        &format!("serve_p90_latency_{connections}conns"),
        Quantile::P90,
        p90,
    );
    summary.record_percentile(
        &format!("serve_p99_latency_{connections}conns"),
        Quantile::P99,
        p99,
    );
    summary.record_rate(
        &format!("serve_throughput_{connections}conns"),
        outcome.ok,
        outcome.wall,
    );
    if let Some(server) = own_server {
        let stats = server.stats();
        report_value(SUITE, "server_stats", format!("{stats:?}"));
        server.shutdown();
    }

    // --- phase 2: overload probe (admission control + retry policy) --------
    if external_addr.is_none() {
        let state = ServiceState::from_program(Engine::new(), &path_program(60))
            .expect("workload program is well-formed");
        let tiny = Server::spawn(
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                io_timeout: timeout,
                ..ServeConfig::default()
            },
            state,
        )
        .expect("bind overload server");
        let burst = drive(
            tiny.addr(),
            64,
            256,
            timeout,
            &goal_mix(),
            RetryPolicy::on(),
        );
        let stats = tiny.stats();
        report_value(
            SUITE,
            "overload_probe",
            format!(
                "attempted={} retried={} ok={} overloaded={} failed={} server={stats:?}",
                burst.attempted, burst.retried, burst.ok, burst.overloaded, burst.failed
            ),
        );
        assert_eq!(
            burst.failed, 0,
            "overload must degrade to typed rejections, never to hangs or dropped connections"
        );
        assert!(
            burst.retried > 0 || burst.overloaded > 0,
            "a 64-client burst against a 1-worker/queue-2 server must trip admission control"
        );
        assert_eq!(burst.ok + burst.overloaded, 256, "every request answered");
        summary.record_count("serve_overload_rejections_64burst", stats.rejected_overload);
        summary.record_count("serve_retries_64burst", burst.retried);
        tiny.shutdown();
    }

    // --- phase 3: degradation probe (cost-ceiling shedding) ----------------
    if external_addr.is_none() {
        let state = ServiceState::from_program(Engine::new(), &path_program(60))
            .expect("workload program is well-formed");
        let cheap_goal = "?- R(\"v0\", x).".to_string();
        let pricey_goal = "?- R(\"v0\", x), R(x, y), R(y, z), R(z, w).".to_string();
        let cheap_cost = state.estimate_cost(&cheap_goal).expect("estimate cheap");
        let pricey_cost = state.estimate_cost(&pricey_goal).expect("estimate pricey");
        assert!(
            pricey_cost > cheap_cost,
            "the cost model must separate the probe goals ({cheap_cost} vs {pricey_cost})"
        );
        let degraded = Server::spawn(
            ServeConfig {
                workers: 1,
                queue_capacity: 8,
                io_timeout: timeout,
                shed_cost_ceiling: Some((cheap_cost + pricey_cost) / 2.0),
                ..ServeConfig::default()
            },
            state,
        )
        .expect("bind degradation server");
        let addr = degraded.addr();
        // Both herds at once: the cheap one retries through overload and
        // must land every request; the expensive one takes 503s as
        // terminal so sheds are observable.
        let (cheap, pricey) = std::thread::scope(|scope| {
            let cheap =
                scope.spawn(|| drive(addr, 8, 64, timeout, &[cheap_goal], RetryPolicy::on()));
            let pricey =
                scope.spawn(|| drive(addr, 8, 64, timeout, &[pricey_goal], RetryPolicy::off()));
            (
                cheap.join().expect("cheap herd"),
                pricey.join().expect("pricey herd"),
            )
        });
        let stats = degraded.stats();
        report_value(
            SUITE,
            "degradation_probe",
            format!(
                "cheap: ok={} retried={} failed={} | pricey: ok={} shed={} overloaded={} failed={} | server={stats:?}",
                cheap.ok,
                cheap.retried,
                cheap.failed,
                pricey.ok,
                pricey.shed,
                pricey.overloaded,
                pricey.failed
            ),
        );
        assert_eq!(cheap.failed, 0, "cheap herd must never hang or drop");
        assert_eq!(pricey.failed, 0, "pricey herd must never hang or drop");
        assert_eq!(
            cheap.ok, 64,
            "every cheap goal must keep answering under saturation (shed={}, overloaded={})",
            cheap.shed, cheap.overloaded
        );
        assert!(
            pricey.shed > 0 || stats.shed > 0,
            "the expensive herd must trip cost-ceiling shedding: {stats:?}"
        );
        summary.record_count("serve_degradation_cheap_ok_64", cheap.ok);
        summary.record_count("serve_degradation_shed_64", stats.shed);
        degraded.shutdown();
    }

    summary.write();
    obs_summary.write();
}
