//! `stuc-benchdiff` — the bench-trajectory regression gate.
//!
//! The committed `BENCH_*.json` files are JSON-lines append logs of bench
//! measurements. This tool parses them, validates every row against the
//! schema, and compares each case's newest measurement with the best one
//! seen earlier in its trajectory:
//!
//! ```text
//! stuc-benchdiff                      # gate BENCH_*.json in the cwd
//! stuc-benchdiff --threshold 10 ...   # tighten the tolerance to 10%
//! stuc-benchdiff --validate ...       # schema-check only, no gate
//! stuc-benchdiff BENCH_a2.json        # explicit files
//! ```
//!
//! Exit status: 0 clean, 1 a case regressed beyond the tolerance, 2 a file
//! was unreadable or a row failed validation.

use std::process::ExitCode;

use stuc_bench::benchdiff::{diff_rows, parse_rows, render_table, BenchRow, DEFAULT_TOLERANCE};

const USAGE: &str = "usage: stuc-benchdiff [--threshold PCT] [--validate] [FILES...]\n\
  --threshold PCT  regression tolerance in percent (default 25)\n\
  --validate       schema-check the rows and stop (no regression gate)\n\
  FILES            JSON-lines bench logs (default: BENCH_*.json in the cwd)";

fn default_files() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut validate_only = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--validate" => validate_only = true,
            "--threshold" => {
                let Some(pct) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --threshold needs a number (percent)\n{USAGE}");
                    return ExitCode::from(2);
                };
                if !(pct.is_finite() && pct >= 0.0) {
                    eprintln!("error: --threshold must be finite and >= 0");
                    return ExitCode::from(2);
                }
                tolerance = pct / 100.0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        files = default_files();
    }
    if files.is_empty() {
        eprintln!("error: no BENCH_*.json files found (pass paths explicitly)\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut all_rows: Vec<BenchRow> = Vec::new();
    let mut invalid = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: {file}: {error}");
                invalid = true;
                continue;
            }
        };
        let (rows, errors) = parse_rows(&text);
        for error in &errors {
            eprintln!("error: {file}: {error}");
        }
        invalid |= !errors.is_empty();
        println!("{file}: {} row(s), {} error(s)", rows.len(), errors.len());
        all_rows.extend(rows);
    }
    if invalid {
        return ExitCode::from(2);
    }
    if validate_only {
        println!(
            "{} row(s) validated across {} file(s)",
            all_rows.len(),
            files.len()
        );
        return ExitCode::SUCCESS;
    }

    let diffs = diff_rows(&all_rows, tolerance);
    print!("{}", render_table(&diffs, tolerance));
    if diffs.iter().any(|diff| diff.regressed) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
