//! Shared configuration and helpers for the STUC benchmark harness.
//!
//! Every table/figure/claim of the paper maps to one Criterion bench target
//! in `benches/` (see DESIGN.md §4 and EXPERIMENTS.md). All benches use the
//! same short measurement settings so that `cargo bench --workspace`
//! completes in minutes while still showing the asymptotic *shape* of each
//! comparison (who wins, by what factor, where the crossover happens) —
//! absolute numbers are not the point, as the paper itself reports no
//! absolute performance figures.

use criterion::Criterion;
use std::time::Duration;

/// The Criterion configuration shared by every STUC bench: few samples,
/// short measurement windows, no plots.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
        .without_plots()
}

/// Prints a labelled scalar result alongside the timing benchmarks, so that
/// the harness output also records the *values* the paper's examples imply
/// (probabilities, widths, counts). `cargo bench` output is the record.
pub fn report_value(experiment: &str, label: &str, value: impl std::fmt::Display) {
    println!("[{experiment}] {label} = {value}");
}
