//! Shared configuration and helpers for the STUC benchmark harness.
//!
//! Every table/figure/claim of the paper maps to one Criterion bench target
//! in `benches/` (see DESIGN.md §4 and EXPERIMENTS.md). All benches use the
//! same short measurement settings so that `cargo bench --workspace`
//! completes in minutes while still showing the asymptotic *shape* of each
//! comparison (who wins, by what factor, where the crossover happens) —
//! absolute numbers are not the point, as the paper itself reports no
//! absolute performance figures.

use criterion::Criterion;
use std::time::Duration;

pub mod benchdiff;

/// The Criterion configuration shared by every STUC bench: few samples,
/// short measurement windows, no plots.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
        .without_plots()
}

/// Prints a labelled scalar result alongside the timing benchmarks, so that
/// the harness output also records the *values* the paper's examples imply
/// (probabilities, widths, counts). `cargo bench` output is the record.
pub fn report_value(experiment: &str, label: &str, value: impl std::fmt::Display) {
    println!("[{experiment}] {label} = {value}");
}

/// Best-of-N wall time of a closure — the measurement the `[A*]` report
/// lines and [`BenchSummary`] records are built from. Shared by the a2/a4/a5
/// suites and the release perf-smoke test so all of them time the same way.
pub fn timed<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let started = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(started.elapsed());
    }
    best
}

/// The latency percentiles [`BenchSummary::record_percentile`] can log,
/// each mapped to its row key in the `BENCH_*.json` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Median — `"p50_ns"`.
    P50,
    /// 90th percentile — `"p90_ns"`.
    P90,
    /// 99th percentile — `"p99_ns"`.
    P99,
}

impl Quantile {
    /// The JSON key this quantile is written under.
    pub fn key(self) -> &'static str {
        match self {
            Quantile::P50 => "p50_ns",
            Quantile::P90 => "p90_ns",
            Quantile::P99 => "p99_ns",
        }
    }
}

/// Machine-readable benchmark summary, appended to `BENCH_<suite>.json` so
/// the performance trajectory of the hot paths is tracked *across PRs*
/// rather than living only in scrollback. One JSON object per line
/// (JSON-lines): `{"suite", "case", "best_ns", "speedup_vs_baseline"?}` —
/// `best_ns` is a best-of-N measurement (see [`timed`]), not a median.
///
/// The file lands in the workspace root (override with the
/// `STUC_BENCH_DIR` environment variable). Writing is best-effort: an
/// unwritable directory only prints a warning, benches never fail over
/// bookkeeping.
#[derive(Debug)]
pub struct BenchSummary {
    suite: String,
    lines: Vec<String>,
}

impl BenchSummary {
    /// Starts a summary for one bench suite (e.g. `"a2"`).
    pub fn new(suite: &str) -> Self {
        BenchSummary {
            suite: suite.to_string(),
            lines: Vec::new(),
        }
    }

    /// Records a case's best-of-N wall time (see [`timed`]).
    pub fn record(&mut self, case: &str, best: Duration) {
        self.push(case, best, None);
    }

    /// Records a case together with its speedup over a baseline measurement
    /// (`baseline / best`, >1 means the case is faster).
    pub fn record_speedup(&mut self, case: &str, best: Duration, baseline: Duration) {
        let speedup = baseline.as_secs_f64() / best.as_secs_f64().max(f64::MIN_POSITIVE);
        self.push(case, best, Some(speedup));
    }

    /// Records a throughput case: `count` completions over `elapsed`,
    /// written as `best_ns` (the elapsed wall time) plus a
    /// `"rate_per_sec"` field. Used by the `stuc-loadgen` service bench
    /// for queries/sec.
    pub fn record_rate(&mut self, case: &str, count: u64, elapsed: Duration) {
        let rate = count as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        self.lines.push(format!(
            "{{\"suite\":\"{}\",\"case\":\"{}\",\"best_ns\":{},\"rate_per_sec\":{rate:.2}}}",
            json_escape(&self.suite),
            json_escape(case),
            elapsed.as_nanos()
        ));
    }

    /// Records a full latency distribution from a [`stuc_obs`] histogram:
    /// `{"suite","case","count","p50_ns","p90_ns","p99_ns","buckets":[…]}`
    /// with cumulative `{"le_ns","count"}` buckets (Prometheus-style,
    /// truncated after the first bucket that holds every observation — the
    /// rest repeat the total). Used by `stuc-loadgen` so the *shape* of
    /// service latency is tracked across PRs, not just two quantiles.
    pub fn record_histogram(&mut self, case: &str, histogram: &stuc_obs::metrics::Histogram) {
        let nanos = |secs: f64| (secs * 1e9).round() as u64;
        let total = histogram.count();
        let mut buckets = Vec::new();
        for (bound, cum) in histogram.cumulative_buckets() {
            if bound.is_infinite() {
                break;
            }
            buckets.push(format!("{{\"le_ns\":{},\"count\":{cum}}}", nanos(bound)));
            if cum == total {
                break;
            }
        }
        self.lines.push(format!(
            "{{\"suite\":\"{}\",\"case\":\"{}\",\"count\":{total},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"buckets\":[{}]}}",
            json_escape(&self.suite),
            json_escape(case),
            nanos(histogram.quantile(0.50)),
            nanos(histogram.quantile(0.90)),
            nanos(histogram.quantile(0.99)),
            buckets.join(",")
        ));
    }

    /// Records one exact latency percentile (`{"suite","case","p90_ns"}`).
    /// Distinct from [`record`](Self::record): a tail percentile under load
    /// is a distribution statistic, not a best-of-N time, so `stuc-benchdiff`
    /// tracks it without gating it — shared-runner tail noise routinely
    /// exceeds any tolerance tight enough to catch real regressions.
    pub fn record_percentile(&mut self, case: &str, quantile: Quantile, value: Duration) {
        self.lines.push(format!(
            "{{\"suite\":\"{}\",\"case\":\"{}\",\"{}\":{}}}",
            json_escape(&self.suite),
            json_escape(case),
            quantile.key(),
            value.as_nanos()
        ));
    }

    /// Records a bare counter case (`{"suite","case","count"}`), e.g. how
    /// many typed overload rejections the admission-control probe saw.
    pub fn record_count(&mut self, case: &str, count: u64) {
        self.lines.push(format!(
            "{{\"suite\":\"{}\",\"case\":\"{}\",\"count\":{count}}}",
            json_escape(&self.suite),
            json_escape(case)
        ));
    }

    fn push(&mut self, case: &str, best: Duration, speedup: Option<f64>) {
        let mut line = format!(
            "{{\"suite\":\"{}\",\"case\":\"{}\",\"best_ns\":{}",
            json_escape(&self.suite),
            json_escape(case),
            best.as_nanos()
        );
        if let Some(speedup) = speedup {
            line.push_str(&format!(",\"speedup_vs_baseline\":{speedup:.4}"));
        }
        line.push('}');
        self.lines.push(line);
    }

    /// Appends the recorded lines to `BENCH_<suite>.json` and reports where
    /// they went. Call once at the end of the bench `main`.
    pub fn write(&self) {
        if self.lines.is_empty() {
            return;
        }
        let path = summary_dir().join(format!("BENCH_{}.json", self.suite));
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| {
                use std::io::Write;
                for line in &self.lines {
                    writeln!(file, "{line}")?;
                }
                Ok(())
            });
        match result {
            Ok(()) => println!(
                "[{}] wrote {} summary line(s) to {}",
                self.suite,
                self.lines.len(),
                path.display()
            ),
            Err(error) => eprintln!(
                "[{}] could not write bench summary to {}: {error}",
                self.suite,
                path.display()
            ),
        }
    }
}

/// Where summaries go: `STUC_BENCH_DIR` if set, else the workspace root
/// (two levels above this crate's manifest), else the current directory.
fn summary_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("STUC_BENCH_DIR") {
        return std::path::PathBuf::from(dir);
    }
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

/// Minimal JSON string escaping for suite/case labels.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lines_are_json_objects() {
        let mut summary = BenchSummary::new("t0");
        summary.record("sweep", Duration::from_nanos(1500));
        summary.record_speedup(
            "lanes_vs_sequential",
            Duration::from_micros(10),
            Duration::from_micros(45),
        );
        assert_eq!(
            summary.lines[0],
            "{\"suite\":\"t0\",\"case\":\"sweep\",\"best_ns\":1500}"
        );
        assert!(summary.lines[1].contains("\"speedup_vs_baseline\":4.5000"));
        summary.record_rate("throughput", 500, Duration::from_secs(2));
        assert!(summary.lines[2].contains("\"rate_per_sec\":250.00"));
        summary.record_count("overload_rejections", 7);
        assert_eq!(
            summary.lines[3],
            "{\"suite\":\"t0\",\"case\":\"overload_rejections\",\"count\":7}"
        );
    }

    #[test]
    fn histogram_rows_carry_quantiles_and_truncated_buckets() {
        let histogram = stuc_obs::metrics::Histogram::latency();
        for _ in 0..99 {
            histogram.observe(Duration::from_micros(10));
        }
        histogram.observe(Duration::from_millis(50));
        let mut summary = BenchSummary::new("t2");
        summary.record_histogram("latency", &histogram);
        let line = &summary.lines[0];
        assert!(line.contains("\"count\":100"), "{line}");
        assert!(line.contains("\"p50_ns\":"), "{line}");
        assert!(line.contains("\"p90_ns\":"), "{line}");
        assert!(line.contains("\"p99_ns\":"), "{line}");
        assert!(line.contains("\"buckets\":[{\"le_ns\":1000,"), "{line}");
        // Truncated after the first bucket holding all 100 observations:
        // the 16.8s tail of the ladder never shows up.
        assert!(line.contains(",\"count\":100}]"), "{line}");
        assert!(!line.contains("16777"), "{line}");
    }

    #[test]
    fn summary_writes_to_a_directory_override() {
        let dir = std::env::temp_dir().join(format!("stuc-bench-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut summary = BenchSummary::new("t1");
        summary.record("case", Duration::from_nanos(7));
        // Write through the override without mutating global env state in a
        // multi-threaded test run: call the path computation directly.
        let path = dir.join("BENCH_t1.json");
        std::fs::write(&path, format!("{}\n", summary.lines[0])).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"best_ns\":7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
