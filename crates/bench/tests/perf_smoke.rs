//! Release-mode perf smoke: the asserted speedup bars of the compiled sweep
//! plan, run as a plain `cargo test --release -p stuc-bench --test
//! perf_smoke` so a plan regression fails CI instead of only showing up in
//! bench scrollback.
//!
//! The speedup *bars* are only asserted in release builds — in debug builds
//! (plain `cargo test --workspace`) the tests still exercise both code
//! paths and check agreement, but skip the timing assertions, which would
//! be meaningless without optimisation.

use std::sync::Arc;
use std::time::Duration;
use stuc_bench::timed;
use stuc_circuit::compiled::CompiledCircuit;
use stuc_core::engine::{Engine, EvalBudget};
use stuc_core::workloads;
use stuc_graph::elimination::EliminationHeuristic;
use stuc_query::cq::ConjunctiveQuery;

fn a2_compiled(n: usize) -> (CompiledCircuit, stuc_circuit::weights::Weights) {
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let tid = workloads::path_tid(n, 0.5, 13);
    let lineage = engine.lineage(&tid, &query).unwrap();
    let weights = tid.fact_weights();
    let compiled =
        CompiledCircuit::compile(Arc::new(lineage), EliminationHeuristic::MinDegree).unwrap();
    (compiled, weights)
}

/// The planned dense sweep must be ≥2x faster than the interpreted HashMap
/// sweep on the a2 workload.
#[test]
fn planned_sweep_is_at_least_2x_faster_than_interpreted() {
    let (compiled, weights) = a2_compiled(450);
    // Warm both paths and check agreement first.
    let planned = compiled.run(&weights, 22).unwrap();
    let interpreted = compiled.run_interpreted(&weights, 22).unwrap();
    assert!((planned.probability - interpreted.probability).abs() < 1e-9);
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the ≥2x speedup bar (run in release)");
        return;
    }
    let planned_time = timed(5, || compiled.run(&weights, 22).unwrap().probability);
    let interpreted_time = timed(5, || {
        compiled.run_interpreted(&weights, 22).unwrap().probability
    });
    let speedup = interpreted_time.as_secs_f64() / planned_time.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "planned dense sweep must be ≥2x faster than the interpreted sweep \
         on the a2 workload ({interpreted_time:?} -> {planned_time:?}, {speedup:.2}x)"
    );
}

/// `run_many` with K=16 scenario lanes must be ≥4x faster than 16
/// sequential `reevaluate_with_weights` calls against the warm engine.
#[test]
fn scenario_lanes_k16_are_at_least_4x_faster_than_sequential() {
    const K: usize = 16;
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(\"c5\", x), R(x, y), R(y, z)").unwrap();
    let tid = workloads::path_tid(80, 0.5, 13);
    engine.evaluate(&tid, &query).unwrap(); // compile + cache the lineage
    let scenarios: Vec<_> = (0..K)
        .map(|k| {
            let mut shadow = tid.clone();
            for i in 0..shadow.fact_count() {
                let p = 0.05 + 0.9 * ((i + k) % 11) as f64 / 11.0;
                shadow.set_probability(stuc_data::instance::FactId(i), p);
            }
            shadow.fact_weights()
        })
        .collect();
    // Agreement first: the lane sweep answers exactly what the sequential
    // path answers.
    let many = engine
        .reevaluate_with_weights_many(&tid, &query, &scenarios)
        .unwrap();
    assert_eq!(many.len(), K);
    for (weights, lane) in scenarios.iter().zip(&many) {
        let single = engine
            .reevaluate_with_weights(&tid, &query, weights)
            .unwrap();
        assert_eq!(single.probability.to_bits(), lane.probability.to_bits());
    }
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the ≥4x speedup bar (run in release)");
        return;
    }
    let lanes_time = timed(5, || {
        engine
            .reevaluate_with_weights_many(&tid, &query, &scenarios)
            .unwrap()
            .len()
    });
    let sequential_time = timed(5, || {
        scenarios
            .iter()
            .map(|w| {
                engine
                    .reevaluate_with_weights(&tid, &query, w)
                    .unwrap()
                    .probability
            })
            .sum::<f64>()
    });
    let speedup = sequential_time.as_secs_f64() / lanes_time.as_secs_f64();
    assert!(
        speedup >= 4.0,
        "K=16 scenario lanes must be ≥4x faster than 16 sequential \
         re-evaluations ({sequential_time:?} -> {lanes_time:?}, {speedup:.2}x)"
    );
}

/// All-fact marginals (one backward sweep over retained tables) must be
/// ≥5x faster than n single-fact conditioned evaluations on the a4
/// workload (80-fact path instance, chain query: every fact is in the
/// lineage).
#[test]
fn all_fact_marginals_are_at_least_5x_faster_than_conditioned_evaluation() {
    let engine = Engine::new();
    let tid = workloads::path_tid(80, 0.5, 13);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let weights = tid.fact_weights();
    let evidence = engine.evaluate(&tid, &query).unwrap().probability; // warm the lineage cache

    // The conditioned-WMC baseline the backward sweep replaces: one
    // counting sweep per fact against the warm engine.
    let conditioned_all = || {
        weights
            .iter()
            .map(|(v, prior)| {
                let mut fixed = weights.clone();
                fixed.fix(v, true);
                let conditioned = engine
                    .reevaluate_with_weights(&tid, &query, &fixed)
                    .unwrap()
                    .probability;
                (v, prior * conditioned / evidence)
            })
            .collect::<Vec<_>>()
    };

    // Agreement first: same posteriors within 1e-9, every fact covered.
    let marginals = engine.marginals(&tid, &query).unwrap();
    let baseline = conditioned_all();
    assert_eq!(marginals.len(), tid.fact_count());
    for &(v, reference) in &baseline {
        let got = marginals.get(v).unwrap();
        assert!(
            (got - reference).abs() < 1e-9,
            "{v:?}: {got} vs {reference}"
        );
    }
    assert_eq!(
        marginals.report.sweeps_run, 2,
        "up + backward, nothing more"
    );

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the ≥5x speedup bar (run in release)");
        return;
    }
    let marginals_time = timed(5, || engine.marginals(&tid, &query).unwrap().len());
    let conditioned_time = timed(5, || conditioned_all().len());
    let speedup = conditioned_time.as_secs_f64() / marginals_time.as_secs_f64();
    assert!(
        speedup >= 5.0,
        "all-fact marginals must be ≥5x faster than {} conditioned \
         evaluations ({conditioned_time:?} -> {marginals_time:?}, {speedup:.2}x)",
        weights.len()
    );
}

/// `evaluate_batch` over a cold engine must be ≥3x faster than the same 64
/// queries evaluated sequentially, on machines with ≥4 cores. The bar is a
/// *parallelism* bar — the batch path's only advantage here is its scoped
/// worker pool over the sharded caches — so it is skipped (with a note)
/// where the hardware cannot show it.
#[test]
fn batch_evaluation_is_at_least_3x_faster_than_sequential_on_4_cores() {
    let engine = Engine::new();
    let tid = workloads::path_tid(80, 0.5, 13);
    // 64 distinct anchored self-join chains: no two slots share a lineage,
    // every one pays the full circuit pipeline (same shape as the a4 bench).
    let queries: Vec<ConjunctiveQuery> = (0..64)
        .map(|k| ConjunctiveQuery::parse(&format!("R(\"c{k}\", x), R(x, y), R(y, z)")).unwrap())
        .collect();

    // Agreement first, in every build profile and on any core count.
    let batch = engine.evaluate_batch(&tid, &queries);
    assert_eq!(batch.succeeded(), queries.len());
    let oracle = Engine::new();
    for (query, result) in queries.iter().zip(&batch.reports) {
        let expected = oracle.evaluate(&tid, query).unwrap().probability;
        let got = result.as_ref().unwrap().probability;
        assert!((expected - got).abs() < 1e-9, "{query:?}");
    }

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the ≥3x batch speedup bar (run in release)");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("only {cores} core(s) available: skipping the ≥3x batch speedup bar");
        return;
    }
    // Fresh engines inside the timed closures keep every iteration cold, so
    // both sides pay the full compile pipeline and only the parallelism
    // differs.
    let sequential_time = timed(3, || {
        let engine = Engine::new();
        queries
            .iter()
            .map(|q| engine.evaluate(&tid, q).unwrap().probability)
            .sum::<f64>()
    });
    let batch_time = timed(3, || {
        let engine = Engine::new();
        engine.evaluate_batch(&tid, &queries).succeeded()
    });
    let speedup = sequential_time.as_secs_f64() / batch_time.as_secs_f64();
    assert!(
        speedup >= 3.0,
        "evaluate_batch must be ≥3x faster than 64 sequential evaluations \
         on {cores} cores ({sequential_time:?} -> {batch_time:?}, {speedup:.2}x)"
    );
}

/// The observability layer must be close to free. Two bars on the warm a4
/// workload (anchored chain query, cached lineage — the fast path where
/// fixed per-call costs weigh the most):
///
/// * tracer **enabled**, the evaluate loop stays within 5% of the
///   tracer-disabled baseline;
/// * tracer **disabled** (the default), a span is approximately nothing —
///   one relaxed atomic load, bounded here at well under a microsecond.
#[test]
fn observability_overhead_stays_within_the_bars() {
    use stuc_obs::trace;
    let engine = Engine::new();
    let tid = workloads::path_tid(80, 0.5, 13);
    let query = ConjunctiveQuery::parse("R(\"c5\", x), R(x, y), R(y, z)").unwrap();
    engine.evaluate(&tid, &query).unwrap(); // compile + cache the lineage

    // Both configurations answer identically (the tracer only records).
    trace::set_enabled(true);
    let traced_p = engine.evaluate(&tid, &query).unwrap().probability;
    trace::set_enabled(false);
    let plain_p = engine.evaluate(&tid, &query).unwrap().probability;
    assert_eq!(traced_p.to_bits(), plain_p.to_bits());

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the 5% observability overhead bar (run in release)");
        return;
    }

    let loop_once = || {
        (0..64)
            .map(|_| engine.evaluate(&tid, &query).unwrap().probability)
            .sum::<f64>()
    };
    let baseline = timed(10, loop_once);
    trace::set_enabled(true);
    let traced = timed(10, loop_once);
    trace::set_enabled(false);
    trace::clear_events();
    let ratio = traced.as_secs_f64() / baseline.as_secs_f64().max(f64::MIN_POSITIVE);
    assert!(
        ratio <= 1.05,
        "tracing-enabled evaluation must stay within 5% of the disabled \
         baseline ({baseline:?} -> {traced:?}, {ratio:.3}x)"
    );

    // Disabled spans: 10k of them in well under a millisecond, i.e. the
    // instrumentation costs ~nothing when nobody asked for traces.
    let disabled_spans = timed(10, || {
        for _ in 0..10_000 {
            let _span = trace::span("noop");
        }
    });
    assert!(
        disabled_spans < std::time::Duration::from_millis(1),
        "10k disabled spans must cost well under 1ms, got {disabled_spans:?}"
    );
}

/// The sampling profiler must be close to free for the profiled process.
/// On the warm a2 sweep (cached lineage, pure counting):
///
/// * with the profiler **enabled** (span-stack shadow maintained) and a
///   live sampler thread reading it at the default 99 Hz, the evaluate
///   loop stays within 5% of the profiler-disabled baseline;
/// * the answers are bit-identical either way — sampling only *reads*.
#[test]
fn profiler_overhead_stays_within_the_bar() {
    use stuc_obs::profile;
    let engine = Engine::new();
    let tid = workloads::path_tid(80, 0.5, 13);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    engine.evaluate(&tid, &query).unwrap(); // compile + cache the lineage

    profile::set_enabled(true);
    let profiled_p = engine.evaluate(&tid, &query).unwrap().probability;
    profile::set_enabled(false);
    let plain_p = engine.evaluate(&tid, &query).unwrap().probability;
    assert_eq!(profiled_p.to_bits(), plain_p.to_bits());

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the 5% profiler overhead bar (run in release)");
        return;
    }

    let loop_once = || {
        (0..64)
            .map(|_| engine.evaluate(&tid, &query).unwrap().probability)
            .sum::<f64>()
    };
    let baseline = timed(10, loop_once);
    profile::set_enabled(true);
    let sampler = profile::Sampler::start(profile::default_hz());
    let profiled = timed(10, loop_once);
    let report = sampler.stop();
    profile::set_enabled(false);
    let ratio = profiled.as_secs_f64() / baseline.as_secs_f64().max(f64::MIN_POSITIVE);
    assert!(
        ratio <= 1.05,
        "profiled evaluation must stay within 5% of the disabled baseline \
         ({baseline:?} -> {profiled:?}, {ratio:.3}x)"
    );
    assert!(
        report.total_samples > 0,
        "the sampler must actually have taken samples while the loop ran"
    );
}

/// Budget checkpoints must be close to free: on the warm a2 workload under
/// a far-away deadline (every checkpoint pays a real `Instant::now` poll),
/// the wall time spent *inside* the polls — as reported by the engine's
/// own `stuc_engine_budget_check_seconds` histogram — must stay at or
/// below 2% of the evaluations' total wall time. Poll time and wall time
/// come from the very same runs, so a noisy neighbour (CI runs this file's
/// tests in parallel) inflates the denominator along with everything else
/// instead of faking an overhead that is not there — which is why this is
/// not an end-to-end A/B timing, where cross-run scheduler drift dwarfs a
/// 2% bar.
#[test]
fn budget_checks_cost_at_most_2_percent_on_the_a2_sweep() {
    let engine = Engine::new();
    let tid = workloads::path_tid(450, 0.5, 13);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let far = EvalBudget::with_deadline(Duration::from_secs(3600));

    // Agreement first, in every build profile: a budget that never trips
    // changes nothing about the answer.
    let plain = engine.evaluate(&tid, &query).unwrap().probability;
    let budgeted = engine
        .evaluate_with_budget(&tid, &query, &far)
        .unwrap()
        .probability;
    assert_eq!(plain.to_bits(), budgeted.to_bits());

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the 2% budget overhead bar (run in release)");
        return;
    }
    // The engine publishes per-evaluation poll time into this process-global
    // histogram (registered during the agreement run above); the delta over
    // N runs is the total cost of all budget checks in those runs.
    let histogram = stuc_obs::metrics::registry().histogram(
        "stuc_engine_budget_check_seconds",
        "wall time spent polling evaluation budgets",
    );
    const RUNS: u32 = 300;
    let spent_before = histogram.sum_seconds();
    let started = std::time::Instant::now();
    for _ in 0..RUNS {
        std::hint::black_box(
            engine
                .evaluate_with_budget(&tid, &query, &far)
                .unwrap()
                .probability,
        );
    }
    let wall = started.elapsed().as_secs_f64();
    let spent = histogram.sum_seconds() - spent_before;
    let share = spent / wall.max(f64::MIN_POSITIVE);
    assert!(
        share <= 0.02,
        "budget checks must cost at most 2% of the warm a2 sweep \
         ({spent:.6}s of polls inside {wall:.6}s of evaluation, {:.2}%)",
        share * 100.0
    );
}

/// Steady-state repeated evaluation performs zero table allocations,
/// verified through the arena-reuse counter in `WmcReport`. Holds in every
/// build profile.
#[test]
fn steady_state_sweeps_allocate_nothing() {
    let (compiled, weights) = a2_compiled(150);
    let first = compiled.run(&weights, 22).unwrap();
    assert!(
        first.table_allocations > 0,
        "the first run must warm the arena"
    );
    for _ in 0..8 {
        let again = compiled.run(&weights, 22).unwrap();
        assert_eq!(
            again.table_allocations, 0,
            "steady-state planned sweeps must not allocate tables"
        );
        assert_eq!(again.probability.to_bits(), first.probability.to_bits());
    }
}
