//! A2 (ablation) — circuit probability back-ends: message passing over a
//! tree decomposition of the circuit vs DPLL/Shannon expansion vs naive
//! enumeration, on lineage circuits from the Theorem 1 workloads.

use criterion::BenchmarkId;
use std::sync::Arc;
use stuc_bench::{criterion_config, report_value, timed, BenchSummary};
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::enumeration::probability_by_enumeration;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_graph::elimination::EliminationHeuristic;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let mut summary = BenchSummary::new("a2");
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();

    // Agreement of the three back-ends on a small lineage.
    let small_tid = workloads::path_tid(12, 0.5, 13);
    let small = engine.lineage(&small_tid, &query).unwrap();
    let weights = small_tid.fact_weights();
    let mp = TreewidthWmc::default()
        .probability(&small, &weights)
        .unwrap();
    let dp = DpllCounter::default()
        .probability(&small, &weights)
        .unwrap();
    let en = probability_by_enumeration(&small, &weights).unwrap();
    assert!((mp - dp).abs() < 1e-9 && (mp - en).abs() < 1e-9);
    report_value("A2", "agreement_probability", format!("{mp:.6}"));

    let mut group = criterion.benchmark_group("a2_wmc_backends_small");
    group.bench_function("message_passing", |b| {
        b.iter(|| {
            TreewidthWmc::default()
                .probability(&small, &weights)
                .unwrap()
        })
    });
    group.bench_function("dpll", |b| {
        b.iter(|| {
            DpllCounter::default()
                .probability(&small, &weights)
                .unwrap()
        })
    });
    group.bench_function("enumeration", |b| {
        b.iter(|| probability_by_enumeration(&small, &weights).unwrap())
    });
    group.finish();

    // Scaling: message passing and DPLL on growing path lineages
    // (enumeration is impossible beyond ~30 variables). DPLL gets a bounded
    // branch budget: at the default 10M budget a single n=50 call takes
    // ~90s, which made this bench unrunnable end to end — with the budget
    // it either answers fast or reports the give-up, and the message-passing
    // scaling (the claim under test) is measured either way.
    let mut group = criterion.benchmark_group("a2_wmc_backends_scaling");
    let budgeted_dpll = DpllCounter {
        max_branches: 50_000,
    };
    for &n in &[50usize, 150, 450] {
        let tid = workloads::path_tid(n, 0.5, 13);
        let lineage = engine.lineage(&tid, &query).unwrap();
        let w = tid.fact_weights();
        report_value(
            "A2",
            &format!("n{n}_circuit_width_estimate"),
            TreewidthWmc::default().estimated_width(&lineage),
        );
        report_value(
            "A2",
            &format!("n{n}_dpll_within_50k_branches"),
            if budgeted_dpll.probability(&lineage, &w).is_ok() {
                "yes"
            } else {
                "no (budget exhausted)"
            },
        );
        group.bench_with_input(BenchmarkId::new("message_passing", n), &n, |b, _| {
            b.iter(|| TreewidthWmc::default().probability(&lineage, &w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dpll_50k_budget", n), &n, |b, _| {
            b.iter(|| budgeted_dpll.probability(&lineage, &w).ok())
        });
    }
    group.finish();

    // --- Planned dense sweep vs interpreted HashMap sweep, on the same
    // compiled circuit (structure shared, only the sweep differs). This is
    // the steady-state shape: weight-only re-evaluation, batch resweeps and
    // incremental-update revalidation all run exactly this sweep.
    let mut group = criterion.benchmark_group("a2_sweep_plan_vs_interpreted");
    let mut largest_speedup = 0.0f64;
    for &n in &[50usize, 150, 450] {
        let tid = workloads::path_tid(n, 0.5, 13);
        let lineage = engine.lineage(&tid, &query).unwrap();
        let w = tid.fact_weights();
        let compiled =
            CompiledCircuit::compile(Arc::new(lineage), EliminationHeuristic::MinDegree).unwrap();
        // Warm both paths (plan + arena built, decomposition cached) and
        // check agreement before timing.
        let planned = compiled.run(&w, 22).unwrap();
        let interpreted = compiled.run_interpreted(&w, 22).unwrap();
        assert!((planned.probability - interpreted.probability).abs() < 1e-9);
        let steady = compiled.run(&w, 22).unwrap();
        assert_eq!(
            steady.table_allocations, 0,
            "steady-state planned sweeps must not allocate tables"
        );
        group.bench_with_input(BenchmarkId::new("planned_dense", n), &n, |b, _| {
            b.iter(|| compiled.run(&w, 22).unwrap().probability)
        });
        group.bench_with_input(BenchmarkId::new("interpreted_hashmap", n), &n, |b, _| {
            b.iter(|| compiled.run_interpreted(&w, 22).unwrap().probability)
        });
        let planned_time = timed(5, || compiled.run(&w, 22).unwrap().probability);
        let interpreted_time = timed(5, || compiled.run_interpreted(&w, 22).unwrap().probability);
        let speedup = interpreted_time.as_secs_f64() / planned_time.as_secs_f64();
        largest_speedup = largest_speedup.max(speedup);
        report_value(
            "A2",
            &format!("n{n}_plan_speedup_over_interpreted"),
            format!("{speedup:.2}x ({interpreted_time:?} -> {planned_time:?})"),
        );
        summary.record(&format!("interpreted_sweep_n{n}"), interpreted_time);
        summary.record_speedup(
            &format!("planned_sweep_n{n}"),
            planned_time,
            interpreted_time,
        );
    }
    group.finish();
    assert!(
        largest_speedup >= 2.0,
        "planned dense sweep must be ≥2x faster than the interpreted sweep \
         on the a2 workload, best was {largest_speedup:.2}x"
    );

    summary.write();
    criterion.final_summary();
}
