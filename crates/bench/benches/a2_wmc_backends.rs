//! A2 (ablation) — circuit probability back-ends: message passing over a
//! tree decomposition of the circuit vs DPLL/Shannon expansion vs naive
//! enumeration, on lineage circuits from the Theorem 1 workloads.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::enumeration::probability_by_enumeration;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();

    // Agreement of the three back-ends on a small lineage.
    let small_tid = workloads::path_tid(12, 0.5, 13);
    let small = engine.lineage(&small_tid, &query).unwrap();
    let weights = small_tid.fact_weights();
    let mp = TreewidthWmc::default()
        .probability(&small, &weights)
        .unwrap();
    let dp = DpllCounter::default()
        .probability(&small, &weights)
        .unwrap();
    let en = probability_by_enumeration(&small, &weights).unwrap();
    assert!((mp - dp).abs() < 1e-9 && (mp - en).abs() < 1e-9);
    report_value("A2", "agreement_probability", format!("{mp:.6}"));

    let mut group = criterion.benchmark_group("a2_wmc_backends_small");
    group.bench_function("message_passing", |b| {
        b.iter(|| {
            TreewidthWmc::default()
                .probability(&small, &weights)
                .unwrap()
        })
    });
    group.bench_function("dpll", |b| {
        b.iter(|| {
            DpllCounter::default()
                .probability(&small, &weights)
                .unwrap()
        })
    });
    group.bench_function("enumeration", |b| {
        b.iter(|| probability_by_enumeration(&small, &weights).unwrap())
    });
    group.finish();

    // Scaling: message passing and DPLL on growing path lineages
    // (enumeration is impossible beyond ~30 variables).
    let mut group = criterion.benchmark_group("a2_wmc_backends_scaling");
    for &n in &[50usize, 150, 450] {
        let tid = workloads::path_tid(n, 0.5, 13);
        let lineage = engine.lineage(&tid, &query).unwrap();
        let w = tid.fact_weights();
        report_value(
            "A2",
            &format!("n{n}_circuit_width_estimate"),
            TreewidthWmc::default().estimated_width(&lineage),
        );
        group.bench_with_input(BenchmarkId::new("message_passing", n), &n, |b, _| {
            b.iter(|| TreewidthWmc::default().probability(&lineage, &w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dpll", n), &n, |b, _| {
            b.iter(|| DpllCounter::default().probability(&lineage, &w).unwrap())
        });
    }
    group.finish();
    criterion.final_summary();
}
