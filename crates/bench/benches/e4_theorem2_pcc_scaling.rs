//! E4 — Theorem 2: pcc-instances with correlated annotations (contributor
//! trust events shared across facts) stay tractable when the joint
//! instance+circuit decomposition has bounded width.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();

    // Correctness check against enumeration on a small instance.
    let small = workloads::contributor_pcc(8, 3, 0.7, 0.9, 5);
    let exact = engine.evaluate(&small, &query).unwrap();
    let reference = workloads::pcc_query_probability_by_enumeration(&small, &query);
    assert!((exact.probability - reference).abs() < 1e-9);
    report_value(
        "E4",
        "small_pcc_probability",
        format!("{:.6}", exact.probability),
    );
    report_value(
        "E4",
        "small_pcc_joint_width",
        exact.decomposition_width.unwrap_or(0),
    );

    // Scaling in the number of claims with a fixed number of contributors:
    // correlations stay local-ish, so the pipeline scales.
    let mut group = criterion.benchmark_group("e4_theorem2_pcc_scaling");
    for &claims in &[10usize, 20, 40, 80] {
        let pcc = workloads::contributor_pcc(claims, 4, 0.7, 0.9, 11);
        let report = engine.evaluate(&pcc, &query).unwrap();
        report_value(
            "E4",
            &format!("claims{claims}"),
            format!(
                "p={:.4} joint_width={:?}",
                report.probability, report.decomposition_width
            ),
        );
        group.bench_with_input(BenchmarkId::new("pcc_pipeline", claims), &claims, |b, _| {
            b.iter(|| engine.evaluate(&pcc, &query).unwrap().probability)
        });
    }
    group.finish();
    criterion.final_summary();
}
