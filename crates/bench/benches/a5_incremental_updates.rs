//! A5 (ablation) — incremental updates vs cold re-evaluation.
//!
//! The incremental subsystem claims that a live engine absorbing updates
//! should *patch* its decomposition and compiled-lineage caches and pay
//! only the counting sweep per query, instead of re-running the cold
//! pipeline (decompose → lineage → compile) for the whole workload after
//! every change. This bench measures that claim on the a4 workload (80-fact
//! path TID, 64 anchored self-join queries):
//!
//! * **warm** — `Engine::apply_update` (which patches + rekeys the caches)
//!   followed by re-evaluating all 64 queries against the warm engine;
//! * **cold** — a fresh engine evaluating the same 64 queries on the
//!   mutated instance from scratch.
//!
//! Update sizes sweep 1, 8 and 64 touched facts (probability overwrites —
//! the live-traffic shape), plus a single-fact insertion (the structural
//! patch path). The `[A5]` report lines record the speedups; the
//! acceptance bar is ≥5x for single-fact updates on the 64-query workload.

use criterion::black_box;
use stuc_bench::{criterion_config, report_value, timed, BenchSummary};
use stuc_core::engine::{Delta, Engine};
use stuc_core::workloads;
use stuc_data::instance::FactId;
use stuc_data::tid::TidInstance;
use stuc_query::cq::ConjunctiveQuery;

fn batch_queries(count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|k| {
            ConjunctiveQuery::parse(&format!("R(\"c{k}\", x), R(x, y), R(y, z)"))
                .expect("valid anchored chain query")
        })
        .collect()
}

/// Evaluates the whole workload sequentially, returning the probability sum.
fn evaluate_all(engine: &Engine, tid: &TidInstance, queries: &[ConjunctiveQuery]) -> f64 {
    queries
        .iter()
        .map(|q| engine.evaluate(tid, q).unwrap().probability)
        .sum()
}

/// A delta overwriting the probabilities of facts `0..size`, alternating
/// between two value sets so repeated applications keep changing the
/// fingerprint (each timed round is a real update).
fn reweight_delta(size: usize, round: usize) -> Delta {
    let mut delta = Delta::new();
    for i in 0..size {
        let p = if round.is_multiple_of(2) { 0.31 } else { 0.67 };
        delta = delta.set_probability(FactId(i), p + 0.001 * (i % 7) as f64);
    }
    delta
}

fn main() {
    let mut criterion = criterion_config();
    let mut summary = BenchSummary::new("a5");
    let base = workloads::path_tid(80, 0.5, 13);
    let queries = batch_queries(64);

    // Sanity: after an update, the warm engine agrees with a cold engine on
    // every query of the workload.
    {
        let engine = Engine::new();
        let mut live = base.clone();
        evaluate_all(&engine, &live, &queries);
        let report = engine
            .apply_update(&mut live, &reweight_delta(8, 0))
            .unwrap();
        assert!(!report.fell_back);
        let cold = Engine::new();
        for query in &queries {
            let warm = engine.evaluate(&live, query).unwrap().probability;
            let fresh = cold.evaluate(&live, query).unwrap().probability;
            assert!((warm - fresh).abs() < 1e-9, "{query:?}");
        }
        report_value("A5", "lineages_patched_per_update", report.lineages_patched);
    }

    // --- weight updates across sizes: warm patch+sweep vs cold pipeline.
    for &size in &[1usize, 8, 64] {
        let mut group = criterion.benchmark_group(format!("a5_update_{size}_facts"));
        // Warm: one live engine absorbs updates; every evaluation after the
        // patch is a cache hit paying only the counting sweep.
        let engine = Engine::new();
        let mut live = base.clone();
        evaluate_all(&engine, &live, &queries);
        let mut round = 0usize;
        group.bench_function("apply_update_then_resweep", |b| {
            b.iter(|| {
                round += 1;
                engine
                    .apply_update(&mut live, &reweight_delta(size, round))
                    .unwrap();
                evaluate_all(&engine, &live, &queries)
            })
        });
        // Cold: rebuild the world per update.
        let mut cold_round = 0usize;
        let mut cold_live = base.clone();
        group.bench_function("cold_pipeline", |b| {
            b.iter(|| {
                cold_round += 1;
                let mut shadow = cold_live.clone();
                use stuc_core::engine::Updatable;
                shadow
                    .apply_delta(&reweight_delta(size, cold_round))
                    .unwrap();
                cold_live = shadow;
                let fresh = Engine::builder()
                    .without_decomposition_cache()
                    .without_lineage_cache()
                    .build();
                evaluate_all(&fresh, &cold_live, &queries)
            })
        });
        group.finish();

        // Report the speedup from a separate timed comparison.
        let engine = Engine::new();
        let mut live = base.clone();
        evaluate_all(&engine, &live, &queries);
        let mut r = 0usize;
        let warm_time = timed(3, || {
            r += 1;
            engine
                .apply_update(&mut live, &reweight_delta(size, r))
                .unwrap();
            evaluate_all(&engine, &live, &queries)
        });
        let cold_time = timed(3, || {
            let fresh = Engine::builder()
                .without_decomposition_cache()
                .without_lineage_cache()
                .build();
            evaluate_all(&fresh, &live, &queries)
        });
        let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64();
        report_value(
            "A5",
            &format!("speedup_reweight_{size}_facts_64_queries"),
            format!("{speedup:.2}x ({cold_time:?} cold -> {warm_time:?} warm)"),
        );
        summary.record_speedup(
            &format!("reweight_{size}_facts_64_queries"),
            warm_time,
            cold_time,
        );
        if size == 1 {
            assert!(
                speedup >= 5.0,
                "single-fact updates must be ≥5x faster than cold evaluation, got {speedup:.2}x"
            );
        }
    }

    // --- single-fact insertion: the structural patch path.
    {
        let engine = Engine::new();
        let mut live = base.clone();
        evaluate_all(&engine, &live, &queries);
        let mut next = 80usize;
        let warm_time = timed(3, || {
            let delta =
                Delta::new().insert("R", &[&format!("c{next}"), &format!("c{}", next + 1)], 0.5);
            next += 1;
            let report = engine.apply_update(&mut live, &delta).unwrap();
            black_box(report.gates_rebuilt);
            evaluate_all(&engine, &live, &queries)
        });
        let cold_time = timed(3, || {
            let fresh = Engine::builder()
                .without_decomposition_cache()
                .without_lineage_cache()
                .build();
            evaluate_all(&fresh, &live, &queries)
        });
        let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64();
        report_value(
            "A5",
            "speedup_insert_1_fact_64_queries",
            format!("{speedup:.2}x ({cold_time:?} cold -> {warm_time:?} warm)"),
        );
        summary.record_speedup("insert_1_fact_64_queries", warm_time, cold_time);
    }

    summary.write();
    criterion.final_summary();
}
