//! E3 — Theorem 1: evaluating a fixed query on bounded-treewidth TIDs scales
//! linearly with the data, for several widths, while the naive baselines are
//! exponential (they are run only on the smallest size as a reference).

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_core::engine::{BackendKind, Engine};
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let engine = Engine::new();
    let dpll = Engine::builder().backend(BackendKind::Dpll).build();
    let brute = Engine::builder().backend(BackendKind::Enumeration).build();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();

    // Linear scaling in the data at fixed width (path instances, width 1).
    let mut group = criterion.benchmark_group("e3_theorem1_path_scaling");
    for &n in &[100usize, 400, 1600, 6400] {
        let tid = workloads::path_tid(n, 0.5, 7);
        let report = engine.evaluate(&tid, &query).unwrap();
        report_value(
            "E3",
            &format!("path_n{n}_probability"),
            format!("{:.6}", report.probability),
        );
        group.bench_with_input(BenchmarkId::new("tractable_pipeline", n), &n, |b, _| {
            b.iter(|| engine.evaluate(&tid, &query).unwrap().probability)
        });
    }
    group.finish();

    // Width sweep: partial k-trees of fixed size, width 1..4.
    let mut group = criterion.benchmark_group("e3_theorem1_width_sweep");
    for &k in &[1usize, 2, 3, 4] {
        let tid = workloads::partial_k_tree_tid(200, k, 0.5, 3);
        let report = engine.evaluate(&tid, &query).unwrap();
        report_value(
            "E3",
            &format!("ktree_k{k}_width"),
            report.decomposition_width.unwrap_or(0),
        );
        group.bench_with_input(
            BenchmarkId::new("tractable_pipeline_width", k),
            &k,
            |b, _| b.iter(|| engine.evaluate(&tid, &query).unwrap().probability),
        );
    }
    group.finish();

    // Baselines on a small instance only (they blow up quickly).
    let small = workloads::path_tid(18, 0.5, 7);
    let mut group = criterion.benchmark_group("e3_theorem1_baselines_small");
    group.bench_function("tractable_pipeline_n18", |b| {
        b.iter(|| engine.evaluate(&small, &query).unwrap().probability)
    });
    group.bench_function("dpll_baseline_n18", |b| {
        b.iter(|| dpll.evaluate(&small, &query).unwrap().probability)
    });
    group.bench_function("enumeration_baseline_n18", |b| {
        b.iter(|| brute.evaluate(&small, &query).unwrap().probability)
    });
    group.finish();
    criterion.final_summary();
}
