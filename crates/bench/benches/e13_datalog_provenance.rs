//! E13 — §2.2/§2.3: Datalog evaluation and provenance circuits on uncertain
//! instances.
//!
//! The paper points at Datalog fragments (monadic, frontier-guarded) as the
//! realistic query languages for its programme and casts its lineages as
//! Datalog provenance circuits. This bench measures (a) the certain fixpoint
//! evaluation, (b) the construction of provenance circuits for a recursive
//! program over TID instances, and (c) the probability computation on the
//! resulting lineages, on path-shaped data where the treewidth-style
//! tractability should show as polynomial growth.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::enumeration::probability_by_enumeration;
use stuc_data::instance::Instance;
use stuc_data::tid::TidInstance;
use stuc_query::datalog::DatalogProgram;
use stuc_query::datalog_provenance::DatalogProvenance;

fn transitive_closure() -> DatalogProgram {
    DatalogProgram::parse(
        "Reach(x, y) :- Edge(x, y)\n\
         Reach(x, z) :- Reach(x, y), Edge(y, z)",
    )
    .unwrap()
}

fn path_instance(n: usize) -> Instance {
    let mut instance = Instance::new();
    for i in 0..n {
        instance.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    instance
}

fn path_tid(n: usize, p: f64) -> TidInstance {
    let mut tid = TidInstance::new();
    for i in 0..n {
        tid.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)], p);
    }
    tid
}

fn main() {
    let mut criterion = criterion_config();
    let program = transitive_closure();

    // Correctness anchor: on a 4-edge path with p = 0.5, reaching the end
    // requires all edges: 0.5⁴ = 0.0625.
    let tid = path_tid(4, 0.5);
    let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
    let lineage = provenance.fact_lineage("Reach", &["v0", "v4"]).unwrap();
    let p = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
    report_value(
        "E13",
        "path4_end_to_end_probability",
        format!("{p:.4} (expected 0.0625)"),
    );
    assert!((p - 0.0625).abs() < 1e-9);

    // Certain Datalog fixpoint: quadratically many derived facts on a path.
    let mut group = criterion.benchmark_group("e13_datalog_fixpoint");
    for &n in &[8usize, 16, 32, 64] {
        let instance = path_instance(n);
        let derived = program.evaluate(&instance).unwrap().fact_count() - instance.fact_count();
        report_value("E13", &format!("path{n}_derived_facts"), derived);
        group.bench_with_input(BenchmarkId::new("fixpoint", n), &n, |b, _| {
            b.iter(|| program.evaluate(&instance).unwrap().fact_count())
        });
    }
    group.finish();

    // Provenance circuit construction over uncertain paths.
    let mut group = criterion.benchmark_group("e13_provenance_construction");
    for &n in &[4usize, 6, 8, 10] {
        let tid = path_tid(n, 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
        report_value(
            "E13",
            &format!("path{n}_provenance_gates"),
            provenance.circuit().len(),
        );
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                DatalogProvenance::from_tid(&tid, &program)
                    .unwrap()
                    .circuit()
                    .len()
            })
        });
    }
    group.finish();

    // Probability of the end-to-end reachability fact: DPLL on the lineage
    // versus brute-force enumeration over the edge events.
    let mut group = criterion.benchmark_group("e13_reachability_probability");
    for &n in &[4usize, 8, 12] {
        let tid = path_tid(n, 0.5);
        let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
        let lineage = provenance
            .fact_lineage("Reach", &["v0", &format!("v{n}")])
            .unwrap();
        let weights = tid.fact_weights();
        let expected = 0.5f64.powi(n as i32);
        let computed = DpllCounter::default()
            .probability(&lineage, &weights)
            .unwrap();
        report_value(
            "E13",
            &format!("path{n}_probability"),
            format!("{computed:.6} (expected {expected:.6})"),
        );
        group.bench_with_input(BenchmarkId::new("dpll_on_lineage", n), &n, |b, _| {
            b.iter(|| {
                DpllCounter::default()
                    .probability(&lineage, &weights)
                    .unwrap()
            })
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("enumeration", n), &n, |b, _| {
                b.iter(|| probability_by_enumeration(&lineage, &weights).unwrap())
            });
        }
    }
    group.finish();

    criterion.final_summary();
}
