//! A4 (ablation) — batch throughput and weight-only re-evaluation.
//!
//! The engine's batch subsystem claims two amortizations on top of the
//! single-query pipeline:
//!
//! * **Parallel batching** — `evaluate_batch` spreads a query batch over a
//!   scoped worker pool sharing the decomposition and lineage caches, so a
//!   64-query batch on one instance should beat 64 sequential `evaluate`
//!   calls by roughly the core count on a multi-core runner (the two are
//!   identical in total work; the measured `threads` value says how much
//!   parallelism was actually available).
//! * **Compile-once-query-many** — `reevaluate_with_weights` reuses the
//!   cached compiled lineage (circuit + circuit-graph decomposition), so a
//!   weight-only what-if re-evaluation pays only the counting sweep and
//!   should beat a cold evaluation of the same query by a wide margin on
//!   any machine.
//!
//! Both factors are printed as `[A4]` report values alongside the timings.

use stuc_bench::{criterion_config, report_value, timed, BenchSummary};
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

/// 64 distinct anchored self-join chain queries on the path instance: the
/// anchor constant varies per query, so no two batch slots share a lineage
/// and the safe plan is off the table (self-joins) — every query pays the
/// full circuit pipeline.
fn batch_queries(count: usize) -> Vec<ConjunctiveQuery> {
    (0..count)
        .map(|k| {
            ConjunctiveQuery::parse(&format!("R(\"c{k}\", x), R(x, y), R(y, z)"))
                .expect("valid anchored chain query")
        })
        .collect()
}

fn main() {
    let mut criterion = criterion_config();
    let mut summary = BenchSummary::new("a4");
    let tid = workloads::path_tid(80, 0.5, 13);
    let queries = batch_queries(64);
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    report_value("A4", "available_parallelism", threads);

    // Sanity: the batch answers exactly what sequential evaluation answers.
    {
        let engine = Engine::new();
        let batch = engine.evaluate_batch(&tid, &queries);
        assert_eq!(batch.succeeded(), queries.len());
        let sequential = Engine::new();
        for (query, result) in queries.iter().zip(&batch.reports) {
            let expected = sequential.evaluate(&tid, query).unwrap().probability;
            let got = result.as_ref().unwrap().probability;
            assert!((expected - got).abs() < 1e-9, "{query:?}");
        }
        report_value("A4", "batch_threads_used", batch.threads);
    }

    // --- Parallel batching: 64 sequential evaluates vs one 64-query batch.
    // Fresh engines inside the closures keep every iteration cold (no
    // lineage reuse across iterations), so this measures the pipeline
    // itself, parallelised vs not.
    let mut group = criterion.benchmark_group("a4_batch_vs_sequential_64q");
    group.bench_function("sequential_64", |b| {
        b.iter(|| {
            let engine = Engine::new();
            queries
                .iter()
                .map(|q| engine.evaluate(&tid, q).unwrap().probability)
                .sum::<f64>()
        })
    });
    group.bench_function("batch_64", |b| {
        b.iter(|| {
            let engine = Engine::new();
            engine.evaluate_batch(&tid, &queries)
        })
    });
    group.finish();

    let sequential_time = timed(3, || {
        let engine = Engine::new();
        queries
            .iter()
            .map(|q| engine.evaluate(&tid, q).unwrap().probability)
            .sum::<f64>()
    });
    let batch_time = timed(3, || {
        let engine = Engine::new();
        engine.evaluate_batch(&tid, &queries)
    });
    report_value(
        "A4",
        "batch_speedup_over_sequential",
        format!(
            "{:.2}x ({sequential_time:?} -> {batch_time:?}, {threads} threads)",
            sequential_time.as_secs_f64() / batch_time.as_secs_f64()
        ),
    );

    // --- Compile-once-query-many: weight-only re-evaluation vs cold
    // evaluation of the same query. The anchored self-join is the
    // representative what-if shape: "how does the probability of *this*
    // chain react to new trust weights?" — asked over and over while the
    // instance (and hence the compiled lineage) stays fixed.
    let query = ConjunctiveQuery::parse("R(\"c5\", x), R(x, y), R(y, z)").unwrap();
    let warm_engine = Engine::new();
    warm_engine.evaluate(&tid, &query).unwrap(); // compiles + caches
    let mut what_if = tid.clone();
    for i in 0..what_if.fact_count() {
        what_if.set_probability(stuc_data::instance::FactId(i), 0.25);
    }
    let new_weights = what_if.fact_weights();
    // Sanity: the fast path answers what a fresh evaluation answers.
    {
        let warm = warm_engine
            .reevaluate_with_weights(&tid, &query, &new_weights)
            .unwrap();
        assert!(warm.lineage_cached);
        let fresh = Engine::new().evaluate(&what_if, &query).unwrap();
        assert!((warm.probability - fresh.probability).abs() < 1e-9);
    }

    let mut group = criterion.benchmark_group("a4_reevaluate_vs_cold");
    group.bench_function("reevaluate_with_weights_warm", |b| {
        b.iter(|| {
            warm_engine
                .reevaluate_with_weights(&tid, &query, &new_weights)
                .unwrap()
                .probability
        })
    });
    group.bench_function("evaluate_cold", |b| {
        b.iter(|| {
            let engine = Engine::builder()
                .without_decomposition_cache()
                .without_lineage_cache()
                .build();
            engine.evaluate(&what_if, &query).unwrap().probability
        })
    });
    group.finish();

    let warm_time = timed(5, || {
        warm_engine
            .reevaluate_with_weights(&tid, &query, &new_weights)
            .unwrap()
            .probability
    });
    let cold_time = timed(5, || {
        let engine = Engine::builder()
            .without_decomposition_cache()
            .without_lineage_cache()
            .build();
        engine.evaluate(&what_if, &query).unwrap().probability
    });
    report_value(
        "A4",
        "reevaluate_speedup_over_cold",
        format!(
            "{:.2}x ({cold_time:?} -> {warm_time:?})",
            cold_time.as_secs_f64() / warm_time.as_secs_f64()
        ),
    );
    summary.record_speedup("reevaluate_warm_vs_cold", warm_time, cold_time);
    summary.record("batch_64_queries", batch_time);
    summary.record_speedup("batch_vs_sequential_64q", batch_time, sequential_time);

    // --- Scenario lanes: K=16 what-if weight tables answered by ONE lane
    // sweep (`reevaluate_with_weights_many`) vs 16 sequential
    // `reevaluate_with_weights` calls, all against the same warm compiled
    // lineage. The lane sweep shares the traversal, mask permutations and
    // constraint checks across all 16 scenarios.
    const K: usize = 16;
    let scenarios: Vec<_> = (0..K)
        .map(|k| {
            let mut shadow = tid.clone();
            for i in 0..shadow.fact_count() {
                let p = 0.05 + 0.9 * ((i + k) % 11) as f64 / 11.0;
                shadow.set_probability(stuc_data::instance::FactId(i), p);
            }
            shadow.fact_weights()
        })
        .collect();
    // Sanity: lanes agree with per-scenario re-evaluation exactly.
    {
        let many = warm_engine
            .reevaluate_with_weights_many(&tid, &query, &scenarios)
            .unwrap();
        assert_eq!(many.len(), K);
        for (weights, lane) in scenarios.iter().zip(&many) {
            let single = warm_engine
                .reevaluate_with_weights(&tid, &query, weights)
                .unwrap();
            assert!((single.probability - lane.probability).abs() < 1e-12);
        }
    }
    let mut group = criterion.benchmark_group("a4_scenario_lanes_k16");
    group.bench_function("reevaluate_many_lane_sweep", |b| {
        b.iter(|| {
            warm_engine
                .reevaluate_with_weights_many(&tid, &query, &scenarios)
                .unwrap()
                .len()
        })
    });
    group.bench_function("reevaluate_sequential_16", |b| {
        b.iter(|| {
            scenarios
                .iter()
                .map(|w| {
                    warm_engine
                        .reevaluate_with_weights(&tid, &query, w)
                        .unwrap()
                        .probability
                })
                .sum::<f64>()
        })
    });
    group.finish();
    let lanes_time = timed(5, || {
        warm_engine
            .reevaluate_with_weights_many(&tid, &query, &scenarios)
            .unwrap()
            .len()
    });
    let sequential_scenarios_time = timed(5, || {
        scenarios
            .iter()
            .map(|w| {
                warm_engine
                    .reevaluate_with_weights(&tid, &query, w)
                    .unwrap()
                    .probability
            })
            .sum::<f64>()
    });
    let lane_speedup = sequential_scenarios_time.as_secs_f64() / lanes_time.as_secs_f64();
    report_value(
        "A4",
        "scenario_lanes_k16_speedup_over_sequential",
        format!("{lane_speedup:.2}x ({sequential_scenarios_time:?} -> {lanes_time:?})"),
    );
    summary.record_speedup(
        "scenario_lanes_k16_vs_sequential",
        lanes_time,
        sequential_scenarios_time,
    );
    assert!(
        lane_speedup >= 4.0,
        "K=16 scenario lanes must be ≥4x faster than 16 sequential \
         re-evaluations, got {lane_speedup:.2}x"
    );

    summary.write();
    criterion.final_summary();
}
