//! E9 — §3 order uncertainty: PosRA over po-relations; possible-world
//! membership is cheap for the structured cases (unordered / totally
//! ordered) and expensive in general; counting linear extensions grows
//! exponentially with the width of the order.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_order::porelation::PoRelation;
use stuc_order::posra::{select, union_parallel};

fn list(prefix: &str, n: usize) -> PoRelation {
    PoRelation::totally_ordered((0..n).map(|i| vec![format!("{prefix}{i}")]).collect())
}

fn main() {
    let mut criterion = criterion_config();

    // Counting linear extensions of k parallel chains of length 4.
    let mut group = criterion.benchmark_group("e9_linear_extension_counting");
    for &chains in &[1usize, 2, 3, 4] {
        let mut po = list("c0_", 4);
        for c in 1..chains {
            po = union_parallel(&po, &list(&format!("c{c}_"), 4));
        }
        let count = po.count_linear_extensions().unwrap();
        report_value("E9", &format!("chains{chains}_linear_extensions"), count);
        group.bench_with_input(
            BenchmarkId::new("count_linear_extensions", chains),
            &chains,
            |b, _| b.iter(|| po.count_linear_extensions().unwrap()),
        );
    }
    group.finish();

    // Possible-world membership: structured vs general.
    let total = list("t", 12);
    let unordered = PoRelation::unordered((0..12).map(|i| vec![format!("t{}", i % 3)]).collect());
    let mut general = union_parallel(&list("a", 6), &list("b", 6));
    // Relabel-free: the general case has duplicate-free labels; build a world.
    let world_total: Vec<Vec<String>> = (0..12).map(|i| vec![format!("t{i}")]).collect();
    let world_unordered: Vec<Vec<String>> =
        (0..12).map(|i| vec![format!("t{}", (i * 7) % 3)]).collect();
    let mut world_general: Vec<Vec<String>> = Vec::new();
    for i in 0..6 {
        world_general.push(vec![format!("a{i}")]);
        world_general.push(vec![format!("b{i}")]);
    }
    report_value(
        "E9",
        "membership_total_order",
        total.is_possible_world(&world_total),
    );
    report_value(
        "E9",
        "membership_unordered",
        unordered.is_possible_world(&world_unordered),
    );
    report_value(
        "E9",
        "membership_general",
        general.is_possible_world(&world_general),
    );

    let mut group = criterion.benchmark_group("e9_possible_world_membership");
    group.bench_function("totally_ordered", |b| {
        b.iter(|| total.is_possible_world(&world_total))
    });
    group.bench_function("unordered", |b| {
        b.iter(|| unordered.is_possible_world(&world_unordered))
    });
    group.bench_function("general_interleaving", |b| {
        b.iter(|| general.is_possible_world(&world_general))
    });
    group.finish();

    // A PosRA pipeline on the log-integration workload.
    let mut group = criterion.benchmark_group("e9_posra_pipeline");
    group.bench_function("merge_select_errors", |b| {
        b.iter(|| {
            let merged = union_parallel(&list("server", 20), &list("worker", 20));
            select(&merged, |t| t[0].ends_with('3')).len()
        })
    });
    group.finish();
    let _ = &mut general;
    criterion.final_summary();
}
