//! E11 — §4 conditioning: conditioning on an event is cheap, conditioning on
//! a fact (an arbitrary annotation) goes through Bayes over lineage circuits;
//! iterative crowd question selection reduces the entropy of a target query
//! fastest when picking the maximum-information question.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::circuit::VarId;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_cond::conditioning::{condition_on_event, conditioned_query_probability};
use stuc_cond::crowd::{entropy, interactive_conditioning, CrowdOracle};
use stuc_core::workloads::contributor_pcc;
use stuc_data::cinstance::CInstance;
use stuc_data::instance::FactId;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::lineage::pcc_lineage;

fn main() {
    let mut criterion = criterion_config();

    // Event- vs fact-conditioning on the Table 1 pc-instance.
    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);
    let pc = ci.with_probabilities(weights);
    let query = ConjunctiveQuery::parse("Trip(x, \"Portland_PDX\")").unwrap();

    let conditioned = conditioned_query_probability(&pc, &query, FactId(4), true).unwrap();
    report_value(
        "E11",
        "p_portland_given_pdx_cdg_booked",
        format!("{conditioned:.4}"),
    );

    let mut group = criterion.benchmark_group("e11_conditioning_modes");
    group.bench_function("condition_on_event", |b| {
        b.iter(|| {
            let mut copy = pc.clone();
            condition_on_event(&mut copy, pods, true);
            copy.probabilities().get(pods)
        })
    });
    group.bench_function("condition_on_fact_via_bayes", |b| {
        b.iter(|| conditioned_query_probability(&pc, &query, FactId(4), true).unwrap())
    });
    group.finish();

    // Iterative crowd loop: informed selection vs asking in a fixed order.
    let pcc = contributor_pcc(8, 3, 0.7, 0.6, 99);
    let target = ConjunctiveQuery::parse("Claim(\"entity0\", x), Claim(\"entity1\", y)").unwrap();
    let lineage = pcc_lineage(&pcc, &target);
    let prior = TreewidthWmc::default()
        .probability(&lineage, pcc.probabilities())
        .unwrap();
    report_value(
        "E11",
        "prior_entropy_bits",
        format!("{:.4}", entropy(prior)),
    );
    let oracle = CrowdOracle::perfect(BTreeMap::from([
        (VarId(0), true),
        (VarId(1), true),
        (VarId(2), false),
    ]));
    let candidates: Vec<VarId> = (0..3).map(VarId).collect();
    let mut rng = StdRng::seed_from_u64(4);
    let (asked, posterior) = interactive_conditioning(
        &lineage,
        pcc.probabilities(),
        &candidates,
        &oracle,
        0.1,
        5,
        &mut rng,
    )
    .unwrap();
    report_value(
        "E11",
        "informed_selection",
        format!(
            "questions={} posterior_entropy={:.4}",
            asked.len(),
            entropy(posterior)
        ),
    );

    let mut group = criterion.benchmark_group("e11_crowd_loop");
    group.bench_function("interactive_conditioning_budget5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            interactive_conditioning(
                &lineage,
                pcc.probabilities(),
                &candidates,
                &oracle,
                0.1,
                5,
                &mut rng,
            )
            .unwrap()
            .1
        })
    });
    group.finish();
    criterion.final_summary();
}
