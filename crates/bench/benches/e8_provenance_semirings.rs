//! E8 — §2.2 semiring provenance: the lineage circuits produced for monotone
//! queries are provenance circuits; evaluating them in different absorptive
//! semirings (Boolean, counting, tropical, Why) costs a single bottom-up
//! pass.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::semiring::{
    evaluate_provenance, BoolSemiring, CountingSemiring, TropicalSemiring, WhyProvenance,
};
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let tid = workloads::path_tid(60, 0.5, 9);
    let lineage = engine.lineage(&tid, &query).unwrap();
    report_value("E8", "lineage_gates", lineage.len());
    report_value("E8", "lineage_monotone", lineage.is_monotone());

    let count = evaluate_provenance(&lineage, |_| CountingSemiring(1)).unwrap();
    report_value("E8", "derivation_count", count.0);
    let cheapest =
        evaluate_provenance(&lineage, |v| TropicalSemiring::cost(1 + v.0 as u64 % 3)).unwrap();
    report_value("E8", "cheapest_derivation_cost", format!("{cheapest:?}"));
    let why = evaluate_provenance(&lineage, WhyProvenance::var).unwrap();
    report_value("E8", "minimal_witness_sets", why.0.len());

    let mut group = criterion.benchmark_group("e8_provenance_semirings");
    group.bench_with_input(BenchmarkId::new("semiring", "boolean"), &(), |b, _| {
        b.iter(|| evaluate_provenance(&lineage, |_| BoolSemiring(true)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("semiring", "counting"), &(), |b, _| {
        b.iter(|| evaluate_provenance(&lineage, |_| CountingSemiring(1)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("semiring", "tropical"), &(), |b, _| {
        b.iter(|| {
            evaluate_provenance(&lineage, |v| TropicalSemiring::cost(1 + v.0 as u64 % 3)).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("semiring", "why"), &(), |b, _| {
        b.iter(|| evaluate_provenance(&lineage, WhyProvenance::var).unwrap())
    });
    group.finish();
    criterion.final_summary();
}
