//! A3 (ablation) — cost of the engine's automatic strategy selection.
//!
//! The unified `Engine` adds work on top of the raw Theorem 1 calls: the
//! hierarchy test for the safe-plan fast path, the fingerprint hash and
//! cache lookup, the circuit-width estimate that picks treewidth-WMC vs
//! DPLL. This bench measures that dispatch overhead on the path workload by
//! comparing, for the same query:
//!
//! * `direct_wmc` — hand-rolled: decompose, build the lineage, run
//!   `TreewidthWmc`, no engine involved (the pre-engine code path);
//! * `engine_fixed_wmc` — engine with the back-end pinned (no selection
//!   logic, but fingerprint + cache);
//! * `engine_auto` — full automatic selection;
//! * `engine_auto_uncached` — automatic selection with the decomposition
//!   cache disabled (every call re-decomposes the Gaifman graph).
//!
//! Future scaling PRs (batching, sharding) build on the engine; this records
//! what the abstraction itself costs.

use criterion::BenchmarkId;
use stuc_automata::courcelle::cq_lineage_circuit;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::wmc::TreewidthWmc;
use stuc_core::engine::{BackendKind, Engine};
use stuc_core::workloads;
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();

    for &n in &[20usize, 100, 400] {
        let tid = workloads::path_tid(n, 0.5, 13);

        // Sanity: all variants agree before we time them.
        let direct = {
            let td =
                decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinDegree);
            let lineage =
                cq_lineage_circuit(tid.instance(), &td, &query, |f| tid.fact_event(f)).unwrap();
            TreewidthWmc::default()
                .probability(&lineage, &tid.fact_weights())
                .unwrap()
        };
        let auto_engine = Engine::new();
        let from_engine = auto_engine.evaluate(&tid, &query).unwrap();
        assert!((direct - from_engine.probability).abs() < 1e-9);
        report_value("A3", &format!("n{n}_backend"), from_engine.backend_name());

        let mut group = criterion.benchmark_group(format!("a3_engine_dispatch_n{n}"));
        group.bench_with_input(BenchmarkId::new("direct_wmc", n), &n, |b, _| {
            b.iter(|| {
                let td =
                    decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinDegree);
                let lineage =
                    cq_lineage_circuit(tid.instance(), &td, &query, |f| tid.fact_event(f)).unwrap();
                TreewidthWmc::default()
                    .probability(&lineage, &tid.fact_weights())
                    .unwrap()
            })
        });

        let fixed = Engine::builder().backend(BackendKind::TreewidthWmc).build();
        group.bench_with_input(BenchmarkId::new("engine_fixed_wmc", n), &n, |b, _| {
            b.iter(|| fixed.evaluate(&tid, &query).unwrap().probability)
        });

        group.bench_with_input(BenchmarkId::new("engine_auto", n), &n, |b, _| {
            b.iter(|| auto_engine.evaluate(&tid, &query).unwrap().probability)
        });

        let uncached = Engine::builder().without_decomposition_cache().build();
        group.bench_with_input(BenchmarkId::new("engine_auto_uncached", n), &n, |b, _| {
            b.iter(|| uncached.evaluate(&tid, &query).unwrap().probability)
        });
        group.finish();
    }

    // The safe-plan fast path: dispatch *saves* work for hierarchical
    // queries, which is the other half of the selection trade-off.
    let tid = workloads::path_tid(400, 0.5, 13);
    let hierarchical = ConjunctiveQuery::parse("R(x, y)").unwrap();
    let engine = Engine::new();
    let report = engine.evaluate(&tid, &hierarchical).unwrap();
    report_value("A3", "hierarchical_backend", report.backend_name());
    let mut group = criterion.benchmark_group("a3_safe_plan_fast_path");
    group.bench_function("engine_auto_hierarchical", |b| {
        b.iter(|| engine.evaluate(&tid, &hierarchical).unwrap().probability)
    });
    let pinned = Engine::builder().backend(BackendKind::TreewidthWmc).build();
    group.bench_function("engine_fixed_wmc_hierarchical", |b| {
        b.iter(|| pinned.evaluate(&tid, &hierarchical).unwrap().probability)
    });
    group.finish();
    criterion.final_summary();
}
