//! A6 (ablation) — posterior inference on compiled circuits.
//!
//! The inference subsystem claims three amortisations over naive
//! approaches, all on the a4 workload (the 80-fact path instance):
//!
//! * **All-fact marginals** — one backward sweep over the retained plan
//!   tables answers `P(fact | query)` for every fact; the baseline is one
//!   conditioned counting sweep per fact (n + 1 sweeps). The speedup is
//!   asserted (≥5x) in `tests/perf_smoke.rs`; here it is measured and
//!   recorded in `BENCH_a6.json`.
//! * **Exact world sampling** — one retained sweep then O(plan) per draw;
//!   1000 exact i.i.d. worlds are drawn per iteration.
//! * **Most-probable-world** — one max-product sweep + argmax descent,
//!   about the cost of a single WMC sweep.

use stuc_bench::{criterion_config, report_value, timed, BenchSummary};
use stuc_circuit::circuit::VarId;
use stuc_circuit::weights::Weights;
use stuc_core::engine::Engine;
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

/// The conditioned-WMC baseline: `p(v) * P(φ | v:=1) / P(φ)` for every
/// fact, one counting sweep each, through the warm engine.
fn conditioned_marginals(
    engine: &Engine,
    tid: &stuc_data::tid::TidInstance,
    query: &ConjunctiveQuery,
    weights: &Weights,
    evidence: f64,
) -> Vec<(VarId, f64)> {
    weights
        .iter()
        .map(|(v, prior)| {
            let mut fixed = weights.clone();
            fixed.fix(v, true);
            let conditioned = engine
                .reevaluate_with_weights(tid, query, &fixed)
                .unwrap()
                .probability;
            (v, prior * conditioned / evidence)
        })
        .collect()
}

fn main() {
    let mut criterion = criterion_config();
    let mut summary = BenchSummary::new("a6");

    // The a4 instance with the unanchored chain query: every one of the 80
    // facts appears in the lineage, so the marginal workload is n = 80.
    let tid = workloads::path_tid(80, 0.5, 13);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let weights = tid.fact_weights();
    let engine = Engine::new();
    let evidence = engine.evaluate(&tid, &query).unwrap().probability; // warm the cache
    report_value("A6", "facts", tid.fact_count());
    report_value("A6", "evidence_probability", evidence);

    // Sanity: the backward sweep agrees with the conditioned baseline.
    let marginals = engine.marginals(&tid, &query).unwrap();
    let baseline = conditioned_marginals(&engine, &tid, &query, &weights, evidence);
    for &(v, reference) in &baseline {
        let got = marginals.get(v).unwrap();
        assert!((got - reference).abs() < 1e-9, "{v}: {got} vs {reference}");
    }
    report_value("A6", "marginal_sweeps", marginals.report.sweeps_run);
    report_value("A6", "tables_retained", marginals.report.tables_retained);

    // --- All-fact marginals vs n conditioned evaluations.
    let mut group = criterion.benchmark_group("a6_marginals_80_facts");
    group.bench_function("backward_sweep_all_facts", |b| {
        b.iter(|| engine.marginals(&tid, &query).unwrap().len())
    });
    group.bench_function("conditioned_per_fact", |b| {
        b.iter(|| conditioned_marginals(&engine, &tid, &query, &weights, evidence).len())
    });
    group.finish();

    let marginals_time = timed(5, || engine.marginals(&tid, &query).unwrap().len());
    let conditioned_time = timed(5, || {
        conditioned_marginals(&engine, &tid, &query, &weights, evidence).len()
    });
    report_value(
        "A6",
        "all_fact_marginals_speedup_vs_conditioned",
        format!(
            "{:.1}x ({conditioned_time:?} -> {marginals_time:?})",
            conditioned_time.as_secs_f64() / marginals_time.as_secs_f64()
        ),
    );
    summary.record_speedup("marginals_all_facts", marginals_time, conditioned_time);
    summary.record("marginals_conditioned_baseline", conditioned_time);

    // --- Exact world sampling: setup sweep + 1000 descents.
    let mut group = criterion.benchmark_group("a6_sampling");
    group.bench_function("sample_1000_worlds", |b| {
        b.iter(|| {
            engine
                .sample_worlds(&tid, &query, 1000, 42)
                .unwrap()
                .worlds
                .len()
        })
    });
    group.finish();
    let sampling_time = timed(5, || {
        engine
            .sample_worlds(&tid, &query, 1000, 42)
            .unwrap()
            .worlds
            .len()
    });
    summary.record("sample_1000_worlds", sampling_time);
    report_value(
        "A6",
        "sample_1000_worlds_best",
        format!("{sampling_time:?}"),
    );

    // --- Most-probable-world: max-product sweep + argmax descent.
    let mpe = engine.most_probable_world(&tid, &query).unwrap();
    report_value("A6", "mpe_probability", mpe.probability);
    let mut group = criterion.benchmark_group("a6_mpe");
    group.bench_function("most_probable_world", |b| {
        b.iter(|| {
            engine
                .most_probable_world(&tid, &query)
                .unwrap()
                .probability
        })
    });
    group.finish();
    let mpe_time = timed(5, || {
        engine
            .most_probable_world(&tid, &query)
            .unwrap()
            .probability
    });
    summary.record("most_probable_world", mpe_time);

    // One plain counting sweep for scale: how much do the inference modes
    // cost relative to the number they generalise?
    let wmc_time = timed(5, || {
        engine
            .reevaluate_with_weights(&tid, &query, &weights)
            .unwrap()
            .probability
    });
    summary.record("single_wmc_sweep", wmc_time);
    report_value("A6", "single_wmc_sweep_best", format!("{wmc_time:?}"));

    summary.write();
}
