//! E7 — §2.2 partial decompositions: a high-treewidth core handled by
//! sampling, low-treewidth tentacles handled exactly. At the same sample
//! budget, the hybrid estimator (tentacles integrated out exactly) has lower
//! error than naive all-facts sampling.

use stuc_bench::{criterion_config, report_value};
use stuc_core::engine::{BackendKind, Engine};
use stuc_core::hybrid::{detect_core_facts, hybrid_probability, naive_sampling_probability};
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let tid = workloads::core_tentacle_tid(6, 0.9, 4, 4, 0.5, 17);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let core = detect_core_facts(&tid, 1);
    let exact = Engine::builder()
        .backend(BackendKind::Enumeration)
        .build()
        .evaluate(&tid, &query)
        .unwrap()
        .probability;
    report_value("E7", "exact_reference", format!("{exact:.6}"));
    report_value("E7", "core_facts", core.len());
    report_value("E7", "tentacle_facts", tid.fact_count() - core.len());

    // Accuracy at equal budget, averaged over seeds.
    let budget = 200;
    let mut hybrid_error = 0.0;
    let mut naive_error = 0.0;
    for seed in 0..10 {
        let h = hybrid_probability(&tid, &query, &core, budget, seed)
            .unwrap()
            .probability;
        hybrid_error += (h - exact).abs() / 10.0;
        naive_error +=
            (naive_sampling_probability(&tid, &query, budget, seed) - exact).abs() / 10.0;
    }
    report_value("E7", "hybrid_mean_abs_error", format!("{hybrid_error:.5}"));
    report_value(
        "E7",
        "naive_sampling_mean_abs_error",
        format!("{naive_error:.5}"),
    );

    let mut group = criterion.benchmark_group("e7_hybrid_core_tentacles");
    group.bench_function("hybrid_200_samples", |b| {
        b.iter(|| {
            hybrid_probability(&tid, &query, &core, budget, 1)
                .unwrap()
                .probability
        })
    });
    group.bench_function("naive_sampling_200_samples", |b| {
        b.iter(|| naive_sampling_probability(&tid, &query, budget, 1))
    });
    group.finish();
    criterion.final_summary();
}
