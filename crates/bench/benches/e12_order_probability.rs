//! E12 — §3 extensions: a probabilistic model on uncertain orders.
//!
//! The uniform distribution over linear extensions (precedence / rank / top-k
//! probabilities, exact uniform sampling) and the set-semantics operators.
//! The paper's point — counting-based tasks grow combinatorially with the
//! "width" of the order while the structured special cases stay cheap — is
//! measured by sweeping the number of parallel chains being integrated.

use criterion::BenchmarkId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stuc_bench::{criterion_config, report_value};
use stuc_order::porelation::PoRelation;
use stuc_order::posra::union_parallel;
use stuc_order::probability::LinearExtensionDistribution;
use stuc_order::setops::{distinct_certain, set_possible_worlds};

fn list(prefix: &str, n: usize) -> PoRelation {
    PoRelation::totally_ordered((0..n).map(|i| vec![format!("{prefix}{i}")]).collect())
}

fn chains(count: usize, length: usize) -> PoRelation {
    let mut po = list("c0_", length);
    for c in 1..count {
        po = union_parallel(&po, &list(&format!("c{c}_"), length));
    }
    po
}

fn main() {
    let mut criterion = criterion_config();

    // Exact values on a 2×3-chain integration: precedence probabilities are
    // symmetric across chains, the first element of each chain is equally
    // likely to come first.
    let two_chains = chains(2, 3);
    let distribution = LinearExtensionDistribution::new(&two_chains).unwrap();
    report_value(
        "E12",
        "two_chains_extensions",
        distribution.total_extensions(),
    );
    let first_a = two_chains
        .elements()
        .find(|(_, t)| t[0] == "c0_0")
        .unwrap()
        .0;
    let first_b = two_chains
        .elements()
        .find(|(_, t)| t[0] == "c1_0")
        .unwrap()
        .0;
    report_value(
        "E12",
        "p_first_of_chain0_before_chain1",
        format!(
            "{:.4}",
            distribution.precedence_probability(first_a, first_b)
        ),
    );
    report_value(
        "E12",
        "p_chain0_head_ranked_first",
        format!("{:.4}", distribution.rank_distribution(first_a)[0]),
    );

    // Distribution construction cost grows with the number of elements
    // (2^n table); the tractable inputs are the small-width ones.
    let mut group = criterion.benchmark_group("e12_distribution_construction");
    for &count in &[2usize, 3, 4, 5] {
        let po = chains(count, 4);
        report_value(
            "E12",
            &format!("chains{count}_extensions"),
            po.count_linear_extensions().unwrap(),
        );
        group.bench_with_input(BenchmarkId::new("build", count), &count, |b, _| {
            b.iter(|| {
                LinearExtensionDistribution::new(&po)
                    .unwrap()
                    .total_extensions()
            })
        });
    }
    group.finish();

    // Per-query costs once the distribution is built.
    let po = chains(4, 4);
    let distribution = LinearExtensionDistribution::new(&po).unwrap();
    let a = po.elements().find(|(_, t)| t[0] == "c0_0").unwrap().0;
    let b_element = po.elements().find(|(_, t)| t[0] == "c3_3").unwrap().0;
    let mut group = criterion.benchmark_group("e12_distribution_queries");
    group.bench_function("precedence_probability", |bencher| {
        bencher.iter(|| distribution.precedence_probability(a, b_element))
    });
    group.bench_function("rank_distribution", |bencher| {
        bencher.iter(|| distribution.rank_distribution(b_element))
    });
    let mut rng = StdRng::seed_from_u64(42);
    group.bench_function("uniform_sample", |bencher| {
        bencher.iter(|| distribution.sample(&mut rng).len())
    });
    group.finish();

    // Set semantics: the certain-order distinct operator is polynomial while
    // the exact possible-world semantics enumerates linear extensions.
    let mut group = criterion.benchmark_group("e12_set_semantics");
    for &count in &[2usize, 3] {
        // Duplicate labels across chains: every chain ranks the same items.
        let mut po = list("item", 4);
        for _ in 1..count {
            po = union_parallel(&po, &list("item", 4));
        }
        let exact_worlds = set_possible_worlds(&po).unwrap().len();
        let certain = distinct_certain(&po);
        report_value(
            "E12",
            &format!("chains{count}_exact_set_worlds_vs_certain_order_worlds"),
            format!(
                "{exact_worlds} vs {}",
                certain.count_linear_extensions().unwrap()
            ),
        );
        group.bench_with_input(
            BenchmarkId::new("distinct_certain", count),
            &count,
            |b, _| b.iter(|| distinct_certain(&po).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("exact_set_worlds", count),
            &count,
            |b, _| b.iter(|| set_possible_worlds(&po).unwrap().len()),
        );
    }
    group.finish();

    criterion.final_summary();
}
