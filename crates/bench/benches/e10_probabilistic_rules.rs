//! E10 — §2.3 probabilistic rules: chase-based KB completion with soft rules;
//! derived-fact probabilities stay exact and the cost scales with the number
//! of rule applications when the derivations stay tree-like.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_data::tid::TidInstance;
use stuc_query::cq::ConjunctiveQuery;
use stuc_rules::chase::{ChaseConfig, ProbabilisticChase};
use stuc_rules::rule::Rule;

fn knowledge_base(people: usize) -> TidInstance {
    let mut kb = TidInstance::new();
    for i in 0..people {
        let country = format!("country{}", i % 5);
        kb.add_fact_named("Citizen", &[&format!("person{i}"), &country], 0.9);
    }
    for c in 0..5 {
        kb.add_fact_named(
            "OfficialLanguage",
            &[&format!("country{c}"), &format!("language{c}")],
            1.0,
        );
    }
    kb
}

fn rules() -> Vec<Rule> {
    vec![
        Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap(),
        Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.7).unwrap(),
    ]
}

fn main() {
    let mut criterion = criterion_config();

    // Correctness sanity: the chained probability is 0.9 · 0.8 · 0.7.
    let chase = ProbabilisticChase::new(rules());
    let result = chase.run(&knowledge_base(4)).unwrap();
    let q = ConjunctiveQuery::parse("Speaks(\"person0\", \"language0\")").unwrap();
    let p = result.query_probability(&q).unwrap();
    report_value(
        "E10",
        "speaks_probability",
        format!("{p:.4} (expected {:.4})", 0.9 * 0.8 * 0.7),
    );
    assert!((p - 0.9 * 0.8 * 0.7).abs() < 1e-9);

    let mut group = criterion.benchmark_group("e10_chase_scaling");
    for &people in &[10usize, 40, 160] {
        let kb = knowledge_base(people);
        let chase = ProbabilisticChase::new(rules()).with_config(ChaseConfig {
            max_rounds: 3,
            max_derived_facts: 100_000,
        });
        let derived = chase.run(&kb).unwrap().derived_fact_count();
        report_value("E10", &format!("people{people}_derived_facts"), derived);
        group.bench_with_input(BenchmarkId::new("chase", people), &people, |b, _| {
            b.iter(|| chase.run(&kb).unwrap().derived_fact_count())
        });
    }
    group.finish();

    let mut group = criterion.benchmark_group("e10_derived_fact_probability");
    let kb = knowledge_base(30);
    let result = ProbabilisticChase::new(rules()).run(&kb).unwrap();
    group.bench_function("query_probability_over_completed_kb", |b| {
        b.iter(|| result.query_probability(&q).unwrap())
    });
    group.finish();
    criterion.final_summary();
}
