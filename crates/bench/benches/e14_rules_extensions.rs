//! E14 — §2.3 extensions around the probabilistic chase: mining soft rules
//! from data, the hard-rule (certain) baseline, and truncating a
//! non-terminating chase with certified error bounds.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_data::instance::Instance;
use stuc_data::tid::TidInstance;
use stuc_query::cq::ConjunctiveQuery;
use stuc_rules::constraints::HardConstraints;
use stuc_rules::mining::RuleMiner;
use stuc_rules::truncation::TruncatedChase;
use stuc_rules::{ChaseConfig, ProbabilisticChase, Rule};

/// A Wikidata-style training KB with `people` persons spread over 4
/// countries; 3 out of 4 persons live in their country of citizenship and
/// speak its official language.
fn training_kb(people: usize) -> Instance {
    let countries = ["france", "japan", "brazil", "kenya"];
    let languages = ["french", "japanese", "portuguese", "swahili"];
    let mut kb = Instance::new();
    for (country, language) in countries.iter().zip(languages.iter()) {
        kb.add_fact_named("OfficialLanguage", &[country, language]);
    }
    for i in 0..people {
        let person = format!("person{i}");
        let country = countries[i % countries.len()];
        let language = languages[i % languages.len()];
        kb.add_fact_named("Citizen", &[&person, country]);
        if i % 4 != 3 {
            kb.add_fact_named("Lives", &[&person, country]);
            kb.add_fact_named("Speaks", &[&person, language]);
        } else {
            kb.add_fact_named("Lives", &[&person, "elsewhere"]);
        }
    }
    kb
}

fn main() {
    let mut criterion = criterion_config();

    // Mined confidences reflect the generator: Lives :- Citizen holds for 3
    // out of 4 people.
    let miner = RuleMiner {
        min_support: 2,
        min_confidence: 0.5,
        mine_path_rules: true,
    };
    let mined = miner.mine(&training_kb(40));
    report_value("E14", "mined_rules", mined.len());
    if let Some(lives) = mined
        .iter()
        .find(|m| m.rule.head[0].relation == "Lives" && m.rule.body[0].relation == "Citizen")
    {
        report_value(
            "E14",
            "lives_rule_confidence",
            format!("{:.2} (expected 0.75)", lives.confidence()),
        );
    }

    // Rule mining scales with the knowledge-base size.
    let mut group = criterion.benchmark_group("e14_rule_mining");
    for &people in &[20usize, 40, 80] {
        let kb = training_kb(people);
        group.bench_with_input(BenchmarkId::new("mine", people), &people, |b, _| {
            b.iter(|| miner.mine(&kb).len())
        });
    }
    group.finish();

    // Hard (certain) chase versus probabilistic chase on the same rules.
    let soft_rules: Vec<Rule> = vec![
        Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.75).unwrap(),
        Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.9).unwrap(),
    ];
    let mut group = criterion.benchmark_group("e14_hard_vs_soft_completion");
    for &people in &[10usize, 40] {
        let kb = training_kb(people);
        let mut uncertain = TidInstance::new();
        for (_, fact) in kb.facts() {
            let relation = kb.relation_name(fact.relation).to_string();
            let args: Vec<String> = fact
                .args
                .iter()
                .map(|&c| kb.constant_name(c).to_string())
                .collect();
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            uncertain.add_fact_named(&relation, &arg_refs, 0.9);
        }
        let hard = HardConstraints::new(soft_rules.clone());
        group.bench_with_input(BenchmarkId::new("hard_chase", people), &people, |b, _| {
            b.iter(|| hard.saturate(&kb).unwrap().fact_count())
        });
        let soft = ProbabilisticChase::new(soft_rules.clone()).with_config(ChaseConfig {
            max_rounds: 3,
            max_derived_facts: 100_000,
        });
        group.bench_with_input(BenchmarkId::new("soft_chase", people), &people, |b, _| {
            b.iter(|| soft.run(&uncertain).unwrap().derived_fact_count())
        });
    }
    group.finish();

    // Truncation of a non-terminating rule set: the certified interval per
    // depth, and the cost of evaluating it.
    let ancestor_rules = vec![Rule::parse("Ancestor(x, a), Person(a) :- Person(x)", 0.6).unwrap()];
    let mut people = TidInstance::new();
    people.add_fact_named("Person", &["root"], 1.0);
    let truncated = TruncatedChase::new(ancestor_rules);
    let query = ConjunctiveQuery::parse("Ancestor(\"root\", x)").unwrap();
    let mut group = criterion.benchmark_group("e14_chase_truncation");
    for &depth in &[1usize, 2, 4] {
        let report = truncated.evaluate(&people, &query, depth).unwrap();
        report_value(
            "E14",
            &format!("depth{depth}_bounds"),
            format!(
                "[{:.4}, {:.4}] error {:.4}",
                report.lower_bound,
                report.upper_bound,
                report.error()
            ),
        );
        group.bench_with_input(
            BenchmarkId::new("truncated_evaluate", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    truncated
                        .evaluate(&people, &query, depth)
                        .unwrap()
                        .lower_bound
                })
            },
        );
    }
    group.finish();

    criterion.final_summary();
}
