//! A1 (ablation) — decomposition heuristics: min-degree vs min-fill vs the
//! lexicographic strawman, on partial k-trees and grids; width achieved and
//! decomposition time.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_graph::elimination::{
    decompose_with_heuristic, elimination_order, reference_min_fill_order, EliminationHeuristic,
};
use stuc_graph::exact::mmd_lower_bound;
use stuc_graph::generators;

fn main() {
    let mut criterion = criterion_config();

    let workloads = [
        (
            "partial_3_tree_200",
            generators::partial_k_tree(200, 3, 0.6, 11),
        ),
        ("grid_8x8", generators::grid(8, 8)),
        ("caterpillar_100x3", generators::caterpillar(100, 3)),
    ];

    for (name, graph) in &workloads {
        report_value("A1", &format!("{name}_lower_bound"), mmd_lower_bound(graph));
        for heuristic in EliminationHeuristic::ALL {
            let td = decompose_with_heuristic(graph, heuristic);
            assert!(td.validate(graph).is_ok());
            report_value(
                "A1",
                &format!("{name}_{}_width", heuristic.name()),
                td.width(),
            );
        }
        // Micro-assertion: the bitset-backed min-fill must produce exactly
        // the ordering of the reference BTreeSet implementation.
        assert_eq!(
            elimination_order(graph, EliminationHeuristic::MinFill),
            reference_min_fill_order(graph),
            "bitset min-fill diverged from the reference ordering on {name}"
        );
    }
    report_value("A1", "min_fill_orders_match_reference", "yes");

    let mut group = criterion.benchmark_group("a1_decomposition_heuristics");
    for (name, graph) in &workloads {
        for heuristic in EliminationHeuristic::ALL {
            group.bench_with_input(
                BenchmarkId::new(heuristic.name(), name),
                &heuristic,
                |b, &h| b.iter(|| decompose_with_heuristic(graph, h).width()),
            );
        }
    }
    group.finish();
    criterion.final_summary();
}
