//! E1 — Figure 1: exact query probabilities on the paper's PrXML document.
//!
//! Regenerates every probability implied by Figure 1 (the ind/mux/cie
//! annotations) and times the tractable evaluation against naive
//! possible-world enumeration.

use stuc_bench::{criterion_config, report_value};
use stuc_prxml::document::PrXmlDocument;
use stuc_prxml::queries::{query_probability, query_probability_by_enumeration, PrxmlQuery};

fn main() {
    let mut criterion = criterion_config();
    let doc = PrXmlDocument::figure1_example();

    let queries = [
        (
            "occupation_musician",
            PrxmlQuery::LabelExists("musician".into()),
        ),
        (
            "given_name_chelsea",
            PrxmlQuery::LabelExists("Chelsea".into()),
        ),
        (
            "given_name_bradley",
            PrxmlQuery::LabelExists("Bradley".into()),
        ),
        (
            "both_jane_facts",
            PrxmlQuery::And(
                Box::new(PrxmlQuery::LabelExists("place of birth".into())),
                Box::new(PrxmlQuery::LabelExists("surname".into())),
            ),
        ),
    ];

    for (name, query) in &queries {
        let p = query_probability(&doc, query).unwrap();
        report_value("E1", name, format!("{p:.4}"));
        let reference = query_probability_by_enumeration(&doc, query).unwrap();
        assert!((p - reference).abs() < 1e-9, "tractable and naive disagree");
    }

    let mut group = criterion.benchmark_group("e1_prxml_figure1");
    group.bench_function("treewidth_backend_all_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|(_, q)| query_probability(&doc, q).unwrap())
                .sum::<f64>()
        })
    });
    group.bench_function("world_enumeration_all_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|(_, q)| query_probability_by_enumeration(&doc, q).unwrap())
                .sum::<f64>()
        })
    });
    group.finish();
    criterion.final_summary();
}
