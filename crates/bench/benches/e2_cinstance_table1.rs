//! E2 — Table 1: possibility, certainty and probability of booking queries
//! on the paper's c-instance of conference trips.

use stuc_bench::{criterion_config, report_value};
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_data::cinstance::CInstance;
use stuc_data::worlds;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::lineage::cinstance_lineage;

fn main() {
    let mut criterion = criterion_config();
    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);

    let queries = [
        ("trip_from_cdg", "Trip(\"Paris_CDG\", x)"),
        (
            "round_trip_melbourne",
            "Trip(\"Paris_CDG\", \"Melbourne_MEL\"), Trip(\"Melbourne_MEL\", \"Paris_CDG\")",
        ),
        ("reaches_portland", "Trip(x, \"Portland_PDX\")"),
        ("any_trip", "Trip(x, y)"),
    ];
    let parsed: Vec<(&str, ConjunctiveQuery)> = queries
        .iter()
        .map(|(n, t)| (*n, ConjunctiveQuery::parse(t).unwrap()))
        .collect();

    for (name, query) in &parsed {
        let lineage = cinstance_lineage(&ci, query);
        let p = TreewidthWmc::default()
            .probability(&lineage, &weights)
            .unwrap();
        report_value(
            "E2",
            name,
            format!(
                "p={p:.4} possible={} certain={}",
                p > 1e-12,
                (p - 1.0).abs() < 1e-9
            ),
        );
    }
    report_value(
        "E2",
        "possible_worlds",
        worlds::enumerate_worlds(&ci).unwrap().len(),
    );

    let mut group = criterion.benchmark_group("e2_cinstance_table1");
    group.bench_function("lineage_plus_wmc", |b| {
        b.iter(|| {
            parsed
                .iter()
                .map(|(_, q)| {
                    let lineage = cinstance_lineage(&ci, q);
                    TreewidthWmc::default()
                        .probability(&lineage, &weights)
                        .unwrap()
                })
                .sum::<f64>()
        })
    });
    group.bench_function("world_enumeration", |b| {
        b.iter(|| {
            let pc = ci.clone().with_probabilities(weights.clone());
            worlds::query_probability(&pc, |facts| !facts.is_empty()).unwrap()
        })
    });
    group.finish();
    criterion.final_summary();
}
