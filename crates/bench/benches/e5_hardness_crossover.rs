//! E5 — the §1 hardness example: `∃xy R(x), S(x,y), T(y)` is `#P`-hard on
//! arbitrary TIDs (here: complete bipartite instances, growing width) but
//! stays easy on path-shaped data. The extensional safe-plan baseline simply
//! refuses the query (it is not hierarchical), which is the point of the
//! comparison: data-based tractability applies where query-based
//! tractability does not.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_core::engine::{BackendKind, Engine, StucError};
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();

    // The extensional back-end refuses the query outright.
    let safe_plan = Engine::builder().backend(BackendKind::SafePlan).build();
    let refused = matches!(
        safe_plan.evaluate(&workloads::rst_path_tid(5, 0.5, 1), &query),
        Err(StucError::SafePlan(_))
    );
    report_value("E5", "safe_plan_refuses_unsafe_query", refused);

    // Tree-shaped data: the pipeline scales linearly.
    let mut group = criterion.benchmark_group("e5_path_shaped_data");
    for &n in &[50usize, 200, 800] {
        let tid = workloads::rst_path_tid(n, 0.5, 3);
        let report = engine.evaluate(&tid, &query).unwrap();
        report_value(
            "E5",
            &format!("path_n{n}"),
            format!(
                "p={:.4} width={:?} backend={}",
                report.probability,
                report.decomposition_width,
                report.backend_name()
            ),
        );
        group.bench_with_input(BenchmarkId::new("engine_auto", n), &n, |b, _| {
            b.iter(|| engine.evaluate(&tid, &query).unwrap().probability)
        });
    }
    group.finish();

    // Bipartite data: width grows with n; the DPLL (lineage) method's cost
    // explodes, the pipeline's width-limited back-end eventually refuses.
    let mut group = criterion.benchmark_group("e5_bipartite_data");
    for &n in &[2usize, 3, 4, 5] {
        let tid = workloads::rst_bipartite_tid(n, 0.5, 3);
        let width = engine.decomposition_for(&tid).0.width();
        report_value("E5", &format!("bipartite_n{n}_width"), width);
        let dpll = Engine::builder().backend(BackendKind::Dpll).build();
        group.bench_with_input(BenchmarkId::new("dpll_lineage", n), &n, |b, _| {
            b.iter(|| dpll.evaluate(&tid, &query).unwrap().probability)
        });
    }
    group.finish();
    criterion.final_summary();
}
