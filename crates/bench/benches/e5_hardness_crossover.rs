//! E5 — the §1 hardness example: `∃xy R(x), S(x,y), T(y)` is `#P`-hard on
//! arbitrary TIDs (here: complete bipartite instances, growing width) but
//! stays easy on path-shaped data. The extensional safe-plan baseline simply
//! refuses the query (it is not hierarchical), which is the point of the
//! comparison: data-based tractability applies where query-based
//! tractability does not.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_core::pipeline::{PipelineError, TractablePipeline};
use stuc_core::workloads;
use stuc_query::cq::ConjunctiveQuery;

fn main() {
    let mut criterion = criterion_config();
    let pipeline = TractablePipeline::default();
    let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();

    // The extensional baseline refuses the query outright.
    let refused = matches!(
        pipeline.baseline_safe_plan(&workloads::rst_path_tid(5, 0.5, 1), &query),
        Err(PipelineError::SafePlan(_))
    );
    report_value("E5", "safe_plan_refuses_unsafe_query", refused);

    // Tree-shaped data: the pipeline scales linearly.
    let mut group = criterion.benchmark_group("e5_path_shaped_data");
    for &n in &[50usize, 200, 800] {
        let tid = workloads::rst_path_tid(n, 0.5, 3);
        let report = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        report_value("E5", &format!("path_n{n}"), format!("p={:.4} width={}", report.probability, report.decomposition_width));
        group.bench_with_input(BenchmarkId::new("tractable_pipeline", n), &n, |b, _| {
            b.iter(|| pipeline.evaluate_cq_on_tid(&tid, &query).unwrap().probability)
        });
    }
    group.finish();

    // Bipartite data: width grows with n; the DPLL (lineage) method's cost
    // explodes, the pipeline's width-limited back-end eventually refuses.
    let mut group = criterion.benchmark_group("e5_bipartite_data");
    for &n in &[2usize, 3, 4, 5] {
        let tid = workloads::rst_bipartite_tid(n, 0.5, 3);
        let width = pipeline.decompose_tid(&tid).width();
        report_value("E5", &format!("bipartite_n{n}_width"), width);
        group.bench_with_input(BenchmarkId::new("dpll_lineage", n), &n, |b, _| {
            b.iter(|| pipeline.baseline_dpll(&tid, &query).unwrap())
        });
    }
    group.finish();
    criterion.final_summary();
}
