//! E15 — §4: conditioning PrXML documents with constraints.
//!
//! Conditioning on the value of a named event is a constant-time weight
//! update; conditioning on an observed constraint (a tree pattern, a negated
//! pattern, a counting constraint) goes through Bayes over lineage circuits
//! sharing the document's presence gates. The circuit route stays exact and
//! fast as long as the circuits do — the conditioning replay of the paper's
//! structural-tractability story — while the enumeration cross-check grows
//! exponentially with the number of document variables.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_prxml::constraints::{
    condition_on_event, conditioned_query_probability,
    conditioned_query_probability_by_enumeration, constraint_probability, PrxmlConstraint,
};
use stuc_prxml::document::PrXmlDocument;
use stuc_prxml::generator::{wikidata_style_document, WikidataStyleConfig};
use stuc_prxml::queries::{query_probability, PrxmlQuery};

fn main() {
    let mut criterion = criterion_config();

    // Figure 1 anchor values: observing the surname makes the (eJane-
    // correlated) place of birth certain; observing the occupation leaves the
    // given name at its prior.
    let figure1 = PrXmlDocument::figure1_example();
    let birth_given_surname = conditioned_query_probability(
        &figure1,
        &PrxmlQuery::LabelExists("Crescent".into()),
        &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Manning".into())),
    )
    .unwrap();
    report_value(
        "E15",
        "p_place_of_birth_given_surname",
        format!("{birth_given_surname:.4} (expected 1.0000)"),
    );
    let chelsea_given_musician = conditioned_query_probability(
        &figure1,
        &PrxmlQuery::LabelExists("Chelsea".into()),
        &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("musician".into())),
    )
    .unwrap();
    report_value(
        "E15",
        "p_chelsea_given_musician",
        format!("{chelsea_given_musician:.4} (expected 0.6000)"),
    );

    // Event conditioning is a weight update; constraint conditioning goes
    // through the circuits.
    let mut group = criterion.benchmark_group("e15_figure1_conditioning");
    group.bench_function("condition_on_event", |b| {
        b.iter(|| {
            let mut doc = PrXmlDocument::figure1_example();
            condition_on_event(&mut doc, "eJane", true).unwrap();
            query_probability(&doc, &PrxmlQuery::LabelExists("Manning".into())).unwrap()
        })
    });
    group.bench_function("condition_on_constraint", |b| {
        b.iter(|| {
            conditioned_query_probability(
                &figure1,
                &PrxmlQuery::LabelExists("Crescent".into()),
                &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Manning".into())),
            )
            .unwrap()
        })
    });
    group.bench_function("condition_by_enumeration", |b| {
        b.iter(|| {
            conditioned_query_probability_by_enumeration(
                &figure1,
                &PrxmlQuery::LabelExists("Crescent".into()),
                &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Manning".into())),
            )
            .unwrap()
        })
    });
    group.finish();

    // Scaling on synthetic Wikidata-style documents: circuit-based
    // conditioning versus the enumeration cross-check as the document grows.
    // Query: is the first extracted value present? Constraint: at least two
    // entities have their "property0" recorded.
    let query = PrxmlQuery::LabelExists("value_e0_p0".into());
    let constraint = PrxmlConstraint::AtLeast {
        label: "property0".into(),
        min: 2,
    };
    let mut group = criterion.benchmark_group("e15_conditioning_scaling");
    for &entities in &[4usize, 8, 16] {
        let config = WikidataStyleConfig {
            entities,
            properties_per_entity: 2,
            contributors: 2,
            scope_depth: 1,
            extraction_probability: 0.8,
            trust_probability: 0.9,
        };
        let doc = wikidata_style_document(&config);
        report_value(
            "E15",
            &format!("entities{entities}_constraint_probability"),
            format!("{:.4}", constraint_probability(&doc, &constraint).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("circuit_bayes", entities),
            &entities,
            |b, _| b.iter(|| conditioned_query_probability(&doc, &query, &constraint).unwrap()),
        );
        if entities <= 4 {
            group.bench_with_input(
                BenchmarkId::new("enumeration", entities),
                &entities,
                |b, _| {
                    b.iter(|| {
                        conditioned_query_probability_by_enumeration(&doc, &query, &constraint)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();

    criterion.final_summary();
}
