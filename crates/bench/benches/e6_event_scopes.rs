//! E6 — §2.1 / [7]: PrXML documents whose *event scopes* are bounded stay
//! tractable; the lineage-circuit width (and evaluation cost) tracks the
//! maximum node scope, which the generator controls through the nesting
//! depth of contributor-conditioned sections.

use criterion::BenchmarkId;
use stuc_bench::{criterion_config, report_value};
use stuc_circuit::wmc::TreewidthWmc;
use stuc_prxml::generator::{wikidata_style_document, WikidataStyleConfig};
use stuc_prxml::queries::{query_lineage, query_probability, PrxmlQuery};
use stuc_prxml::scope::analyze_scopes;

fn main() {
    let mut criterion = criterion_config();
    let query = PrxmlQuery::LabelExists("value_e0_p0".into());

    // Scope sweep at fixed size.
    let mut group = criterion.benchmark_group("e6_scope_sweep");
    for &depth in &[0usize, 1, 2, 3, 4] {
        let config = WikidataStyleConfig {
            scope_depth: depth,
            entities: 8,
            properties_per_entity: 4,
            ..Default::default()
        };
        let doc = wikidata_style_document(&config);
        let scope = analyze_scopes(&doc).max_node_scope();
        let lineage = query_lineage(&doc, &query);
        let width = TreewidthWmc::default().estimated_width(&lineage);
        report_value(
            "E6",
            &format!("depth{depth}"),
            format!("max_node_scope={scope} lineage_width={width}"),
        );
        group.bench_with_input(
            BenchmarkId::new("query_probability", depth),
            &depth,
            |b, _| b.iter(|| query_probability(&doc, &query).unwrap()),
        );
    }
    group.finish();

    // Document-size sweep at fixed (bounded) scope: linear-ish scaling.
    let mut group = criterion.benchmark_group("e6_size_sweep_bounded_scope");
    for &entities in &[10usize, 40, 160] {
        let config = WikidataStyleConfig {
            scope_depth: 1,
            entities,
            properties_per_entity: 5,
            ..Default::default()
        };
        let doc = wikidata_style_document(&config);
        report_value("E6", &format!("entities{entities}_nodes"), doc.len());
        group.bench_with_input(
            BenchmarkId::new("query_probability", entities),
            &entities,
            |b, _| b.iter(|| query_probability(&doc, &query).unwrap()),
        );
    }
    group.finish();
    criterion.final_summary();
}
