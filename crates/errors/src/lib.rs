//! # stuc-errors — one declarative macro for every STUC error enum
//!
//! Every crate in the workspace defines small error enums. Before this crate
//! each of them hand-rolled the same three impls (`Display`,
//! `std::error::Error`, and `From` conversions for wrapped causes) — about
//! twenty copies of identical boilerplate. [`stuc_error!`] generates all
//! three from a thiserror-flavoured declaration, without needing the real
//! `thiserror` proc-macro crate (the build environment is offline).
//!
//! ## Usage
//!
//! ```
//! stuc_errors::stuc_error! {
//!     /// Errors raised by the frobnicator.
//!     #[derive(Clone, PartialEq, Eq)]
//!     pub enum FrobError {
//!         /// The input was empty.
//!         Empty,
//!         /// The width limit was exceeded.
//!         TooWide { width: usize, limit: usize },
//!         /// A wrapped I/O-ish cause.
//!         Parse(String),
//!     }
//!     display {
//!         Self::Empty => "input was empty",
//!         Self::TooWide { width, limit } => "width {width} exceeds limit {limit}",
//!         Self::Parse(message) => "parse failure: {message}",
//!     }
//!     from {
//!         String => Parse,
//!     }
//! }
//!
//! let e = FrobError::TooWide { width: 9, limit: 4 };
//! assert_eq!(e.to_string(), "width 9 exceeds limit 4");
//! let e: FrobError = String::from("bad token").into();
//! assert!(matches!(e, FrobError::Parse(_)));
//! ```
//!
//! Display arms are `pattern => "format string"`; bindings introduced by the
//! pattern are referenced through implicit format captures (`{width}`), so
//! the arm reads like a `#[error("...")]` attribute. `Debug` is always
//! derived; list further derives normally. The optional `from { Ty => Variant }`
//! block generates `From` impls for single-field wrapping variants.

/// Defines an error enum together with its `Display`, `std::error::Error`
/// and `From` implementations. See the crate docs for the shape.
#[macro_export]
macro_rules! stuc_error {
    (
        $(#[$meta:meta])*
        pub enum $name:ident {
            $($body:tt)*
        }
        display {
            $( $pattern:pat => $format:literal ),+ $(,)?
        }
        $( from { $( $source:ty => $variant:ident ),+ $(,)? } )?
    ) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub enum $name {
            $($body)*
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                #[allow(unused_variables)]
                match self {
                    $( $pattern => write!(f, $format) ),+
                }
            }
        }

        impl ::std::error::Error for $name {}

        $($(
            impl ::std::convert::From<$source> for $name {
                fn from(source: $source) -> Self {
                    $name::$variant(source)
                }
            }
        )+)?
    };
}

#[cfg(test)]
mod tests {
    stuc_error! {
        /// Sample error exercising all variant shapes.
        #[derive(Clone, PartialEq)]
        pub enum SampleError {
            /// Unit variant.
            Empty,
            /// Struct variant.
            TooWide { width: usize, limit: usize },
            /// Tuple variant wrapping a cause.
            Inner(String),
            /// Tuple variant with two fields.
            Pair(usize, usize),
        }
        display {
            Self::Empty => "nothing to do",
            Self::TooWide { width, limit } => "width {width} exceeds limit {limit}",
            Self::Inner(cause) => "inner failure: {cause}",
            Self::Pair(first, second) => "pair {first}/{second} rejected",
        }
        from {
            String => Inner,
        }
    }

    #[test]
    fn display_covers_all_shapes() {
        assert_eq!(SampleError::Empty.to_string(), "nothing to do");
        assert_eq!(
            SampleError::TooWide { width: 7, limit: 3 }.to_string(),
            "width 7 exceeds limit 3"
        );
        assert_eq!(SampleError::Pair(1, 2).to_string(), "pair 1/2 rejected");
    }

    #[test]
    fn from_and_error_trait() {
        let e: SampleError = String::from("boom").into();
        assert_eq!(e.to_string(), "inner failure: boom");
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("boom"));
    }
}
