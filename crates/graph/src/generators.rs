//! Deterministic graph generators used by tests and benchmarks.
//!
//! Randomised generators take an explicit `seed` and use a small SplitMix64
//! generator internally so that this crate stays dependency-free and every
//! workload is reproducible bit-for-bit across runs (a requirement for the
//! benchmark harness in `stuc-bench`).

use crate::graph::{Graph, VertexId};

/// A tiny, deterministic SplitMix64 pseudo-random generator.
///
/// Not cryptographic; only used to produce reproducible benchmark workloads.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A path on `n` vertices (treewidth 1 for `n ≥ 2`).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_vertices(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(VertexId(i), VertexId(i + 1));
    }
    g
}

/// A cycle on `n ≥ 3` vertices (treewidth 2).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(VertexId(n - 1), VertexId(0));
    g
}

/// The complete graph on `n` vertices (treewidth `n - 1`).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_vertices(n);
    let vs: Vec<_> = g.vertices().collect();
    g.add_clique(&vs);
    g
}

/// A star: one centre connected to `leaves` leaves (treewidth 1).
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::with_vertices(leaves + 1);
    for i in 1..=leaves {
        g.add_edge(VertexId(0), VertexId(i));
    }
    g
}

/// A balanced binary tree of the given depth (depth 0 = single vertex;
/// treewidth 1 for depth ≥ 1).
pub fn balanced_binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = Graph::with_vertices(n);
    for i in 0..n {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        if left < n {
            g.add_edge(VertexId(i), VertexId(left));
        }
        if right < n {
            g.add_edge(VertexId(i), VertexId(right));
        }
    }
    g
}

/// The `rows × cols` grid graph (treewidth `min(rows, cols)`).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_vertices(rows * cols);
    let id = |r: usize, c: usize| VertexId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// A `k`-tree on `n ≥ k + 1` vertices: start from a `(k+1)`-clique, then each
/// new vertex is attached to a uniformly chosen existing `k`-clique.
/// `k`-trees have treewidth exactly `k`.
pub fn k_tree(n: usize, k: usize, seed: u64) -> Graph {
    assert!(n > k, "a k-tree needs at least k + 1 vertices");
    let mut rng = SplitMix64::new(seed);
    let mut g = Graph::with_vertices(n);
    let base: Vec<VertexId> = (0..=k).map(VertexId).collect();
    g.add_clique(&base);
    // Track the k-cliques available for attachment.
    let mut cliques: Vec<Vec<VertexId>> = Vec::new();
    for i in 0..=k {
        let mut c = base.clone();
        c.remove(i);
        cliques.push(c);
    }
    cliques.push(base.clone()[..k].to_vec());
    for v in (k + 1)..n {
        let c = cliques[rng.next_below(cliques.len())].clone();
        for &u in &c {
            g.add_edge(VertexId(v), u);
        }
        // New k-cliques: v plus each (k-1)-subset of c.
        for skip in 0..c.len() {
            let mut nc: Vec<VertexId> = c
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &u)| u)
                .collect();
            nc.push(VertexId(v));
            cliques.push(nc);
        }
    }
    g
}

/// A partial `k`-tree: a `k`-tree with each edge kept with probability
/// `keep_probability`. Partial `k`-trees are exactly the graphs of treewidth
/// at most `k`.
pub fn partial_k_tree(n: usize, k: usize, keep_probability: f64, seed: u64) -> Graph {
    let full = k_tree(n, k, seed);
    let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
    let mut g = Graph::with_vertices(n);
    for (u, v) in full.edges() {
        if rng.next_bool(keep_probability) {
            g.add_edge(u, v);
        }
    }
    g
}

/// An Erdős–Rényi `G(n, p)` random graph (generally high treewidth once
/// `p · n` is large; used as the hard baseline workload).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut g = Graph::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.next_bool(p) {
                g.add_edge(VertexId(u), VertexId(v));
            }
        }
    }
    g
}

/// A random tree on `n` vertices built by attaching each vertex to a random
/// earlier one (treewidth 1).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut g = Graph::with_vertices(n);
    for v in 1..n {
        let parent = rng.next_below(v);
        g.add_edge(VertexId(v), VertexId(parent));
    }
    g
}

/// A "caterpillar": a path of length `spine` where each spine vertex carries
/// `legs` pendant leaves (treewidth 1). Models log-like tree data.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut g = path(spine);
    for s in 0..spine {
        for _ in 0..legs {
            let leaf = g.add_vertex();
            g.add_edge(VertexId(s), leaf);
        }
    }
    g
}

/// The "core + tentacles" workload of experiment E7: a dense core of
/// `core_size` vertices (an Erdős–Rényi graph with density `core_density`)
/// with `tentacles` paths of `tentacle_length` vertices attached to random
/// core vertices. The tentacles have treewidth 1; the core is (typically)
/// high-treewidth.
pub fn core_with_tentacles(
    core_size: usize,
    core_density: f64,
    tentacles: usize,
    tentacle_length: usize,
    seed: u64,
) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut g = erdos_renyi(core_size, core_density, seed ^ 0x1234);
    for _ in 0..tentacles {
        let mut previous = VertexId(rng.next_below(core_size.max(1)));
        for _ in 0..tentacle_length {
            let v = g.add_vertex();
            g.add_edge(previous, v);
            previous = v;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{decompose_with_heuristic, EliminationHeuristic};

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn binary_tree_shape() {
        let g = balanced_binary_tree(3);
        assert_eq!(g.vertex_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn k_tree_has_treewidth_k() {
        for k in 1..=3 {
            let g = k_tree(20, k, 5);
            let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
            assert!(td.validate(&g).is_ok());
            assert_eq!(td.width(), k, "k = {k}");
        }
    }

    #[test]
    fn partial_k_tree_is_subgraph_of_k_tree() {
        let full = k_tree(25, 3, 11);
        let part = partial_k_tree(25, 3, 0.6, 11);
        for (u, v) in part.edges() {
            assert!(full.has_edge(u, v));
        }
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let empty = erdos_renyi(10, 0.0, 3);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 3);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(50, 8);
        assert_eq!(g.edge_count(), 49);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_has_treewidth_one() {
        let g = caterpillar(6, 3);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn core_with_tentacles_shape() {
        let g = core_with_tentacles(10, 0.5, 4, 5, 77);
        assert_eq!(g.vertex_count(), 10 + 4 * 5);
        assert!(g.edge_count() >= 4 * 5);
    }

    #[test]
    fn generators_are_reproducible() {
        let a = erdos_renyi(20, 0.3, 42);
        let b = erdos_renyi(20, 0.3, 42);
        assert_eq!(a, b);
        let c = erdos_renyi(20, 0.3, 43);
        assert_ne!(a, c);
    }
}
