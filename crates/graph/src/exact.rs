//! Exact treewidth (for small graphs) and treewidth lower bounds.
//!
//! The greedy heuristics in [`crate::elimination`] only give upper bounds.
//! For tests and the heuristic-quality ablation we also need ground truth on
//! small graphs, plus cheap lower bounds on larger ones:
//!
//! * [`exact_treewidth`] — the Held–Karp-style dynamic program over vertex
//!   subsets (`O(2^n · n²)`), practical up to ~20 vertices.
//! * [`mmd_lower_bound`] — the Maximum Minimum Degree bound: repeatedly
//!   delete a minimum-degree vertex; the largest minimum degree seen is a
//!   lower bound on treewidth.
//! * [`degeneracy_lower_bound`] — identical computation viewed as the graph's
//!   degeneracy (kept separate for clarity of intent at call sites).

use crate::graph::{Graph, VertexId};
use std::collections::HashMap;

/// Maximum number of vertices accepted by [`exact_treewidth`].
pub const EXACT_LIMIT: usize = 22;

/// Computes the exact treewidth of `g` with a dynamic program over subsets.
///
/// Returns `None` if the graph has more than [`EXACT_LIMIT`] vertices.
///
/// The recurrence (Bodlaender et al.): for a set `S` of already-eliminated
/// vertices, `f(S) = min over v ∈ S of max(f(S \ {v}), q(S \ {v}, v))` where
/// `q(T, v)` is the number of vertices outside `T ∪ {v}` reachable from `v`
/// through `T`. The treewidth is `f(V)`.
pub fn exact_treewidth(g: &Graph) -> Option<usize> {
    let n = g.vertex_count();
    if n > EXACT_LIMIT {
        return None;
    }
    if n == 0 {
        return Some(0);
    }

    let adjacency: Vec<u64> = (0..n)
        .map(|v| {
            let mut mask = 0u64;
            for u in g.neighbors(VertexId(v)) {
                mask |= 1 << u.0;
            }
            mask
        })
        .collect();

    // q(T, v): neighbours of the connected "swallowed" region of v through T.
    let q = |t: u64, v: usize| -> usize {
        // BFS from v through vertices in T, counting distinct vertices outside
        // T ∪ {v} that are adjacent to the explored region.
        let mut region = 1u64 << v;
        let mut frontier = adjacency[v];
        let mut reachable_outside = 0u64;
        loop {
            let inside_t = frontier & t & !region;
            reachable_outside |= frontier & !t & !(1 << v);
            if inside_t == 0 {
                break;
            }
            region |= inside_t;
            let mut new_frontier = 0u64;
            let mut bits = inside_t;
            while bits != 0 {
                let u = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                new_frontier |= adjacency[u];
            }
            frontier = new_frontier & !region;
        }
        reachable_outside.count_ones() as usize
    };

    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut memo: HashMap<u64, usize> = HashMap::new();
    memo.insert(0, 0);

    // Iterate subsets in increasing popcount order so dependencies are ready.
    let mut subsets: Vec<u64> = (0..=full).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for &s in &subsets {
        if s == 0 {
            continue;
        }
        let mut best = usize::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let rest = s & !(1 << v);
            let prev = memo[&rest];
            let cost = prev.max(q(rest, v));
            best = best.min(cost);
        }
        memo.insert(s, best);
    }
    Some(memo[&full])
}

/// The Maximum Minimum Degree lower bound on treewidth.
///
/// Repeatedly remove a vertex of minimum degree; the maximum of the minimum
/// degrees observed along the way is a lower bound on the treewidth.
pub fn mmd_lower_bound(g: &Graph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let mut adjacency: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(VertexId(v)).map(|u| u.0).collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining = n;
    let mut bound = 0;
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| adjacency[v].len())
            .expect("some vertex alive");
        bound = bound.max(adjacency[v].len());
        let ns: Vec<usize> = adjacency[v].iter().copied().collect();
        for u in ns {
            adjacency[u].remove(&v);
        }
        adjacency[v].clear();
        alive[v] = false;
        remaining -= 1;
    }
    bound
}

/// The degeneracy of the graph, which is also a treewidth lower bound.
///
/// Computed identically to [`mmd_lower_bound`]; exposed separately so call
/// sites can state which quantity they mean.
pub fn degeneracy_lower_bound(g: &Graph) -> usize {
    mmd_lower_bound(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{
        decompose_best_effort, decompose_with_heuristic, EliminationHeuristic,
    };
    use crate::generators;

    #[test]
    fn exact_treewidth_of_basic_shapes() {
        assert_eq!(exact_treewidth(&generators::path(6)), Some(1));
        assert_eq!(exact_treewidth(&generators::cycle(6)), Some(2));
        assert_eq!(exact_treewidth(&generators::complete(5)), Some(4));
        assert_eq!(exact_treewidth(&generators::star(7)), Some(1));
        assert_eq!(exact_treewidth(&generators::grid(3, 3)), Some(3));
    }

    #[test]
    fn exact_treewidth_of_empty_and_singleton() {
        assert_eq!(exact_treewidth(&Graph::new()), Some(0));
        let mut g = Graph::new();
        g.add_vertex();
        assert_eq!(exact_treewidth(&g), Some(0));
    }

    #[test]
    fn exact_treewidth_refuses_large_graphs() {
        let g = generators::path(EXACT_LIMIT + 1);
        assert_eq!(exact_treewidth(&g), None);
    }

    #[test]
    fn heuristics_match_exact_on_small_k_trees() {
        for k in 1..=3 {
            let g = generators::k_tree(10, k, 3);
            let exact = exact_treewidth(&g).unwrap();
            assert_eq!(exact, k);
            let heur = decompose_best_effort(&g).width();
            assert_eq!(
                heur, exact,
                "heuristic should be optimal on k-trees, k = {k}"
            );
        }
    }

    #[test]
    fn heuristic_width_never_below_exact() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(12, 0.3, seed);
            let exact = exact_treewidth(&g).unwrap();
            for h in EliminationHeuristic::ALL {
                let w = decompose_with_heuristic(&g, h).width();
                assert!(w >= exact, "{h:?}: width {w} below exact {exact}");
            }
        }
    }

    #[test]
    fn mmd_is_a_lower_bound() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(12, 0.35, seed);
            let exact = exact_treewidth(&g).unwrap();
            assert!(mmd_lower_bound(&g) <= exact);
        }
    }

    #[test]
    fn mmd_values_on_known_graphs() {
        assert_eq!(mmd_lower_bound(&generators::path(10)), 1);
        assert_eq!(mmd_lower_bound(&generators::cycle(10)), 2);
        assert_eq!(mmd_lower_bound(&generators::complete(6)), 5);
        assert_eq!(mmd_lower_bound(&Graph::new()), 0);
    }

    #[test]
    fn degeneracy_equals_mmd() {
        let g = generators::grid(4, 4);
        assert_eq!(degeneracy_lower_bound(&g), mmd_lower_bound(&g));
    }
}
