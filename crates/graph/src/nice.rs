//! Nice tree decompositions.
//!
//! Dynamic programming over a tree decomposition is much simpler when the
//! decomposition is *nice*: every node is one of
//!
//! * a **leaf** with an empty bag,
//! * an **introduce** node whose bag adds exactly one vertex to its child's,
//! * a **forget** node whose bag removes exactly one vertex from its child's,
//! * a **join** node with exactly two children carrying the same bag.
//!
//! Every tree decomposition of width `w` can be converted into a nice one of
//! the same width with `O(w · n)` nodes. The weighted-model-counting backend
//! in `stuc-circuit` and the automaton run in `stuc-automata` both consume
//! this form.

use crate::decomposition::{BagId, TreeDecomposition};
use crate::graph::VertexId;
use std::collections::BTreeSet;

/// The kind of a node in a [`NiceDecomposition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NiceNodeKind {
    /// A leaf with an empty bag.
    Leaf,
    /// Adds `vertex` to the child's bag.
    Introduce { vertex: VertexId, child: usize },
    /// Removes `vertex` from the child's bag.
    Forget { vertex: VertexId, child: usize },
    /// Combines two children with identical bags.
    Join { left: usize, right: usize },
}

/// One node of a nice decomposition: its kind plus its bag content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiceNode {
    /// The structural kind of the node.
    pub kind: NiceNodeKind,
    /// The bag carried by this node.
    pub bag: BTreeSet<VertexId>,
}

impl NiceNode {
    /// The bag as a sorted vector of raw vertex indices — the layout sweep
    /// plans index their dense tables by (bit `i` of a table mask is the
    /// value of `bag_indices()[i]`).
    pub fn bag_indices(&self) -> Vec<usize> {
        self.bag.iter().map(|v| v.index()).collect()
    }
}

/// A nice tree decomposition, stored as a flat arena with an explicit root.
///
/// Children always have smaller indices than their parents, so iterating
/// `0..len()` visits nodes bottom-up — exactly the order dynamic programs
/// need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NiceDecomposition {
    nodes: Vec<NiceNode>,
    root: usize,
}

impl NiceDecomposition {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the decomposition has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Access a node by index.
    pub fn node(&self, i: usize) -> &NiceNode {
        &self.nodes[i]
    }

    /// Iterate over `(index, node)` bottom-up (children before parents).
    pub fn iter_bottom_up(&self) -> impl Iterator<Item = (usize, &NiceNode)> {
        self.nodes.iter().enumerate()
    }

    /// The width of the nice decomposition.
    pub fn width(&self) -> usize {
        self.max_bag_len().saturating_sub(1)
    }

    /// Size of the largest bag (width + 1 on non-empty decompositions) —
    /// what sweep-plan construction checks against its dense-table budget.
    pub fn max_bag_len(&self) -> usize {
        self.nodes.iter().map(|n| n.bag.len()).max().unwrap_or(0)
    }

    /// Converts a (rooted) tree decomposition into nice form.
    ///
    /// The result has the same width. If `td` is empty, the result is a
    /// single leaf node so that dynamic programs always have a root to read.
    pub fn from_decomposition(td: &TreeDecomposition) -> Self {
        let mut builder = Builder { nodes: Vec::new() };
        if td.bag_count() == 0 {
            let root = builder.push(NiceNodeKind::Leaf, BTreeSet::new());
            return NiceDecomposition {
                nodes: builder.nodes,
                root,
            };
        }

        // Root the decomposition at bag 0 and collect children lists.
        let root_bag = BagId(0);
        let parents = td.root_at(root_bag);
        let mut children: Vec<Vec<BagId>> = vec![Vec::new(); td.bag_count()];
        for b in td.bag_ids() {
            if let Some(p) = parents[b.index()] {
                children[p.index()].push(b);
            }
        }

        // Post-order over bags (children before parents) computed iteratively
        // to avoid recursion-depth limits on path-shaped decompositions.
        let order = post_order(root_bag, &children);

        // top[b] = index of the nice node whose bag equals bag(b) and which
        // summarises the whole subtree rooted at b.
        let mut top: Vec<Option<usize>> = vec![None; td.bag_count()];
        for &b in &order {
            let bag_b: BTreeSet<VertexId> = td.bag(b).iter().copied().collect();
            let kids = &children[b.index()];
            let node = if kids.is_empty() {
                // Leaf bag: introduce its vertices one by one above an empty leaf.
                let leaf = builder.push(NiceNodeKind::Leaf, BTreeSet::new());
                builder.introduce_chain(leaf, &BTreeSet::new(), &bag_b)
            } else {
                // One branch per child: forget the child-only vertices then
                // introduce the parent-only vertices; then join the branches.
                let mut branch_tops = Vec::with_capacity(kids.len());
                for &child in kids {
                    let child_top = top[child.index()].expect("children processed first");
                    let bag_child: BTreeSet<VertexId> = td.bag(child).iter().copied().collect();
                    let after_forget = builder.forget_chain(child_top, &bag_child, &bag_b);
                    let kept: BTreeSet<VertexId> =
                        bag_child.intersection(&bag_b).copied().collect();
                    let branch = builder.introduce_chain(after_forget, &kept, &bag_b);
                    branch_tops.push(branch);
                }
                // Fold the branches with binary joins.
                let mut acc = branch_tops[0];
                for &other in &branch_tops[1..] {
                    acc = builder.push(
                        NiceNodeKind::Join {
                            left: acc,
                            right: other,
                        },
                        bag_b.clone(),
                    );
                }
                acc
            };
            top[b.index()] = Some(node);
        }

        let root = top[root_bag.index()].expect("root processed last");
        NiceDecomposition {
            nodes: builder.nodes,
            root,
        }
    }

    /// Checks internal consistency: child indices precede parents, bags match
    /// the introduce/forget/join constraints. Used by tests.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NiceNodeKind::Leaf => {
                    if !node.bag.is_empty() {
                        return Err(format!("leaf {i} has a non-empty bag"));
                    }
                }
                NiceNodeKind::Introduce { vertex, child } => {
                    if *child >= i {
                        return Err(format!("introduce {i} references later child {child}"));
                    }
                    let child_bag = &self.nodes[*child].bag;
                    let mut expected = child_bag.clone();
                    if !expected.insert(*vertex) {
                        return Err(format!("introduce {i} re-introduces {vertex}"));
                    }
                    if expected != node.bag {
                        return Err(format!("introduce {i} bag mismatch"));
                    }
                }
                NiceNodeKind::Forget { vertex, child } => {
                    if *child >= i {
                        return Err(format!("forget {i} references later child {child}"));
                    }
                    let child_bag = &self.nodes[*child].bag;
                    let mut expected = child_bag.clone();
                    if !expected.remove(vertex) {
                        return Err(format!("forget {i} forgets absent {vertex}"));
                    }
                    if expected != node.bag {
                        return Err(format!("forget {i} bag mismatch"));
                    }
                }
                NiceNodeKind::Join { left, right } => {
                    if *left >= i || *right >= i {
                        return Err(format!("join {i} references a later child"));
                    }
                    if self.nodes[*left].bag != node.bag || self.nodes[*right].bag != node.bag {
                        return Err(format!("join {i} children bags differ from its own"));
                    }
                }
            }
        }
        if self.root >= self.nodes.len() && !self.nodes.is_empty() {
            return Err("root out of range".to_string());
        }
        Ok(())
    }
}

/// Computes a post-order (children before parents) of the rooted bag tree.
fn post_order(root: BagId, children: &[Vec<BagId>]) -> Vec<BagId> {
    let mut order = Vec::with_capacity(children.len());
    let mut stack = vec![(root, false)];
    while let Some((b, expanded)) = stack.pop() {
        if expanded {
            order.push(b);
        } else {
            stack.push((b, true));
            for &c in &children[b.index()] {
                stack.push((c, false));
            }
        }
    }
    order
}

struct Builder {
    nodes: Vec<NiceNode>,
}

impl Builder {
    fn push(&mut self, kind: NiceNodeKind, bag: BTreeSet<VertexId>) -> usize {
        self.nodes.push(NiceNode { kind, bag });
        self.nodes.len() - 1
    }

    /// Adds introduce nodes above `below` (whose bag is `from`) until the bag
    /// equals `to`. Requires `from ⊆ to`.
    fn introduce_chain(
        &mut self,
        below: usize,
        from: &BTreeSet<VertexId>,
        to: &BTreeSet<VertexId>,
    ) -> usize {
        let mut current = below;
        let mut bag = from.clone();
        for &v in to.iter() {
            if !bag.contains(&v) {
                bag.insert(v);
                current = self.push(
                    NiceNodeKind::Introduce {
                        vertex: v,
                        child: current,
                    },
                    bag.clone(),
                );
            }
        }
        current
    }

    /// Adds forget nodes above `below` (whose bag is `from`) removing every
    /// vertex not in `keep ∩ from`.
    fn forget_chain(
        &mut self,
        below: usize,
        from: &BTreeSet<VertexId>,
        keep: &BTreeSet<VertexId>,
    ) -> usize {
        let mut current = below;
        let mut bag = from.clone();
        let to_forget: Vec<VertexId> = from.iter().filter(|v| !keep.contains(v)).copied().collect();
        for v in to_forget {
            bag.remove(&v);
            current = self.push(
                NiceNodeKind::Forget {
                    vertex: v,
                    child: current,
                },
                bag.clone(),
            );
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{decompose_with_heuristic, EliminationHeuristic};
    use crate::generators;

    fn nice_of(g: &crate::graph::Graph) -> NiceDecomposition {
        let td = decompose_with_heuristic(g, EliminationHeuristic::MinFill);
        NiceDecomposition::from_decomposition(&td)
    }

    #[test]
    fn empty_decomposition_gives_single_leaf() {
        let td = TreeDecomposition::new();
        let nd = NiceDecomposition::from_decomposition(&td);
        assert_eq!(nd.len(), 1);
        assert!(matches!(nd.node(nd.root()).kind, NiceNodeKind::Leaf));
        assert!(nd.check_consistency().is_ok());
    }

    #[test]
    fn path_nice_decomposition_preserves_width() {
        let g = generators::path(20);
        let nd = nice_of(&g);
        assert!(nd.check_consistency().is_ok());
        assert_eq!(nd.width(), 1);
    }

    #[test]
    fn cycle_nice_decomposition_preserves_width() {
        let g = generators::cycle(12);
        let nd = nice_of(&g);
        assert!(nd.check_consistency().is_ok());
        assert_eq!(nd.width(), 2);
    }

    #[test]
    fn every_vertex_is_forgotten_or_in_root() {
        // All graph vertices must appear somewhere; here we check that the set
        // of introduced vertices covers the graph.
        let g = generators::balanced_binary_tree(4);
        let nd = nice_of(&g);
        let mut introduced: BTreeSet<VertexId> = BTreeSet::new();
        for (_, node) in nd.iter_bottom_up() {
            if let NiceNodeKind::Introduce { vertex, .. } = node.kind {
                introduced.insert(vertex);
            }
        }
        for v in g.vertices() {
            assert!(introduced.contains(&v), "{v} never introduced");
        }
    }

    #[test]
    fn join_nodes_appear_for_branching_decompositions() {
        let g = generators::star(8);
        let nd = nice_of(&g);
        assert!(nd.check_consistency().is_ok());
        // A star's clique-tree branches at the centre, so joins must appear.
        let has_join = nd
            .iter_bottom_up()
            .any(|(_, n)| matches!(n.kind, NiceNodeKind::Join { .. }));
        assert!(has_join);
    }

    #[test]
    fn bottom_up_order_is_topological() {
        let g = generators::grid(3, 3);
        let nd = nice_of(&g);
        for (i, node) in nd.iter_bottom_up() {
            match node.kind {
                NiceNodeKind::Introduce { child, .. } | NiceNodeKind::Forget { child, .. } => {
                    assert!(child < i)
                }
                NiceNodeKind::Join { left, right } => {
                    assert!(left < i && right < i)
                }
                NiceNodeKind::Leaf => {}
            }
        }
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        let g = generators::path(20_000);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        let nd = NiceDecomposition::from_decomposition(&td);
        assert!(nd.check_consistency().is_ok());
        assert_eq!(nd.width(), 1);
    }

    #[test]
    fn ten_thousand_bag_path_decomposition_converts_iteratively() {
        // Regression guard for the traversal code (`root_at`, `post_order`,
        // the builder chains): a maximally deep 10k-bag path decomposition
        // must convert without recursing on tree depth. Built by hand so the
        // bag tree is guaranteed to be one long path regardless of what the
        // elimination heuristics produce.
        let n = 10_000;
        let mut td = TreeDecomposition::new();
        let mut previous = None;
        for i in 0..n {
            let bag = td.add_bag([VertexId(i), VertexId(i + 1)]);
            if let Some(p) = previous {
                td.add_tree_edge(p, bag);
            }
            previous = Some(bag);
        }
        let nd = NiceDecomposition::from_decomposition(&td);
        assert!(nd.check_consistency().is_ok());
        assert_eq!(nd.width(), 1);
        assert_eq!(nd.max_bag_len(), 2);
        assert!(nd.len() >= n);
        // The accessors used by sweep-plan construction agree with the bags.
        let root_bag = nd.node(nd.root()).bag_indices();
        assert!(root_bag.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nice_width_never_exceeds_original() {
        for seed in 0..5 {
            let g = generators::partial_k_tree(25, 3, 0.5, seed);
            let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
            let nd = NiceDecomposition::from_decomposition(&td);
            assert!(nd.check_consistency().is_ok());
            assert!(nd.width() <= td.width());
        }
    }
}
