//! # stuc-graph — graphs, tree decompositions and treewidth
//!
//! This crate is the structural substrate of STUC. The paper's central claim
//! (Theorems 1 and 2) is that query evaluation on uncertain data is tractable
//! when the data — an instance together with its uncertainty annotations —
//! admits a *tree decomposition of bounded width*. Everything downstream
//! (tree encodings, automaton runs, message passing over lineage circuits)
//! consumes the types defined here.
//!
//! ## Contents
//!
//! * [`graph`] — a simple undirected graph with stable vertex identifiers.
//! * [`decomposition`] — tree decompositions, their validation and width.
//! * [`elimination`] — elimination orderings and the classic greedy
//!   heuristics (min-degree, min-fill) that build decompositions from them.
//! * [`nice`] — *nice* tree decompositions (leaf / introduce / forget / join
//!   nodes), the form consumed by dynamic programming.
//! * [`repair`] — incremental repair of existing decompositions under graph
//!   growth (leaf-bag attachment, path augmentation, bag-size budgets), the
//!   substrate of the engine's update path.
//! * [`exact`] — exact treewidth for small graphs and lower bounds, used to
//!   assess heuristic quality in tests and ablations.
//! * [`generators`] — deterministic graph generators (paths, cycles, grids,
//!   trees, partial k-trees, random graphs) used by tests and benchmarks.
//!
//! ## Example
//!
//! ```
//! use stuc_graph::graph::Graph;
//! use stuc_graph::elimination::{EliminationHeuristic, decompose_with_heuristic};
//!
//! // A 4-cycle has treewidth 2.
//! let mut g = Graph::new();
//! let v: Vec<_> = (0..4).map(|_| g.add_vertex()).collect();
//! for i in 0..4 {
//!     g.add_edge(v[i], v[(i + 1) % 4]);
//! }
//! let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
//! assert!(td.validate(&g).is_ok());
//! assert_eq!(td.width(), 2);
//! ```

pub mod decomposition;
pub mod elimination;
pub mod exact;
pub mod generators;
pub mod graph;
pub mod nice;
pub mod repair;

pub use decomposition::TreeDecomposition;
pub use elimination::{decompose_with_heuristic, EliminationHeuristic};
pub use graph::{Graph, VertexId};
pub use nice::NiceDecomposition;
pub use repair::{repair_decomposition, RepairError, RepairReport};
