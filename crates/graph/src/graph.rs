//! A simple undirected graph with stable, dense vertex identifiers.
//!
//! STUC only ever needs *Gaifman graphs* (co-occurrence graphs of database
//! facts or circuit gates), so the representation is deliberately minimal:
//! vertices are dense `usize` handles, edges are stored both in a global set
//! (for counting and iteration) and as per-vertex sorted adjacency vectors
//! (for fast neighbourhood queries during elimination).

use std::collections::BTreeSet;
use std::fmt;

/// A handle to a vertex of a [`Graph`].
///
/// Identifiers are dense (`0..n`) and never reused within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub usize);

impl VertexId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A finite, simple, undirected graph.
///
/// Self-loops and parallel edges are silently ignored, which is the right
/// behaviour for Gaifman graphs (a fact mentioning the same constant twice
/// does not create a loop).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// `adjacency[v]` holds the neighbours of `v`, kept sorted and unique.
    adjacency: Vec<BTreeSet<usize>>,
    /// Number of edges (each unordered pair counted once).
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Adds a fresh vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adjacency.push(BTreeSet::new());
        VertexId(self.adjacency.len() - 1)
    }

    /// Ensures vertices `0..n` exist (no-op if the graph is already larger).
    pub fn ensure_vertices(&mut self, n: usize) {
        while self.adjacency.len() < n {
            self.adjacency.push(BTreeSet::new());
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are ignored.
    ///
    /// Returns `true` if a new edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a vertex of the graph.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(
            u.0 < self.adjacency.len() && v.0 < self.adjacency.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return false;
        }
        let inserted = self.adjacency[u.0].insert(v.0);
        if inserted {
            self.adjacency[v.0].insert(u.0);
            self.edge_count += 1;
        }
        inserted
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u.0 < self.adjacency.len() && self.adjacency[u.0].contains(&v.0)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.0].len()
    }

    /// Iterator over the neighbours of `v`, in increasing identifier order.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adjacency[v.0].iter().map(|&u| VertexId(u))
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.adjacency.len()).map(VertexId)
    }

    /// Iterator over all edges, each unordered pair yielded once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter()
                .filter(move |&&v| u < v)
                .map(move |&v| (VertexId(u), VertexId(v)))
        })
    }

    /// Adds edges so that all vertices in `clique` are pairwise adjacent.
    ///
    /// This is how a Gaifman graph is built: every database fact (or circuit
    /// gate together with its inputs) contributes one clique.
    pub fn add_clique(&mut self, clique: &[VertexId]) {
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                self.add_edge(u, v);
            }
        }
    }

    /// Returns the connected components as sorted vertex lists.
    pub fn connected_components(&self) -> Vec<Vec<VertexId>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(VertexId(v));
                for &u in &self.adjacency[v] {
                    if !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort();
            components.push(comp);
        }
        components
    }

    /// True if the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Returns an induced subgraph on `keep` together with the mapping from
    /// new vertex identifiers back to the original ones.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut index = vec![usize::MAX; self.vertex_count()];
        for (new, &old) in keep.iter().enumerate() {
            index[old.0] = new;
        }
        let mut sub = Graph::with_vertices(keep.len());
        for &old in keep {
            for &nb in &self.adjacency[old.0] {
                let nb_new = index[nb];
                if nb_new != usize::MAX {
                    sub.add_edge(VertexId(index[old.0]), VertexId(nb_new));
                }
            }
        }
        (sub, keep.to_vec())
    }

    /// Contracts nothing but returns a deep copy; useful when algorithms need
    /// a scratch graph they can mutate (e.g. elimination).
    pub fn scratch_copy(&self) -> Graph {
        self.clone()
    }

    /// The minimum degree over all vertices, or `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(|ns| ns.len()).min()
    }

    /// The maximum degree over all vertices, or `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(|ns| ns.len()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(VertexId(i), VertexId(i + 1));
        }
        g
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn add_vertex_returns_dense_ids() {
        let mut g = Graph::new();
        assert_eq!(g.add_vertex(), VertexId(0));
        assert_eq!(g.add_vertex(), VertexId(1));
        assert_eq!(g.add_vertex(), VertexId(2));
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn add_edge_ignores_self_loops_and_duplicates() {
        let mut g = Graph::with_vertices(2);
        assert!(!g.add_edge(VertexId(0), VertexId(0)));
        assert!(g.add_edge(VertexId(0), VertexId(1)));
        assert!(!g.add_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(VertexId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::with_vertices(1);
        g.add_edge(VertexId(0), VertexId(5));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(VertexId(2), VertexId(3));
        g.add_edge(VertexId(2), VertexId(0));
        g.add_edge(VertexId(2), VertexId(1));
        let ns: Vec<_> = g.neighbors(VertexId(2)).map(|v| v.0).collect();
        assert_eq!(ns, vec![0, 1, 3]);
    }

    #[test]
    fn edges_yielded_once() {
        let g = path(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn clique_adds_all_pairs() {
        let mut g = Graph::with_vertices(4);
        g.add_clique(&[VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.min_degree(), Some(3));
    }

    #[test]
    fn connected_components_of_two_paths() {
        let mut g = Graph::with_vertices(6);
        g.add_edge(VertexId(0), VertexId(1));
        g.add_edge(VertexId(1), VertexId(2));
        g.add_edge(VertexId(3), VertexId(4));
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path(5);
        let (sub, map) = g.induced_subgraph(&[VertexId(1), VertexId(2), VertexId(4)]);
        assert_eq!(sub.vertex_count(), 3);
        // Only the edge 1-2 survives; 4 is isolated in the subgraph.
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(map, vec![VertexId(1), VertexId(2), VertexId(4)]);
    }

    #[test]
    fn degree_bounds_on_path() {
        let g = path(5);
        assert_eq!(g.min_degree(), Some(1));
        assert_eq!(g.max_degree(), Some(2));
    }
}
