//! Incremental repair of tree decompositions.
//!
//! The engine caches one tree decomposition per instance; a tuple insert
//! adds a clique (the new fact's constants) to the structure graph, and
//! rebuilding the whole decomposition per update is exactly the cost a live
//! system cannot pay. This module patches an existing decomposition
//! *locally* instead:
//!
//! * a new clique whose known vertices already share a bag gets a fresh
//!   **leaf bag** hanging off that bag;
//! * when the known vertices are scattered, one of them is chosen as an
//!   anchor and the others are pulled towards it along the **tree path**
//!   between their bags (the standard running-intersection-preserving
//!   augmentation), after which the leaf bag attaches to the anchor;
//! * vertices that appear in no clique (isolated additions) get singleton
//!   bags.
//!
//! Every grown bag is checked against a bag-size budget; when the repair
//! would exceed it, [`RepairError::BudgetExceeded`] tells the caller to fall
//! back to a full re-decomposition. The patched decomposition is always
//! re-validated against the new graph before it is returned, so a repair can
//! never silently corrupt downstream automaton runs: it either proves
//! itself or refuses.
//!
//! Deletions never need repair at all: removing edges or facts leaves every
//! decomposition condition intact (bags may merely become wider than
//! necessary — the *width drift* the caller tracks across updates).

use crate::decomposition::{BagId, DecompositionError, TreeDecomposition};
use crate::graph::{Graph, VertexId};
use std::collections::{BTreeSet, HashMap, VecDeque};

stuc_errors::stuc_error! {
    /// Why an incremental decomposition repair refused.
    #[derive(Clone, PartialEq)]
    pub enum RepairError {
        /// A repaired bag would exceed the bag-size budget; the caller
        /// should re-decompose from scratch (or accept the wider result of a
        /// full rebuild).
        BudgetExceeded {
            /// Bag size the repair would have produced.
            bag_size: usize,
            /// The configured maximum bag size.
            budget: usize,
        },
        /// The patched decomposition failed post-repair validation — a bug
        /// guard, surfaced instead of propagating a broken decomposition.
        Invalid(DecompositionError),
        /// An injected fault (only produced by armed failpoints under the
        /// `fault-injection` feature; never in production builds). The
        /// engine reacts exactly as for `BudgetExceeded`: full rebuild.
        Fault(String),
    }
    display {
        Self::BudgetExceeded { bag_size, budget } => "repaired bag size {bag_size} exceeds budget {budget}",
        Self::Invalid(e) => "repaired decomposition is invalid: {e}",
        Self::Fault(m) => "injected fault: {m}",
    }
    from {
        DecompositionError => Invalid,
    }
}

/// What an incremental repair did — the raw numbers the engine's
/// `UpdateReport` aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Existing bags whose content grew during path augmentation.
    pub bags_touched: usize,
    /// Fresh bags added (leaf bags for new cliques, singleton bags for
    /// isolated vertices).
    pub bags_added: usize,
    /// Width of the decomposition before the repair.
    pub width_before: usize,
    /// Width after the repair (at most `max_bag_size - 1` by construction).
    pub width_after: usize,
}

/// Patches `td` — a valid decomposition of the pre-update graph — into a
/// valid decomposition of `graph`, which extends the old graph by
/// `new_cliques` (one clique per inserted fact / gate) and possibly new
/// vertices. Bags never exceed `max_bag_size`; repairs that would are
/// refused with [`RepairError::BudgetExceeded`].
///
/// The input decomposition is not modified; on success the patched copy is
/// returned together with a [`RepairReport`].
pub fn repair_decomposition(
    td: &TreeDecomposition,
    graph: &Graph,
    new_cliques: &[Vec<VertexId>],
    max_bag_size: usize,
) -> Result<(TreeDecomposition, RepairReport), RepairError> {
    stuc_fault::failpoint!("graph-repair", RepairError::Fault);
    let mut patched = td.clone();
    let mut report = RepairReport {
        width_before: td.width(),
        ..Default::default()
    };
    // One representative bag per vertex (any bag containing it).
    let mut home: HashMap<VertexId, BagId> = HashMap::new();
    for b in patched.bag_ids() {
        for &v in patched.bag(b) {
            home.entry(v).or_insert(b);
        }
    }
    let mut touched: BTreeSet<usize> = BTreeSet::new();

    for clique in new_cliques {
        let clique: BTreeSet<VertexId> = clique.iter().copied().collect();
        if clique.is_empty() {
            continue;
        }
        if clique.len() > max_bag_size {
            return Err(RepairError::BudgetExceeded {
                bag_size: clique.len(),
                budget: max_bag_size,
            });
        }
        let known: Vec<VertexId> = clique
            .iter()
            .copied()
            .filter(|v| home.contains_key(v))
            .collect();
        let fresh_count = clique.len() - known.len();

        // Fully covered already (e.g. a duplicate fact): nothing to do.
        if fresh_count == 0 {
            if let Some(covering) = patched.find_bag_containing(&known) {
                let _ = covering;
                continue;
            }
        }

        let anchor = if known.is_empty() {
            // A brand-new component: the leaf bag can hang anywhere.
            patched.bag_ids().next()
        } else if let Some(covering) = patched.find_bag_containing(&known) {
            Some(covering)
        } else {
            // Pull every known vertex towards the anchor along tree paths.
            let anchor = home[&known[0]];
            for &u in &known[1..] {
                if patched.bag(anchor).contains(&u) {
                    continue;
                }
                for on_path in path_to_vertex(&patched, anchor, u) {
                    if patched.add_to_bag(on_path, u) {
                        let size = patched.bag(on_path).len();
                        if size > max_bag_size {
                            return Err(RepairError::BudgetExceeded {
                                bag_size: size,
                                budget: max_bag_size,
                            });
                        }
                        touched.insert(on_path.index());
                    }
                }
            }
            Some(anchor)
        };

        if fresh_count == 0 {
            // The augmented anchor now contains the whole clique; no leaf
            // bag is needed.
            continue;
        }
        let leaf = patched.add_bag(clique.iter().copied());
        if let Some(anchor) = anchor {
            patched.add_tree_edge(anchor, leaf);
        }
        for &v in &clique {
            home.entry(v).or_insert(leaf);
        }
        report.bags_added += 1;
    }

    // Cover isolated new vertices (in the graph, but in no clique).
    let mut isolated_anchor = patched.bag_ids().next();
    for v in graph.vertices() {
        if home.contains_key(&v) {
            continue;
        }
        let singleton = patched.add_bag([v]);
        if let Some(anchor) = isolated_anchor {
            patched.add_tree_edge(anchor, singleton);
        }
        isolated_anchor = isolated_anchor.or(Some(singleton));
        home.insert(v, singleton);
        report.bags_added += 1;
    }

    // Insurance: a repair either proves itself against the new graph or
    // refuses — it never hands back a broken decomposition.
    patched.validate(graph)?;
    report.bags_touched = touched.len();
    report.width_after = patched.width();
    Ok((patched, report))
}

/// The bags on the tree path from `from` (inclusive) to the nearest bag
/// containing `target` (exclusive). BFS over the bag tree.
fn path_to_vertex(td: &TreeDecomposition, from: BagId, target: VertexId) -> Vec<BagId> {
    if td.bag(from).contains(&target) {
        return Vec::new();
    }
    let mut parent: HashMap<BagId, BagId> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<BagId> = BTreeSet::from([from]);
    let mut found = None;
    'bfs: while let Some(b) = queue.pop_front() {
        for n in td.tree_neighbors(b) {
            if seen.insert(n) {
                parent.insert(n, b);
                if td.bag(n).contains(&target) {
                    found = Some(n);
                    break 'bfs;
                }
                queue.push_back(n);
            }
        }
    }
    let Some(found) = found else {
        // The target occurs somewhere (callers guarantee it), but not in
        // this tree component; the validation pass will catch the mismatch.
        return Vec::new();
    };
    // Walk back from the found bag to `from`, excluding the found bag.
    let mut path = Vec::new();
    let mut current = found;
    while let Some(&p) = parent.get(&current) {
        path.push(p);
        current = p;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{decompose_with_heuristic, EliminationHeuristic};
    use crate::generators::SplitMix64;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1));
        }
        g
    }

    fn decompose(g: &Graph) -> TreeDecomposition {
        decompose_with_heuristic(g, EliminationHeuristic::MinDegree)
    }

    fn grow(graph: &Graph, clique: &[VertexId]) -> Graph {
        let mut g = graph.clone();
        g.ensure_vertices(clique.iter().map(|v| v.0 + 1).max().unwrap_or(0));
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn leaf_bag_extension_for_adjacent_insert() {
        // Extend a path by one edge at the end: one new leaf bag, width 1.
        let g = path_graph(6);
        let td = decompose(&g);
        let clique = vec![VertexId(5), VertexId(6)];
        let new_graph = grow(&g, &clique);
        let (patched, report) = repair_decomposition(&td, &new_graph, &[clique], 8).unwrap();
        assert!(patched.validate(&new_graph).is_ok());
        assert_eq!(report.bags_added, 1);
        assert_eq!(report.bags_touched, 0);
        assert_eq!(report.width_after, 1);
    }

    #[test]
    fn path_augmentation_for_long_range_edge() {
        // An edge between the two endpoints of a path forces augmentation
        // along the whole spine; width grows to 2, still within budget.
        let g = path_graph(6);
        let td = decompose(&g);
        let clique = vec![VertexId(0), VertexId(5)];
        let new_graph = grow(&g, &clique);
        let (patched, report) =
            repair_decomposition(&td, &new_graph, &[clique], 8).expect("repair fits budget");
        assert!(patched.validate(&new_graph).is_ok());
        assert!(report.bags_touched > 0);
        assert!(report.width_after >= 2);
    }

    #[test]
    fn budget_refusal_forces_fallback() {
        let g = path_graph(6);
        let td = decompose(&g);
        let clique = vec![VertexId(0), VertexId(5)];
        let new_graph = grow(&g, &clique);
        assert!(matches!(
            repair_decomposition(&td, &new_graph, &[clique], 2),
            Err(RepairError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn brand_new_component_gets_a_leaf_bag() {
        let g = path_graph(4);
        let td = decompose(&g);
        let clique = vec![VertexId(4), VertexId(5)];
        let new_graph = grow(&g, &clique);
        let (patched, report) = repair_decomposition(&td, &new_graph, &[clique], 8).unwrap();
        assert!(patched.validate(&new_graph).is_ok());
        assert_eq!(report.bags_added, 1);
    }

    #[test]
    fn isolated_new_vertices_are_covered() {
        let g = path_graph(3);
        let td = decompose(&g);
        let mut new_graph = g.clone();
        new_graph.add_vertex();
        let (patched, report) = repair_decomposition(&td, &new_graph, &[], 8).unwrap();
        assert!(patched.validate(&new_graph).is_ok());
        assert_eq!(report.bags_added, 1);
    }

    #[test]
    fn duplicate_clique_is_a_no_op() {
        let g = path_graph(5);
        let td = decompose(&g);
        let (patched, report) =
            repair_decomposition(&td, &g, &[vec![VertexId(1), VertexId(2)]], 8).unwrap();
        assert_eq!(report.bags_added, 0);
        assert_eq!(report.bags_touched, 0);
        assert_eq!(patched.bag_count(), td.bag_count());
    }

    #[test]
    fn repair_from_empty_decomposition() {
        let g = Graph::new();
        let td = TreeDecomposition::new();
        let mut new_graph = g.clone();
        new_graph.ensure_vertices(2);
        new_graph.add_edge(VertexId(0), VertexId(1));
        let (patched, report) =
            repair_decomposition(&td, &new_graph, &[vec![VertexId(0), VertexId(1)]], 8).unwrap();
        assert!(patched.validate(&new_graph).is_ok());
        assert_eq!(report.bags_added, 1);
    }

    #[test]
    fn random_insert_sequences_stay_valid() {
        // Grow a random sparse graph one clique at a time; every repair must
        // validate, and refusals must only happen on genuine budget stress.
        let mut rng = SplitMix64::new(41);
        for _ in 0..20 {
            let n = 8 + rng.next_below(8);
            let mut graph = Graph::with_vertices(n);
            for i in 1..n {
                graph.add_edge(VertexId(i), VertexId(rng.next_below(i)));
            }
            let mut td = decompose(&graph);
            for _ in 0..6 {
                let a = rng.next_below(graph.vertex_count());
                let b = rng.next_below(graph.vertex_count() + 2);
                let clique = vec![VertexId(a), VertexId(b)];
                let new_graph = grow(&graph, &clique);
                match repair_decomposition(&td, &new_graph, &[clique], 12) {
                    Ok((patched, report)) => {
                        assert!(patched.validate(&new_graph).is_ok());
                        assert!(report.width_after < 12);
                        td = patched;
                    }
                    Err(RepairError::BudgetExceeded { .. }) => {
                        td = decompose(&new_graph);
                    }
                    Err(other) => panic!("unexpected repair failure: {other}"),
                }
                graph = new_graph;
            }
        }
    }
}
