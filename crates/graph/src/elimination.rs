//! Elimination orderings and the greedy treewidth heuristics.
//!
//! A classic way to obtain a tree decomposition is to pick an *elimination
//! ordering* of the vertices: repeatedly remove a vertex after turning its
//! neighbourhood into a clique. Each eliminated vertex, together with its
//! neighbourhood at elimination time, becomes a bag; bags are wired into a
//! tree by connecting each bag to the bag of the first later-eliminated
//! vertex it contains. The width obtained this way equals the largest
//! neighbourhood encountered, and the minimum over all orderings is exactly
//! the treewidth.
//!
//! Two standard greedy heuristics choose the ordering:
//!
//! * **min-degree** — eliminate a vertex of minimum current degree;
//! * **min-fill** — eliminate a vertex whose elimination adds the fewest
//!   fill-in edges.
//!
//! Both are cheap and give optimal or near-optimal widths on the tree-like
//! inputs the paper targets; an ablation benchmark (`a1_decomposition_heuristics`)
//! compares them.

use crate::decomposition::{BagId, TreeDecomposition};
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Which greedy rule selects the next vertex to eliminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EliminationHeuristic {
    /// Eliminate a vertex of minimum current degree (the default: cheap and
    /// near-optimal on the path/tree-shaped workloads of the paper).
    #[default]
    MinDegree,
    /// Eliminate a vertex whose elimination creates the fewest fill-in edges.
    MinFill,
    /// Eliminate vertices in identifier order (a deliberately poor baseline
    /// used by the ablation benchmark).
    Lexicographic,
}

impl EliminationHeuristic {
    /// All heuristics, for sweeps.
    pub const ALL: [EliminationHeuristic; 3] = [
        EliminationHeuristic::MinDegree,
        EliminationHeuristic::MinFill,
        EliminationHeuristic::Lexicographic,
    ];

    /// Human-readable name (used in benchmark output).
    pub fn name(self) -> &'static str {
        match self {
            EliminationHeuristic::MinDegree => "min-degree",
            EliminationHeuristic::MinFill => "min-fill",
            EliminationHeuristic::Lexicographic => "lexicographic",
        }
    }
}

/// An elimination ordering: a permutation of the graph's vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder(pub Vec<VertexId>);

impl EliminationOrder {
    /// Number of vertices in the ordering.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Computes an elimination ordering of `g` with the given heuristic.
pub fn elimination_order(g: &Graph, heuristic: EliminationHeuristic) -> EliminationOrder {
    match heuristic {
        EliminationHeuristic::MinDegree => min_degree_order(g),
        EliminationHeuristic::MinFill => min_fill_order(g),
        EliminationHeuristic::Lexicographic => EliminationOrder(g.vertices().collect()),
    }
}

/// Min-degree ordering with a lazy binary heap: near-linear on sparse graphs,
/// which is what the Theorem 1 scaling benchmark needs (10⁵-fact instances).
fn min_degree_order(g: &Graph) -> EliminationOrder {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.vertex_count();
    let mut adjacency: Vec<BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(VertexId(v)).map(|u| u.0).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    // Lazy heap: entries may be stale; re-check the degree on pop.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((adjacency[v].len(), v))).collect();

    while order.len() < n {
        let Reverse((recorded_degree, v)) = heap.pop().expect("heap exhausted too early");
        if !alive[v] || adjacency[v].len() != recorded_degree {
            if alive[v] {
                heap.push(Reverse((adjacency[v].len(), v)));
            }
            continue;
        }
        let neighbours: Vec<usize> = adjacency[v].iter().copied().collect();
        eliminate(&mut adjacency, &mut alive, v);
        order.push(VertexId(v));
        for u in neighbours {
            if alive[u] {
                heap.push(Reverse((adjacency[u].len(), u)));
            }
        }
    }
    EliminationOrder(order)
}

/// Vertex count above which min-fill falls back to the reference BTreeSet
/// implementation: the bitset matrix is O(n²/8) bytes, which stops being a
/// good trade on very large (and then necessarily sparse) graphs.
const MIN_FILL_BITSET_LIMIT: usize = 16_384;

/// Min-fill ordering. Quadratic selection: only re-scores vertices whose
/// neighbourhood changed, but still scans all alive vertices per step, so it
/// is reserved for moderate-size graphs (the ablation compares it to
/// min-degree on exactly such inputs). On those graphs the adjacency is kept
/// as a word-packed bitset matrix, so each fill-in count is O(n²/64)
/// intersection counting instead of O(deg²) `BTreeSet` probes; the computed
/// ordering is identical to [`reference_min_fill_order`].
fn min_fill_order(g: &Graph) -> EliminationOrder {
    let n = g.vertex_count();
    if n > MIN_FILL_BITSET_LIMIT {
        return reference_min_fill_order(g);
    }
    let mut adjacency = BitMatrix::from_graph(g);
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut fill: Vec<usize> = (0..n).map(|v| adjacency.fill_in_count(v)).collect();

    for step in 0..n {
        // Quadratic selection is the one ordering loop that can hold a
        // worker for seconds: when the ambient budget trips, degrade to the
        // identifier-order tail (still a valid elimination order, just
        // lower quality) and let the caller's next fallible checkpoint
        // surface the typed error.
        if step.is_multiple_of(64) && stuc_fault::budget::tripped() {
            order.extend((0..n).filter(|&v| alive[v]).map(VertexId));
            break;
        }
        let next = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (fill[v], v))
            .expect("some vertex is alive");
        let affected: Vec<usize> = adjacency.neighbors(next).collect();
        adjacency.eliminate(next, &affected);
        alive[next] = false;
        order.push(VertexId(next));
        // Fill-in counts can change for the eliminated vertex's neighbours and
        // for their neighbours (the 2-hop set): re-score exactly that set.
        let mut to_rescore: BTreeSet<usize> = BTreeSet::new();
        for &u in &affected {
            if alive[u] {
                to_rescore.insert(u);
                to_rescore.extend(adjacency.neighbors(u));
            }
        }
        for u in to_rescore {
            fill[u] = adjacency.fill_in_count(u);
        }
    }
    EliminationOrder(order)
}

/// The original `BTreeSet`-adjacency min-fill implementation, kept as the
/// reference for differential testing: the bitset-backed
/// [`EliminationHeuristic::MinFill`] must produce *identical* orderings
/// (asserted by unit tests and by the `a1_decomposition_heuristics` bench on
/// its seed graphs).
pub fn reference_min_fill_order(g: &Graph) -> EliminationOrder {
    let n = g.vertex_count();
    let mut adjacency: Vec<BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(VertexId(v)).map(|u| u.0).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut fill: Vec<usize> = (0..n).map(|v| fill_in_count(&adjacency, v)).collect();

    for step in 0..n {
        // Same degrade-on-trip fallback as the bitset path, so the two
        // implementations stay order-identical under any budget state.
        if step.is_multiple_of(64) && stuc_fault::budget::tripped() {
            order.extend((0..n).filter(|&v| alive[v]).map(VertexId));
            break;
        }
        let next = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (fill[v], v))
            .expect("some vertex is alive");
        let affected: Vec<usize> = adjacency[next].iter().copied().collect();
        eliminate(&mut adjacency, &mut alive, next);
        order.push(VertexId(next));
        let mut to_rescore: BTreeSet<usize> = BTreeSet::new();
        for &u in &affected {
            if alive[u] {
                to_rescore.insert(u);
                to_rescore.extend(adjacency[u].iter().copied().filter(|&w| alive[w]));
            }
        }
        for u in to_rescore {
            fill[u] = fill_in_count(&adjacency, u);
        }
    }
    EliminationOrder(order)
}

/// Word-packed adjacency matrix: row `v` is a bitset over the vertices, so
/// neighbourhood intersections (the inner loop of min-fill scoring) run a
/// word at a time.
struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn from_graph(g: &Graph) -> BitMatrix {
        let n = g.vertex_count();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for v in 0..n {
            let row = v * words_per_row;
            for u in g.neighbors(VertexId(v)) {
                bits[row + u.0 / 64] |= 1u64 << (u.0 % 64);
            }
        }
        BitMatrix {
            words_per_row,
            bits,
        }
    }

    fn row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(v).iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// Number of fill-in edges that eliminating `v` would create: for every
    /// neighbour `a` of `v`, count the neighbours of `v` that are *not*
    /// adjacent to `a` (word-wise `N(v) & !N(a)`, with `a` itself masked
    /// out); every missing pair is counted once from each side.
    fn fill_in_count(&self, v: usize) -> usize {
        let mut missing_ordered = 0usize;
        let row_v = v * self.words_per_row;
        for a in self.neighbors(v) {
            let row_a = a * self.words_per_row;
            for w in 0..self.words_per_row {
                let mut candidates = self.bits[row_v + w] & !self.bits[row_a + w];
                if a / 64 == w {
                    candidates &= !(1u64 << (a % 64));
                }
                missing_ordered += candidates.count_ones() as usize;
            }
        }
        missing_ordered / 2
    }

    /// Eliminates `v` (whose neighbour list is `ns`): connects the
    /// neighbourhood into a clique and removes `v` from every row.
    fn eliminate(&mut self, v: usize, ns: &[usize]) {
        let (v_word, v_bit) = (v / 64, 1u64 << (v % 64));
        let row_v: Vec<u64> = self.row(v).to_vec();
        for &a in ns {
            let row_a = a * self.words_per_row;
            for (w, &word) in row_v.iter().enumerate() {
                self.bits[row_a + w] |= word;
            }
            // No self-loop, and v is gone.
            self.bits[row_a + a / 64] &= !(1u64 << (a % 64));
            self.bits[row_a + v_word] &= !v_bit;
        }
        for w in self.bits[v * self.words_per_row..(v + 1) * self.words_per_row].iter_mut() {
            *w = 0;
        }
    }
}

/// Number of fill-in edges that eliminating `v` would create.
fn fill_in_count(adjacency: &[BTreeSet<usize>], v: usize) -> usize {
    let ns: Vec<usize> = adjacency[v].iter().copied().collect();
    let mut missing = 0;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if !adjacency[a].contains(&b) {
                missing += 1;
            }
        }
    }
    missing
}

/// Eliminates `v`: connects its neighbourhood into a clique and removes it.
fn eliminate(adjacency: &mut [BTreeSet<usize>], alive: &mut [bool], v: usize) {
    let ns: Vec<usize> = adjacency[v].iter().copied().collect();
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            adjacency[a].insert(b);
            adjacency[b].insert(a);
        }
    }
    for &a in &ns {
        adjacency[a].remove(&v);
    }
    adjacency[v].clear();
    alive[v] = false;
}

/// Builds a tree decomposition of `g` from an elimination ordering.
///
/// The resulting decomposition is always valid; its width is the width of the
/// ordering (which is ≥ the treewidth of `g`).
pub fn decompose_with_order(g: &Graph, order: &EliminationOrder) -> TreeDecomposition {
    let n = g.vertex_count();
    assert_eq!(
        order.len(),
        n,
        "ordering must cover every vertex exactly once"
    );
    if n == 0 {
        return TreeDecomposition::new();
    }

    // position[v] = index of v in the elimination order.
    let mut position = vec![usize::MAX; n];
    for (i, v) in order.0.iter().enumerate() {
        position[v.0] = i;
    }

    // Simulate elimination, recording each vertex's neighbourhood at
    // elimination time ("higher neighbours" in the filled graph).
    let mut adjacency: Vec<BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(VertexId(v)).map(|u| u.0).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut bag_of_vertex: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for &v in &order.0 {
        bag_of_vertex[v.0] = adjacency[v.0].clone();
        eliminate(&mut adjacency, &mut alive, v.0);
    }

    let mut td = TreeDecomposition::new();
    let mut bag_id_of_vertex: Vec<BagId> = Vec::with_capacity(n);
    for &v in &order.0 {
        let mut content: BTreeSet<VertexId> =
            bag_of_vertex[v.0].iter().map(|&u| VertexId(u)).collect();
        content.insert(v);
        let id = td.add_bag(content);
        bag_id_of_vertex.push(id);
    }
    // bag_index_by_vertex[v] = the bag created when v was eliminated.
    let mut bag_index_by_vertex = vec![BagId(0); n];
    for (i, &v) in order.0.iter().enumerate() {
        bag_index_by_vertex[v.0] = bag_id_of_vertex[i];
    }

    // Each bag connects to the bag of the earliest-eliminated vertex among its
    // strictly-later neighbours (the standard clique-tree wiring).
    for &v in &order.0 {
        let later: Option<usize> = bag_of_vertex[v.0]
            .iter()
            .copied()
            .filter(|&u| position[u] > position[v.0])
            .min_by_key(|&u| position[u]);
        if let Some(u) = later {
            td.add_tree_edge(bag_index_by_vertex[v.0], bag_index_by_vertex[u]);
        }
    }
    // Disconnected graphs produce a forest of clique trees; link them.
    td.connect_components();
    td
}

/// The width that an elimination ordering yields on `g` (max neighbourhood
/// size at elimination time), without materialising the decomposition.
pub fn order_width(g: &Graph, order: &EliminationOrder) -> usize {
    let n = g.vertex_count();
    let mut adjacency: Vec<BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbors(VertexId(v)).map(|u| u.0).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut width = 0;
    for &v in &order.0 {
        width = width.max(adjacency[v.0].len());
        eliminate(&mut adjacency, &mut alive, v.0);
    }
    width
}

/// Computes a tree decomposition of `g` with the given greedy heuristic.
///
/// This is the main entry point used by the rest of STUC.
pub fn decompose_with_heuristic(g: &Graph, heuristic: EliminationHeuristic) -> TreeDecomposition {
    // Infallible site: an armed Error action is ignored, Panic/Sleep apply.
    stuc_fault::failpoint!("graph-decompose");
    let order = elimination_order(g, heuristic);
    decompose_with_order(g, &order)
}

/// Runs every heuristic and returns the decomposition of smallest width.
pub fn decompose_best_effort(g: &Graph) -> TreeDecomposition {
    EliminationHeuristic::ALL
        .iter()
        .map(|&h| decompose_with_heuristic(g, h))
        .min_by_key(|td| td.width())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_has_width_one() {
        let g = generators::path(10);
        for h in EliminationHeuristic::ALL {
            let td = decompose_with_heuristic(&g, h);
            assert!(
                td.validate(&g).is_ok(),
                "{h:?} produced invalid decomposition"
            );
            assert_eq!(td.width(), 1, "{h:?} on a path");
        }
    }

    #[test]
    fn cycle_has_width_two() {
        let g = generators::cycle(8);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn tree_has_width_one() {
        let g = generators::balanced_binary_tree(4);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn complete_graph_has_width_n_minus_one() {
        let g = generators::complete(6);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 5);
    }

    #[test]
    fn grid_width_is_at_most_side() {
        // The m×m grid has treewidth exactly m; heuristics should stay close.
        let g = generators::grid(4, 4);
        let td = decompose_best_effort(&g);
        assert!(td.validate(&g).is_ok());
        assert!(
            td.width() >= 4,
            "width {} below the true treewidth",
            td.width()
        );
        assert!(
            td.width() <= 6,
            "width {} too far above the true treewidth",
            td.width()
        );
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let mut g = generators::path(4);
        // Add an isolated component.
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn empty_graph_gives_empty_decomposition() {
        let g = Graph::new();
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
        assert_eq!(td.bag_count(), 0);
        assert!(td.validate(&g).is_ok());
    }

    #[test]
    fn single_vertex_graph() {
        let mut g = Graph::new();
        g.add_vertex();
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 0);
        assert_eq!(td.bag_count(), 1);
    }

    #[test]
    fn order_width_matches_decomposition_width() {
        let g = generators::partial_k_tree(30, 3, 0.3, 42);
        for h in EliminationHeuristic::ALL {
            let order = elimination_order(&g, h);
            let w = order_width(&g, &order);
            let td = decompose_with_order(&g, &order);
            assert_eq!(td.width(), w, "{h:?}");
            assert!(td.validate(&g).is_ok());
        }
    }

    #[test]
    fn partial_k_tree_width_at_most_k_with_good_heuristics() {
        // Partial 2-trees have treewidth ≤ 2 and min-fill recovers that.
        let g = generators::partial_k_tree(40, 2, 0.5, 7);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinFill);
        assert!(td.validate(&g).is_ok());
        assert!(td.width() <= 2, "width {} exceeds 2", td.width());
    }

    #[test]
    #[should_panic(expected = "ordering must cover")]
    fn wrong_length_order_panics() {
        let g = generators::path(3);
        let order = EliminationOrder(vec![VertexId(0)]);
        decompose_with_order(&g, &order);
    }

    #[test]
    fn bitset_min_fill_matches_reference_ordering() {
        let mut disconnected = generators::path(6);
        let a = disconnected.add_vertex();
        let b = disconnected.add_vertex();
        disconnected.add_edge(a, b);
        let graphs = vec![
            Graph::new(),
            generators::path(30),
            generators::cycle(16),
            generators::grid(5, 5),
            generators::star(12),
            generators::balanced_binary_tree(5),
            generators::partial_k_tree(60, 3, 0.4, 9),
            generators::caterpillar(20, 3),
            disconnected,
        ];
        for (i, g) in graphs.iter().enumerate() {
            assert_eq!(
                min_fill_order(g),
                reference_min_fill_order(g),
                "bitset and reference min-fill orders diverge on graph {i}"
            );
        }
    }

    #[test]
    fn star_graph_has_width_one() {
        let g = generators::star(9);
        let td = decompose_with_heuristic(&g, EliminationHeuristic::MinDegree);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 1);
    }
}
