//! Tree decompositions: bags, the tree over bags, width, and validation.
//!
//! A *tree decomposition* of a graph `G = (V, E)` is a tree `T` whose nodes
//! carry *bags* (subsets of `V`) such that
//!
//! 1. every vertex of `G` appears in some bag,
//! 2. for every edge `{u, v}` of `G` some bag contains both `u` and `v`, and
//! 3. for every vertex `v`, the bags containing `v` form a connected subtree
//!    of `T` (the *running intersection* property).
//!
//! Its *width* is the maximum bag size minus one; the *treewidth* of `G` is
//! the smallest width over all its decompositions. The paper's Theorems 1
//! and 2 assume the data's decomposition has width bounded by a constant.

use crate::graph::{Graph, VertexId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A handle to a bag (node) of a [`TreeDecomposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BagId(pub usize);

impl BagId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

stuc_errors::stuc_error! {
    /// Why a candidate decomposition is not a valid tree decomposition of a graph.
    #[derive(Clone, PartialEq, Eq)]
    pub enum DecompositionError {
        /// A graph vertex appears in no bag.
        VertexNotCovered(VertexId),
        /// A graph edge is contained in no bag.
        EdgeNotCovered(VertexId, VertexId),
        /// The bags containing this vertex do not form a connected subtree.
        VertexNotConnected(VertexId),
        /// The bag tree contains a cycle or is disconnected.
        NotATree,
        /// A tree edge refers to a bag that does not exist.
        DanglingTreeEdge(BagId, BagId),
    }
    display {
        Self::VertexNotCovered(v) => "vertex {v} appears in no bag",
        Self::EdgeNotCovered(u, v) => "edge {{{u}, {v}}} is contained in no bag",
        Self::VertexNotConnected(v) => "the bags containing {v} are not connected in the tree",
        Self::NotATree => "the bag graph is not a tree",
        Self::DanglingTreeEdge(a, b) => "tree edge ({a}, {b}) refers to a missing bag",
    }
}

/// A tree decomposition: a set of bags and a tree structure over them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// `bags[b]` is the (sorted, deduplicated) content of bag `b`.
    bags: Vec<BTreeSet<VertexId>>,
    /// Adjacency of the bag tree.
    tree: Vec<BTreeSet<usize>>,
}

impl TreeDecomposition {
    /// Creates an empty decomposition (valid only for the empty graph).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trivial decomposition with a single bag containing all the
    /// vertices of `g`. Always valid; width `n - 1`.
    pub fn trivial(g: &Graph) -> Self {
        let mut td = TreeDecomposition::new();
        td.add_bag(g.vertices());
        td
    }

    /// Adds a bag with the given content and returns its identifier.
    pub fn add_bag(&mut self, content: impl IntoIterator<Item = VertexId>) -> BagId {
        self.bags.push(content.into_iter().collect());
        self.tree.push(BTreeSet::new());
        BagId(self.bags.len() - 1)
    }

    /// Connects two bags in the tree. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either bag does not exist.
    pub fn add_tree_edge(&mut self, a: BagId, b: BagId) {
        assert!(
            a.0 < self.bags.len() && b.0 < self.bags.len(),
            "bag out of range"
        );
        if a != b {
            self.tree[a.0].insert(b.0);
            self.tree[b.0].insert(a.0);
        }
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// Adds a vertex to an existing bag (used by incremental repair).
    /// Returns `true` if the vertex was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the bag does not exist.
    pub fn add_to_bag(&mut self, b: BagId, v: VertexId) -> bool {
        self.bags[b.0].insert(v)
    }

    /// Returns a copy of the decomposition with every vertex `v` replaced by
    /// `map[v.0]`. Used when the decomposed graph is renumbered (e.g. the
    /// pcc joint graph shifts its gate vertices when constants are
    /// inserted): an injective remap preserves validity verbatim.
    ///
    /// # Panics
    ///
    /// Panics if a bag contains a vertex outside `map`.
    pub fn remap_vertices(&self, map: &[VertexId]) -> TreeDecomposition {
        TreeDecomposition {
            bags: self
                .bags
                .iter()
                .map(|bag| bag.iter().map(|v| map[v.0]).collect())
                .collect(),
            tree: self.tree.clone(),
        }
    }

    /// The content of a bag.
    pub fn bag(&self, b: BagId) -> &BTreeSet<VertexId> {
        &self.bags[b.0]
    }

    /// Iterator over all bag identifiers.
    pub fn bag_ids(&self) -> impl Iterator<Item = BagId> {
        (0..self.bags.len()).map(BagId)
    }

    /// Neighbours of a bag in the tree.
    pub fn tree_neighbors(&self, b: BagId) -> impl Iterator<Item = BagId> + '_ {
        self.tree[b.0].iter().map(|&i| BagId(i))
    }

    /// Iterator over tree edges, each yielded once with `a < b`.
    pub fn tree_edges(&self) -> impl Iterator<Item = (BagId, BagId)> + '_ {
        self.tree.iter().enumerate().flat_map(|(a, ns)| {
            ns.iter()
                .filter(move |&&b| a < b)
                .map(move |&b| (BagId(a), BagId(b)))
        })
    }

    /// The width of the decomposition: `max |bag| - 1` (`0` when empty).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// The largest bag size (width + 1 for non-empty decompositions).
    pub fn max_bag_size(&self) -> usize {
        self.bags.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Checks all three tree-decomposition conditions against `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), DecompositionError> {
        self.validate_tree_shape()?;

        // Condition 1: vertex coverage.
        let mut covered = vec![false; g.vertex_count()];
        for bag in &self.bags {
            for v in bag {
                if v.0 < covered.len() {
                    covered[v.0] = true;
                }
            }
        }
        for v in g.vertices() {
            if !covered[v.0] {
                return Err(DecompositionError::VertexNotCovered(v));
            }
        }

        // Condition 2: edge coverage.
        for (u, v) in g.edges() {
            let ok = self.bags.iter().any(|b| b.contains(&u) && b.contains(&v));
            if !ok {
                return Err(DecompositionError::EdgeNotCovered(u, v));
            }
        }

        // Condition 3: running intersection (connected occurrences).
        self.validate_running_intersection(g)?;
        Ok(())
    }

    fn validate_tree_shape(&self) -> Result<(), DecompositionError> {
        let n = self.bags.len();
        if n == 0 {
            return Ok(());
        }
        for (a, ns) in self.tree.iter().enumerate() {
            for &b in ns {
                if b >= n {
                    return Err(DecompositionError::DanglingTreeEdge(BagId(a), BagId(b)));
                }
            }
        }
        // A connected graph on n nodes with n - 1 edges is a tree.
        let edge_count: usize = self.tree.iter().map(|ns| ns.len()).sum::<usize>() / 2;
        if edge_count != n - 1 {
            return Err(DecompositionError::NotATree);
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(a) = queue.pop_front() {
            for &b in &self.tree[a] {
                if !seen[b] {
                    seen[b] = true;
                    count += 1;
                    queue.push_back(b);
                }
            }
        }
        if count != n {
            return Err(DecompositionError::NotATree);
        }
        Ok(())
    }

    fn validate_running_intersection(&self, g: &Graph) -> Result<(), DecompositionError> {
        // For each vertex, the bags containing it must induce a connected
        // subtree. We check connectivity by BFS restricted to those bags.
        let mut occurrence: HashMap<VertexId, Vec<usize>> = HashMap::new();
        for (i, bag) in self.bags.iter().enumerate() {
            for &v in bag {
                occurrence.entry(v).or_default().push(i);
            }
        }
        for v in g.vertices() {
            let Some(bags) = occurrence.get(&v) else {
                continue;
            };
            if bags.len() <= 1 {
                continue;
            }
            let in_set: HashSet<usize> = bags.iter().copied().collect();
            let mut seen = HashSet::new();
            let mut queue = VecDeque::from([bags[0]]);
            seen.insert(bags[0]);
            while let Some(a) = queue.pop_front() {
                for &b in &self.tree[a] {
                    if in_set.contains(&b) && seen.insert(b) {
                        queue.push_back(b);
                    }
                }
            }
            if seen.len() != in_set.len() {
                return Err(DecompositionError::VertexNotConnected(v));
            }
        }
        Ok(())
    }

    /// Connects the bag tree into a single tree if it currently consists of
    /// several components (e.g. when the decomposed graph was disconnected).
    /// New edges are added between arbitrary representatives; this never
    /// breaks validity because the linked components share no vertices.
    pub fn connect_components(&mut self) {
        let n = self.bags.len();
        if n == 0 {
            return;
        }
        let mut seen = vec![false; n];
        let mut representatives = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            representatives.push(start);
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(a) = queue.pop_front() {
                for &b in &self.tree[a] {
                    if !seen[b] {
                        seen[b] = true;
                        queue.push_back(b);
                    }
                }
            }
        }
        for pair in representatives.windows(2) {
            self.add_tree_edge(BagId(pair[0]), BagId(pair[1]));
        }
    }

    /// Returns a bag containing all of `vertices`, if any.
    pub fn find_bag_containing(&self, vertices: &[VertexId]) -> Option<BagId> {
        self.bags
            .iter()
            .position(|b| vertices.iter().all(|v| b.contains(v)))
            .map(BagId)
    }

    /// Returns a root bag and, for every bag, its parent under that rooting
    /// (`None` for the root). Useful for bottom-up dynamic programming.
    pub fn root_at(&self, root: BagId) -> Vec<Option<BagId>> {
        let n = self.bags.len();
        let mut parent = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([root.0]);
        seen[root.0] = true;
        while let Some(a) = queue.pop_front() {
            for &b in &self.tree[a] {
                if !seen[b] {
                    seen[b] = true;
                    parent[b] = Some(BagId(a));
                    queue.push_back(b);
                }
            }
        }
        parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1));
        }
        g
    }

    fn path_decomposition(n: usize) -> TreeDecomposition {
        // Bags {i, i+1} chained in a path: the canonical width-1 decomposition.
        let mut td = TreeDecomposition::new();
        let mut prev = None;
        for i in 0..n - 1 {
            let b = td.add_bag([VertexId(i), VertexId(i + 1)]);
            if let Some(p) = prev {
                td.add_tree_edge(p, b);
            }
            prev = Some(b);
        }
        td
    }

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = path_graph(5);
        let td = TreeDecomposition::trivial(&g);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 4);
    }

    #[test]
    fn path_decomposition_is_valid_width_one() {
        let g = path_graph(6);
        let td = path_decomposition(6);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 1);
        assert_eq!(td.max_bag_size(), 2);
    }

    #[test]
    fn missing_vertex_is_detected() {
        let g = path_graph(3);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([VertexId(0), VertexId(1)]);
        let b = td.add_bag([VertexId(1)]);
        td.add_tree_edge(a, b);
        assert_eq!(
            td.validate(&g),
            Err(DecompositionError::VertexNotCovered(VertexId(2)))
        );
    }

    #[test]
    fn missing_edge_is_detected() {
        let g = path_graph(3);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([VertexId(0), VertexId(1)]);
        let b = td.add_bag([VertexId(2)]);
        td.add_tree_edge(a, b);
        assert_eq!(
            td.validate(&g),
            Err(DecompositionError::EdgeNotCovered(VertexId(1), VertexId(2)))
        );
    }

    #[test]
    fn broken_running_intersection_is_detected() {
        let g = path_graph(3);
        let mut td = TreeDecomposition::new();
        // Vertex 0 appears in bags a and c, but b (the middle) does not contain it.
        let a = td.add_bag([VertexId(0), VertexId(1)]);
        let b = td.add_bag([VertexId(1), VertexId(2)]);
        let c = td.add_bag([VertexId(0), VertexId(2)]);
        td.add_tree_edge(a, b);
        td.add_tree_edge(b, c);
        assert_eq!(
            td.validate(&g),
            Err(DecompositionError::VertexNotConnected(VertexId(0)))
        );
    }

    #[test]
    fn disconnected_bag_tree_is_rejected() {
        let g = path_graph(4);
        let mut td = TreeDecomposition::new();
        td.add_bag([VertexId(0), VertexId(1)]);
        td.add_bag([VertexId(1), VertexId(2)]);
        td.add_bag([VertexId(2), VertexId(3)]);
        // No tree edges at all: 3 bags, 0 edges → not a tree.
        assert_eq!(td.validate(&g), Err(DecompositionError::NotATree));
    }

    #[test]
    fn connect_components_repairs_forest() {
        let g = path_graph(4);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([VertexId(0), VertexId(1)]);
        let b = td.add_bag([VertexId(1), VertexId(2)]);
        let _c = td.add_bag([VertexId(2), VertexId(3)]);
        td.add_tree_edge(a, b);
        // the third bag is dangling; repair.
        td.connect_components();
        assert!(td.validate(&g).is_err() || td.validate(&g).is_ok());
        // After connecting, the tree shape is fine; running intersection may
        // still fail depending on which representative got linked, but for
        // this instance bag c shares vertex 2 with b only; the representative
        // of c's component is c itself and of the first component is a, so
        // vertex 2's occurrences {b, c} may be disconnected. We only assert
        // the tree shape here.
        assert!(td.validate_tree_shape().is_ok());
    }

    #[test]
    fn root_at_produces_parents() {
        let td = path_decomposition(5);
        let parents = td.root_at(BagId(0));
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(BagId(0)));
        assert_eq!(parents[3], Some(BagId(2)));
    }

    #[test]
    fn find_bag_containing_works() {
        let td = path_decomposition(5);
        assert_eq!(
            td.find_bag_containing(&[VertexId(2), VertexId(3)]),
            Some(BagId(2))
        );
        assert_eq!(td.find_bag_containing(&[VertexId(0), VertexId(4)]), None);
    }

    #[test]
    fn empty_decomposition_is_valid_for_empty_graph() {
        let g = Graph::new();
        let td = TreeDecomposition::new();
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 0);
    }
}
