//! # stuc-prxml — probabilistic XML (PrXML) documents
//!
//! The tree-shaped uncertain data of the paper's Section 2.1: XML documents
//! with *local* uncertainty nodes (`ind` for independent optional children,
//! `mux` for mutually exclusive choices) and *global* uncertainty through
//! Boolean events shared across the document (`cie` nodes — conjunctions of
//! independent events), as in the Wikidata example of Figure 1.
//!
//! * [`document`] — the PrXML document model, its possible worlds, and the
//!   literal document of Figure 1.
//! * [`queries`] — tree-pattern queries (label existence, ancestor/descendant
//!   patterns) and their lineage circuits over the document's independent
//!   events; probabilities are computed by any `stuc-circuit` back-end.
//! * [`scope`] — event scopes (Section 2.1 / reference \[7\]): the set of nodes
//!   where an event's value must be remembered, whose maximum size is the
//!   structural parameter that makes global uncertainty tractable.
//! * [`generator`] — synthetic Wikidata-style document generators used by the
//!   event-scope experiment (E6).
//! * [`constraints`] — conditioning a document with observed constraints
//!   (tree patterns, negated patterns, counting constraints): conditioned
//!   query probabilities by Bayes over shared presence-gate circuits
//!   (experiment E15).
//!
//! ## Example
//!
//! ```
//! use stuc_prxml::document::PrXmlDocument;
//! use stuc_prxml::queries::{PrxmlQuery, query_probability};
//!
//! let doc = PrXmlDocument::figure1_example();
//! // Probability that the occupation "musician" is recorded: the ind edge, 0.4.
//! let p = query_probability(&doc, &PrxmlQuery::LabelExists("musician".into())).unwrap();
//! assert!((p - 0.4).abs() < 1e-9);
//! ```

pub mod constraints;
pub mod document;
pub mod generator;
pub mod queries;
pub mod scope;

pub use constraints::PrxmlConstraint;
pub use document::{NodeId, PrXmlDocument};
pub use queries::PrxmlQuery;
