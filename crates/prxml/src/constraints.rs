//! Conditioning PrXML documents with constraints.
//!
//! The paper's Section 4 observes that "existing work in the probabilistic
//! XML context has shown that it is tractable to query a document that has
//! been conditioned using a specific language of constraints" (Cohen,
//! Kimelfeld, Sagiv). This module provides such a constraint language over
//! PrXML documents — observed tree patterns, negated patterns, and counting
//! constraints on labels — and computes conditioned query probabilities
//! `P(query | constraint)` by Bayes over lineage circuits, with the naive
//! valuation enumeration available as a cross-check.
//!
//! Conditioning on the value of a named *global event* remains the cheap
//! case (fix its probability to 0 or 1); conditioning on a constraint goes
//! through the circuits and stays exact as long as the probability back-ends
//! accept them — which is the structural-tractability story of the paper,
//! replayed for conditioning.

use std::collections::BTreeMap;

use crate::document::{NodeId, PrXmlDocument};
use crate::queries::{lineage_gate, query_holds_in_world, PrxmlQuery};
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::wmc::TreewidthWmc;

/// An observation (constraint) on a PrXML document.
#[derive(Debug, Clone, PartialEq)]
pub enum PrxmlConstraint {
    /// The tree-pattern query was observed to hold.
    Holds(PrxmlQuery),
    /// The tree-pattern query was observed *not* to hold.
    Violated(PrxmlQuery),
    /// At least `min` present nodes carry the label.
    AtLeast {
        /// The node label being counted.
        label: String,
        /// Minimum number of present nodes with that label.
        min: usize,
    },
    /// At most `max` present nodes carry the label.
    AtMost {
        /// The node label being counted.
        label: String,
        /// Maximum number of present nodes with that label.
        max: usize,
    },
    /// All of the listed constraints hold.
    All(Vec<PrxmlConstraint>),
}

stuc_errors::stuc_error! {
    /// Errors raised when conditioning a document.
    #[derive(Clone, PartialEq)]
    pub enum PrxmlConstraintError {
        /// The observation has probability zero: conditioning is undefined.
        ImpossibleObservation,
        /// No probability back-end could evaluate the circuits.
        Probability(String),
        /// A named global event was not found in the document.
        UnknownEvent(String),
    }
    display {
        Self::ImpossibleObservation => "the observed constraint has probability zero",
        Self::Probability(message) => "probability computation failed: {message}",
        Self::UnknownEvent(name) => "unknown global event '{name}'",
    }
}

/// True if the constraint is satisfied by a given set of present nodes
/// (used by tests and by the enumeration cross-check).
pub fn constraint_holds_in_world(
    doc: &PrXmlDocument,
    constraint: &PrxmlConstraint,
    present: &std::collections::BTreeSet<NodeId>,
) -> bool {
    match constraint {
        PrxmlConstraint::Holds(query) => query_holds_in_world(doc, query, present),
        PrxmlConstraint::Violated(query) => !query_holds_in_world(doc, query, present),
        PrxmlConstraint::AtLeast { label, min } => {
            present.iter().filter(|&&n| doc.label(n) == label).count() >= *min
        }
        PrxmlConstraint::AtMost { label, max } => {
            present.iter().filter(|&&n| doc.label(n) == label).count() <= *max
        }
        PrxmlConstraint::All(parts) => parts
            .iter()
            .all(|part| constraint_holds_in_world(doc, part, present)),
    }
}

/// Appends the constraint's gate to a circuit sharing the document's presence
/// gates, returning the gate that is true exactly in the worlds satisfying
/// the constraint.
fn constraint_gate(
    doc: &PrXmlDocument,
    constraint: &PrxmlConstraint,
    circuit: &mut Circuit,
    node_gates: &[GateId],
) -> GateId {
    match constraint {
        PrxmlConstraint::Holds(query) => lineage_gate(doc, query, circuit, node_gates),
        PrxmlConstraint::Violated(query) => {
            let holds = lineage_gate(doc, query, circuit, node_gates);
            circuit.add_not(holds)
        }
        PrxmlConstraint::AtLeast { label, min } => {
            at_least_gate(doc, label, *min, circuit, node_gates)
        }
        PrxmlConstraint::AtMost { label, max } => {
            let exceeded = at_least_gate(doc, label, *max + 1, circuit, node_gates);
            circuit.add_not(exceeded)
        }
        PrxmlConstraint::All(parts) => {
            let gates: Vec<GateId> = parts
                .iter()
                .map(|part| constraint_gate(doc, part, circuit, node_gates))
                .collect();
            circuit.add_and(gates)
        }
    }
}

/// A monotone threshold gate: "at least `threshold` of the label's nodes are
/// present", built by the textbook counting DP (`reach[j][c]` = at least `c`
/// among the first `j` witnesses).
fn at_least_gate(
    doc: &PrXmlDocument,
    label: &str,
    threshold: usize,
    circuit: &mut Circuit,
    node_gates: &[GateId],
) -> GateId {
    let witnesses: Vec<GateId> = (0..doc.len())
        .filter(|&n| doc.label(NodeId(n)) == label)
        .map(|n| node_gates[n])
        .collect();
    if threshold == 0 {
        return circuit.add_const(true);
    }
    if threshold > witnesses.len() {
        return circuit.add_const(false);
    }
    // reach[c] after processing j witnesses = "at least c of them are present".
    let always = circuit.add_const(true);
    let never = circuit.add_const(false);
    let mut reach: Vec<GateId> = vec![never; threshold + 1];
    reach[0] = always;
    for &witness in &witnesses {
        // Update from high counts to low so each witness is used once.
        for count in (1..=threshold).rev() {
            let with_witness = circuit.add_and(vec![reach[count - 1], witness]);
            reach[count] = circuit.add_or(vec![reach[count], with_witness]);
        }
    }
    reach[threshold]
}

/// The probability that the constraint holds on the document.
pub fn constraint_probability(
    doc: &PrXmlDocument,
    constraint: &PrxmlConstraint,
) -> Result<f64, PrxmlConstraintError> {
    let (mut circuit, node_gates) = doc.presence_circuit();
    let gate = constraint_gate(doc, constraint, &mut circuit, &node_gates);
    circuit.set_output(gate);
    evaluate(&circuit, doc)
}

/// The conditioned probability `P(query | constraint)` on the document,
/// computed by Bayes over lineage circuits sharing the presence gates.
pub fn conditioned_query_probability(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
    constraint: &PrxmlConstraint,
) -> Result<f64, PrxmlConstraintError> {
    let (mut circuit, node_gates) = doc.presence_circuit();
    let query_gate = lineage_gate(doc, query, &mut circuit, &node_gates);
    let observed_gate = constraint_gate(doc, constraint, &mut circuit, &node_gates);

    let mut observation = circuit.clone();
    observation.set_output(observed_gate);
    let evidence = evaluate(&observation, doc)?;
    if evidence <= f64::EPSILON {
        return Err(PrxmlConstraintError::ImpossibleObservation);
    }

    let joint_gate = circuit.add_and(vec![query_gate, observed_gate]);
    circuit.set_output(joint_gate);
    let joint = evaluate(&circuit, doc)?;
    Ok(joint / evidence)
}

/// The conditioned probability computed by brute-force enumeration of the
/// document's variable valuations (exponential; used as a cross-check).
pub fn conditioned_query_probability_by_enumeration(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
    constraint: &PrxmlConstraint,
) -> Result<f64, PrxmlConstraintError> {
    let variables: Vec<VarId> = doc.variables().into_iter().collect();
    if variables.len() > 24 {
        return Err(PrxmlConstraintError::Probability(format!(
            "{} variables exceed the enumeration cross-check limit",
            variables.len()
        )));
    }
    let mut evidence = 0.0;
    let mut joint = 0.0;
    for assignment in 0u64..(1u64 << variables.len()) {
        let mut valuation = BTreeMap::new();
        let mut mass = 1.0;
        for (index, &variable) in variables.iter().enumerate() {
            let value = assignment & (1 << index) != 0;
            valuation.insert(variable, value);
            let p = doc.probabilities().get(variable).unwrap_or(0.5);
            mass *= if value { p } else { 1.0 - p };
        }
        if mass == 0.0 {
            continue;
        }
        let present = doc.world_nodes(&valuation);
        if constraint_holds_in_world(doc, constraint, &present) {
            evidence += mass;
            if query_holds_in_world(doc, query, &present) {
                joint += mass;
            }
        }
    }
    if evidence <= f64::EPSILON {
        return Err(PrxmlConstraintError::ImpossibleObservation);
    }
    Ok(joint / evidence)
}

/// Conditions the document on the observed value of a named global event:
/// the cheap conditioning case (the event's probability is set to 1 or 0 and
/// every query probability computed afterwards is conditioned).
pub fn condition_on_event(
    doc: &mut PrXmlDocument,
    event_name: &str,
    value: bool,
) -> Result<VarId, PrxmlConstraintError> {
    let event = doc
        .find_event(event_name)
        .ok_or_else(|| PrxmlConstraintError::UnknownEvent(event_name.to_string()))?;
    doc.probabilities_mut()
        .set(event, if value { 1.0 } else { 0.0 });
    Ok(event)
}

/// Evaluates a circuit over the document's probabilities: the treewidth
/// back-end first, DPLL as a fallback.
fn evaluate(circuit: &Circuit, doc: &PrXmlDocument) -> Result<f64, PrxmlConstraintError> {
    match TreewidthWmc::default().probability(circuit, doc.probabilities()) {
        Ok(p) => Ok(p),
        Err(_) => DpllCounter::default()
            .probability(circuit, doc.probabilities())
            .map_err(|e| PrxmlConstraintError::Probability(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::query_probability;

    fn figure1() -> PrXmlDocument {
        PrXmlDocument::figure1_example()
    }

    #[test]
    fn conditioning_on_a_certain_constraint_changes_nothing() {
        let doc = figure1();
        let query = PrxmlQuery::LabelExists("musician".into());
        let unconditioned = query_probability(&doc, &query).unwrap();
        let conditioned = conditioned_query_probability(
            &doc,
            &query,
            &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Q298423".into())),
        )
        .unwrap();
        assert!((unconditioned - conditioned).abs() < 1e-9);
    }

    #[test]
    fn observing_a_pattern_makes_it_certain() {
        let doc = figure1();
        let query = PrxmlQuery::LabelExists("musician".into());
        let conditioned =
            conditioned_query_probability(&doc, &query, &PrxmlConstraint::Holds(query.clone()))
                .unwrap();
        assert!((conditioned - 1.0).abs() < 1e-9);
        let excluded =
            conditioned_query_probability(&doc, &query, &PrxmlConstraint::Violated(query.clone()))
                .unwrap();
        assert!(excluded.abs() < 1e-9);
    }

    #[test]
    fn bayes_matches_enumeration_on_figure1() {
        let doc = figure1();
        // Condition on the surname being recorded (an eJane-dependent fact)
        // and ask for the place of birth (also eJane-dependent): the two are
        // perfectly correlated, so the conditioned probability is 1.
        let query = PrxmlQuery::LabelExists("Crescent".into());
        let constraint = PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Manning".into()));
        let exact = conditioned_query_probability(&doc, &query, &constraint).unwrap();
        let enumerated =
            conditioned_query_probability_by_enumeration(&doc, &query, &constraint).unwrap();
        assert!((exact - enumerated).abs() < 1e-9);
        assert!((exact - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_unrelated_evidence_matches_enumeration() {
        let doc = figure1();
        // Condition on the occupation being present; ask for the given name
        // being Chelsea (independent parts of the document).
        let query = PrxmlQuery::LabelExists("Chelsea".into());
        let constraint = PrxmlConstraint::Holds(PrxmlQuery::LabelExists("musician".into()));
        let exact = conditioned_query_probability(&doc, &query, &constraint).unwrap();
        let enumerated =
            conditioned_query_probability_by_enumeration(&doc, &query, &constraint).unwrap();
        assert!((exact - enumerated).abs() < 1e-9);
        assert!((exact - 0.6).abs() < 1e-9);
    }

    #[test]
    fn impossible_observations_are_rejected() {
        let doc = figure1();
        let query = PrxmlQuery::LabelExists("musician".into());
        // "Both given names present" is impossible: mux choices are mutually
        // exclusive.
        let constraint = PrxmlConstraint::All(vec![
            PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Chelsea".into())),
            PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Bradley".into())),
        ]);
        assert_eq!(
            conditioned_query_probability(&doc, &query, &constraint),
            Err(PrxmlConstraintError::ImpossibleObservation)
        );
    }

    #[test]
    fn counting_constraints() {
        let doc = figure1();
        // Figure 1 has exactly one node labeled "given name" (always present).
        let at_least_one = PrxmlConstraint::AtLeast {
            label: "given name".into(),
            min: 1,
        };
        let probability = constraint_probability(&doc, &at_least_one).unwrap();
        assert!((probability - 1.0).abs() < 1e-9);
        let at_least_two = PrxmlConstraint::AtLeast {
            label: "given name".into(),
            min: 2,
        };
        assert!(constraint_probability(&doc, &at_least_two).unwrap().abs() < 1e-9);
        let at_most_zero = PrxmlConstraint::AtMost {
            label: "musician".into(),
            max: 0,
        };
        let p_no_musician = constraint_probability(&doc, &at_most_zero).unwrap();
        assert!((p_no_musician - 0.6).abs() < 1e-9);
    }

    #[test]
    fn counting_constraints_on_synthetic_documents() {
        // A root with three independent "claim" children, each present with
        // probability 0.5: P[at least 2 claims] = 0.5 (3·0.125 + 0.125).
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("root");
        doc.set_root(root);
        for _ in 0..3 {
            let claim = doc.add_node("claim");
            doc.add_ind_child(root, claim, 0.5);
        }
        let constraint = PrxmlConstraint::AtLeast {
            label: "claim".into(),
            min: 2,
        };
        let probability = constraint_probability(&doc, &constraint).unwrap();
        assert!((probability - 0.5).abs() < 1e-9);
        // Conditioning "some claim exists" on "at least 2 claims" is certain.
        let conditioned = conditioned_query_probability(
            &doc,
            &PrxmlQuery::LabelExists("claim".into()),
            &constraint,
        )
        .unwrap();
        assert!((conditioned - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_conditioning_is_a_weight_update() {
        let mut doc = figure1();
        let query = PrxmlQuery::LabelExists("Manning".into());
        let before = query_probability(&doc, &query).unwrap();
        assert!((before - 0.9).abs() < 1e-9);
        condition_on_event(&mut doc, "eJane", true).unwrap();
        let after = query_probability(&doc, &query).unwrap();
        assert!((after - 1.0).abs() < 1e-9);
        assert!(matches!(
            condition_on_event(&mut doc, "no_such_event", true),
            Err(PrxmlConstraintError::UnknownEvent(_))
        ));
    }
}
