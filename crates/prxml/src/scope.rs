//! Event scopes (Section 2.1 of the paper, after reference \[7\]).
//!
//! "The scope of an event is the set of nodes where the value of this event
//! must be 'remembered' when trying to evaluate a query on the tree; in
//! Figure 1, the scope of eJane are the nodes 'surname' and 'place of birth'
//! and their descendants. The scope of a node n is the set of events having
//! n in their scope. [...] for PrXML documents where the scope of all nodes
//! have size bounded by a constant, the evaluation of a fixed MSO query can
//! be performed in PTIME."
//!
//! This module computes event scopes and node scope sizes; the benchmark E6
//! uses the maximum node scope size as the structural parameter and shows
//! that the lineage-circuit width (hence query evaluation cost) tracks it.

use crate::document::{EdgeCondition, NodeId, PrXmlDocument};
use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::VarId;

/// The scope analysis of a document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeAnalysis {
    /// For each global event, the set of nodes in its scope.
    pub event_scopes: BTreeMap<VarId, BTreeSet<NodeId>>,
    /// For each node, the set of global events having it in their scope.
    pub node_scopes: Vec<BTreeSet<VarId>>,
}

impl ScopeAnalysis {
    /// The largest node scope size — the boundedness parameter of \[7\].
    pub fn max_node_scope(&self) -> usize {
        self.node_scopes.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// The number of global events that appear on more than one edge
    /// (the ones that actually create cross-document correlation).
    pub fn shared_event_count(&self) -> usize {
        self.event_scopes.values().filter(|s| s.len() > 1).count()
    }
}

/// Computes the scope analysis of a document.
///
/// The scope of a global event is the union of the subtrees rooted at the
/// children of edges whose condition mentions the event (matching the
/// paper's description of Figure 1). Hidden `ind`/`mux` variables are local
/// by construction and are not part of the analysis.
pub fn analyze_scopes(doc: &PrXmlDocument) -> ScopeAnalysis {
    let mut event_scopes: BTreeMap<VarId, BTreeSet<NodeId>> = BTreeMap::new();
    for event in doc.global_events() {
        event_scopes.insert(*event, BTreeSet::new());
    }
    // For each edge mentioning a global event, add the child's subtree.
    for parent_index in 0..doc.len() {
        for (child, condition) in &doc.node(NodeId(parent_index)).children {
            let EdgeCondition::Literals(literals) = condition else {
                continue;
            };
            for (variable, _) in literals {
                if !doc.global_events().contains(variable) {
                    continue;
                }
                let subtree = collect_subtree(doc, *child);
                event_scopes.entry(*variable).or_default().extend(subtree);
            }
        }
    }
    let mut node_scopes = vec![BTreeSet::new(); doc.len()];
    for (event, nodes) in &event_scopes {
        for node in nodes {
            node_scopes[node.0].insert(*event);
        }
    }
    ScopeAnalysis {
        event_scopes,
        node_scopes,
    }
}

fn collect_subtree(doc: &PrXmlDocument, root: NodeId) -> BTreeSet<NodeId> {
    let mut nodes = BTreeSet::new();
    let mut stack = vec![root];
    nodes.insert(root);
    while let Some(n) = stack.pop() {
        for (child, _) in &doc.node(n).children {
            if nodes.insert(*child) {
                stack.push(*child);
            }
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_scope_of_jane() {
        let doc = PrXmlDocument::figure1_example();
        let analysis = analyze_scopes(&doc);
        let jane = doc.find_event("eJane").unwrap();
        let scope = &analysis.event_scopes[&jane];
        let labels: BTreeSet<&str> = scope.iter().map(|&n| doc.label(n)).collect();
        // "surname" and "place of birth" and their descendants.
        assert_eq!(
            labels,
            BTreeSet::from(["surname", "place of birth", "Manning", "Crescent"])
        );
    }

    #[test]
    fn figure1_node_scopes_are_bounded_by_one() {
        let doc = PrXmlDocument::figure1_example();
        let analysis = analyze_scopes(&doc);
        assert_eq!(analysis.max_node_scope(), 1);
        assert_eq!(analysis.shared_event_count(), 1);
    }

    #[test]
    fn nested_events_increase_node_scope() {
        // root → (e1) a → (e2) b → (e3) c: node c is in the scope of all
        // three events.
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("root");
        doc.set_root(root);
        let e1 = doc.declare_event("e1", 0.5);
        let e2 = doc.declare_event("e2", 0.5);
        let e3 = doc.declare_event("e3", 0.5);
        let a = doc.add_node("a");
        let b = doc.add_node("b");
        let c = doc.add_node("c");
        doc.add_cie_child(root, a, vec![(e1, true)]);
        doc.add_cie_child(a, b, vec![(e2, true)]);
        doc.add_cie_child(b, c, vec![(e3, true)]);
        let analysis = analyze_scopes(&doc);
        assert_eq!(analysis.max_node_scope(), 3);
        assert_eq!(analysis.node_scopes[c.0].len(), 3);
        assert_eq!(analysis.node_scopes[a.0].len(), 1);
    }

    #[test]
    fn documents_without_events_have_empty_scopes() {
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("root");
        doc.set_root(root);
        let a = doc.add_node("a");
        doc.add_ind_child(root, a, 0.5);
        let analysis = analyze_scopes(&doc);
        assert_eq!(analysis.max_node_scope(), 0);
        assert!(analysis.event_scopes.is_empty());
    }
}
