//! Tree-pattern queries on PrXML documents and their lineage circuits.
//!
//! The usual tree query languages the paper mentions (tree-pattern queries,
//! MSO without joins) evaluate to Boolean answers per possible world; here we
//! provide the monotone tree patterns used throughout the examples and
//! benchmarks, compile them to lineage circuits over the document's
//! independent variables, and compute their exact probabilities with the
//! `stuc-circuit` back-ends.

use crate::document::{NodeId, PrXmlDocument};
use std::collections::BTreeMap;
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_circuit::enumeration::{probability_by_enumeration, EnumerationError};
use stuc_circuit::wmc::{TreewidthWmc, WmcError};

/// A monotone tree-pattern query on a PrXML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrxmlQuery {
    /// "Some present node has this label."
    LabelExists(String),
    /// "Some present node labeled `ancestor` has a present descendant
    /// labeled `descendant`."
    AncestorDescendant {
        /// Label of the ancestor node.
        ancestor: String,
        /// Label of the descendant node.
        descendant: String,
    },
    /// "Some present node labeled `parent` has a present child labeled
    /// `child`."
    ParentChild {
        /// Label of the parent node.
        parent: String,
        /// Label of the child node.
        child: String,
    },
    /// Conjunction of two tree patterns.
    And(Box<PrxmlQuery>, Box<PrxmlQuery>),
}

stuc_errors::stuc_error! {
    /// Errors raised by PrXML query evaluation.
    #[derive(Clone, PartialEq)]
    pub enum PrxmlQueryError {
        /// The exact back-end refused the instance (width too large).
        Wmc(WmcError),
        /// The enumeration back-end refused the instance (too many variables).
        Enumeration(EnumerationError),
    }
    display {
        Self::Wmc(e) => "{e}",
        Self::Enumeration(e) => "{e}",
    }
    from {
        WmcError => Wmc,
        EnumerationError => Enumeration,
    }
}

/// True if the query holds on the given set of present nodes.
pub fn query_holds_in_world(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
    present: &std::collections::BTreeSet<NodeId>,
) -> bool {
    match query {
        PrxmlQuery::LabelExists(label) => present.iter().any(|&n| doc.label(n) == label),
        PrxmlQuery::AncestorDescendant {
            ancestor,
            descendant,
        } => {
            let parents = doc.parents();
            present.iter().any(|&n| {
                if doc.label(n) != descendant {
                    return false;
                }
                let mut current = parents[n.0];
                while let Some(p) = current {
                    if present.contains(&p) && doc.label(p) == ancestor {
                        return true;
                    }
                    current = parents[p.0];
                }
                false
            })
        }
        PrxmlQuery::ParentChild { parent, child } => {
            let parents = doc.parents();
            present.iter().any(|&n| {
                doc.label(n) == child
                    && parents[n.0]
                        .map(|p| present.contains(&p) && doc.label(p) == parent)
                        .unwrap_or(false)
            })
        }
        PrxmlQuery::And(a, b) => {
            query_holds_in_world(doc, a, present) && query_holds_in_world(doc, b, present)
        }
    }
}

/// Builds the lineage circuit of a query: a circuit over the document's
/// variables that is true exactly in the worlds where the query holds.
pub fn query_lineage(doc: &PrXmlDocument, query: &PrxmlQuery) -> Circuit {
    let (mut circuit, node_gates) = doc.presence_circuit();
    let output = lineage_gate(doc, query, &mut circuit, &node_gates);
    circuit.set_output(output);
    circuit
}

pub(crate) fn lineage_gate(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
    circuit: &mut Circuit,
    node_gates: &[GateId],
) -> GateId {
    match query {
        PrxmlQuery::LabelExists(label) => {
            let witnesses: Vec<GateId> = (0..doc.len())
                .filter(|&n| doc.label(NodeId(n)) == label)
                .map(|n| node_gates[n])
                .collect();
            circuit.add_or(witnesses)
        }
        PrxmlQuery::AncestorDescendant {
            ancestor,
            descendant,
        } => {
            // A present descendant implies all its ancestors are present, so
            // the witness condition is simply the descendant's presence gate
            // for each (ancestor, descendant) pair related in the tree.
            let parents = doc.parents();
            let mut witnesses = Vec::new();
            for n in 0..doc.len() {
                if doc.label(NodeId(n)) != descendant.as_str() {
                    continue;
                }
                let mut current = parents[n];
                while let Some(p) = current {
                    if doc.label(p) == ancestor.as_str() {
                        witnesses.push(node_gates[n]);
                        break;
                    }
                    current = parents[p.0];
                }
            }
            circuit.add_or(witnesses)
        }
        PrxmlQuery::ParentChild { parent, child } => {
            let parents = doc.parents();
            let witnesses: Vec<GateId> = (0..doc.len())
                .filter(|&n| {
                    doc.label(NodeId(n)) == child.as_str()
                        && parents[n]
                            .map(|p| doc.label(p) == parent.as_str())
                            .unwrap_or(false)
                })
                .map(|n| node_gates[n])
                .collect();
            circuit.add_or(witnesses)
        }
        PrxmlQuery::And(a, b) => {
            let ga = lineage_gate(doc, a, circuit, node_gates);
            let gb = lineage_gate(doc, b, circuit, node_gates);
            circuit.add_and(vec![ga, gb])
        }
    }
}

/// Exact query probability through the treewidth-based back-end (the
/// structurally tractable path).
pub fn query_probability(doc: &PrXmlDocument, query: &PrxmlQuery) -> Result<f64, PrxmlQueryError> {
    let lineage = query_lineage(doc, query);
    TreewidthWmc::default()
        .probability(&lineage, doc.probabilities())
        .map_err(PrxmlQueryError::Wmc)
}

/// Exact query probability by enumerating all variable valuations (the
/// exponential baseline, used as ground truth in tests).
pub fn query_probability_by_enumeration(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
) -> Result<f64, PrxmlQueryError> {
    let vars: Vec<VarId> = doc.variables().into_iter().collect();
    if vars.len() > stuc_circuit::enumeration::ENUMERATION_LIMIT {
        return Err(PrxmlQueryError::Enumeration(
            EnumerationError::TooManyVariables(vars.len()),
        ));
    }
    let mut total = 0.0;
    for bits in 0..(1u64 << vars.len()) {
        let mut probability = 1.0;
        let valuation: BTreeMap<VarId, bool> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let value = bits & (1 << i) != 0;
                probability *= doc.probabilities().weight(v, value).unwrap_or(0.0);
                (v, value)
            })
            .collect();
        if probability == 0.0 {
            continue;
        }
        let present = doc.world_nodes(&valuation);
        if query_holds_in_world(doc, query, &present) {
            total += probability;
        }
    }
    Ok(total)
}

/// Exact query probability by evaluating the lineage with naive enumeration
/// over the circuit's variables (cross-check of the lineage construction).
pub fn query_probability_by_lineage_enumeration(
    doc: &PrXmlDocument,
    query: &PrxmlQuery,
) -> Result<f64, PrxmlQueryError> {
    let lineage = query_lineage(doc, query);
    probability_by_enumeration(&lineage, doc.probabilities()).map_err(PrxmlQueryError::Enumeration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn figure1_occupation_probability() {
        let doc = PrXmlDocument::figure1_example();
        let q = PrxmlQuery::LabelExists("musician".into());
        assert!(close(query_probability(&doc, &q).unwrap(), 0.4));
        assert!(close(
            query_probability_by_enumeration(&doc, &q).unwrap(),
            0.4
        ));
    }

    #[test]
    fn figure1_given_name_probabilities() {
        let doc = PrXmlDocument::figure1_example();
        let chelsea = PrxmlQuery::LabelExists("Chelsea".into());
        let bradley = PrxmlQuery::LabelExists("Bradley".into());
        assert!(close(query_probability(&doc, &chelsea).unwrap(), 0.6));
        assert!(close(query_probability(&doc, &bradley).unwrap(), 0.4));
    }

    #[test]
    fn figure1_jane_correlation() {
        let doc = PrXmlDocument::figure1_example();
        // Both Jane facts present simultaneously with probability 0.9 —
        // the whole point of the cie correlation.
        let both = PrxmlQuery::And(
            Box::new(PrxmlQuery::LabelExists("place of birth".into())),
            Box::new(PrxmlQuery::LabelExists("surname".into())),
        );
        assert!(close(query_probability(&doc, &both).unwrap(), 0.9));
    }

    #[test]
    fn figure1_ancestor_descendant_pattern() {
        let doc = PrXmlDocument::figure1_example();
        let q = PrxmlQuery::AncestorDescendant {
            ancestor: "occupation".into(),
            descendant: "musician".into(),
        };
        assert!(close(query_probability(&doc, &q).unwrap(), 0.4));
        let q = PrxmlQuery::AncestorDescendant {
            ancestor: "Q298423".into(),
            descendant: "Crescent".into(),
        };
        assert!(close(query_probability(&doc, &q).unwrap(), 0.9));
    }

    #[test]
    fn parent_child_pattern() {
        let doc = PrXmlDocument::figure1_example();
        let q = PrxmlQuery::ParentChild {
            parent: "surname".into(),
            child: "Manning".into(),
        };
        assert!(close(query_probability(&doc, &q).unwrap(), 0.9));
        // "Q298423" is not the direct parent of "Manning".
        let q = PrxmlQuery::ParentChild {
            parent: "Q298423".into(),
            child: "Manning".into(),
        };
        assert!(close(query_probability(&doc, &q).unwrap(), 0.0));
    }

    #[test]
    fn all_backends_agree_on_figure1() {
        let doc = PrXmlDocument::figure1_example();
        let queries = [
            PrxmlQuery::LabelExists("musician".into()),
            PrxmlQuery::LabelExists("Chelsea".into()),
            PrxmlQuery::And(
                Box::new(PrxmlQuery::LabelExists("musician".into())),
                Box::new(PrxmlQuery::LabelExists("Chelsea".into())),
            ),
            PrxmlQuery::AncestorDescendant {
                ancestor: "Q298423".into(),
                descendant: "Manning".into(),
            },
        ];
        for q in queries {
            let a = query_probability(&doc, &q).unwrap();
            let b = query_probability_by_enumeration(&doc, &q).unwrap();
            let c = query_probability_by_lineage_enumeration(&doc, &q).unwrap();
            assert!(close(a, b), "{q:?}: wmc {a} vs worlds {b}");
            assert!(close(a, c), "{q:?}: wmc {a} vs lineage enumeration {c}");
        }
    }

    #[test]
    fn independent_patterns_multiply() {
        let doc = PrXmlDocument::figure1_example();
        let q = PrxmlQuery::And(
            Box::new(PrxmlQuery::LabelExists("musician".into())),
            Box::new(PrxmlQuery::LabelExists("Chelsea".into())),
        );
        assert!(close(query_probability(&doc, &q).unwrap(), 0.4 * 0.6));
    }

    #[test]
    fn missing_label_has_probability_zero() {
        let doc = PrXmlDocument::figure1_example();
        let q = PrxmlQuery::LabelExists("nonexistent".into());
        assert!(close(query_probability(&doc, &q).unwrap(), 0.0));
    }
}
