//! Synthetic Wikidata-style PrXML document generators.
//!
//! The paper's Figure 1 is a hand-written excerpt of a Wikidata entry; the
//! event-scope experiment (E6) needs documents of that shape at scale. The
//! generator produces documents with:
//!
//! * one entity subtree per entity, each with a number of property nodes;
//! * `ind` uncertainty on property values (extraction noise);
//! * `mux` choices among alternative values;
//! * contributor events (`cie`) correlating the facts added by the same
//!   contributor — the "user Jane" pattern — with a configurable *nesting
//!   depth* which directly controls the maximum node scope.

use crate::document::PrXmlDocument;

/// Parameters of the synthetic Wikidata-style generator.
#[derive(Debug, Clone)]
pub struct WikidataStyleConfig {
    /// Number of entity subtrees.
    pub entities: usize,
    /// Number of property nodes per entity.
    pub properties_per_entity: usize,
    /// Number of contributors; each property is attributed to one of them
    /// round-robin and conditioned on that contributor's trust event.
    pub contributors: usize,
    /// Nesting depth of contributor-conditioned sections inside each entity:
    /// depth `d` wraps properties in `d` nested `cie`-conditioned section
    /// nodes with *distinct* events, so the maximum node scope is `d`
    /// (plus one for the property's own contributor event).
    pub scope_depth: usize,
    /// Probability that an extracted property value is correct (`ind` edges).
    pub extraction_probability: f64,
    /// Probability that a contributor is trustworthy.
    pub trust_probability: f64,
}

impl Default for WikidataStyleConfig {
    fn default() -> Self {
        WikidataStyleConfig {
            entities: 10,
            properties_per_entity: 5,
            contributors: 3,
            scope_depth: 1,
            extraction_probability: 0.8,
            trust_probability: 0.9,
        }
    }
}

/// Generates a synthetic Wikidata-style PrXML document.
pub fn wikidata_style_document(config: &WikidataStyleConfig) -> PrXmlDocument {
    let mut doc = PrXmlDocument::new();
    let root = doc.add_node("wikidata");
    doc.set_root(root);

    let contributor_events: Vec<_> = (0..config.contributors.max(1))
        .map(|i| doc.declare_event(&format!("contributor{i}"), config.trust_probability))
        .collect();

    let mut property_counter = 0usize;
    for e in 0..config.entities {
        let entity = doc.add_node(&format!("entity{e}"));
        doc.add_child(root, entity);

        // Nested contributor-conditioned sections control the node scope.
        let mut attach_point = entity;
        for d in 0..config.scope_depth {
            let section = doc.add_node(&format!("section_e{e}_d{d}"));
            let event = doc.declare_event(
                &format!("section_event_e{e}_d{d}"),
                config.trust_probability,
            );
            doc.add_cie_child(attach_point, section, vec![(event, true)]);
            attach_point = section;
        }

        for p in 0..config.properties_per_entity {
            let contributor = contributor_events[property_counter % contributor_events.len()];
            property_counter += 1;
            let property = doc.add_node(&format!("property{p}"));
            doc.add_cie_child(attach_point, property, vec![(contributor, true)]);
            // The value itself is uncertain extraction output.
            let value = doc.add_node(&format!("value_e{e}_p{p}"));
            doc.add_ind_child(property, value, config.extraction_probability);
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{query_probability, PrxmlQuery};
    use crate::scope::analyze_scopes;

    #[test]
    fn generated_document_has_expected_size() {
        let config = WikidataStyleConfig {
            entities: 4,
            properties_per_entity: 3,
            ..Default::default()
        };
        let doc = wikidata_style_document(&config);
        // root + 4 entities + 4 sections (depth 1) + 4·3 properties + 4·3 values.
        assert_eq!(doc.len(), 1 + 4 + 4 + 12 + 12);
    }

    #[test]
    fn scope_depth_controls_node_scope() {
        for depth in [0usize, 1, 2, 3] {
            let config = WikidataStyleConfig {
                scope_depth: depth,
                entities: 3,
                ..Default::default()
            };
            let doc = wikidata_style_document(&config);
            let analysis = analyze_scopes(&doc);
            assert_eq!(
                analysis.max_node_scope(),
                depth + 1,
                "depth {depth} should give node scope {}",
                depth + 1
            );
        }
    }

    #[test]
    fn query_probability_on_generated_document() {
        let config = WikidataStyleConfig {
            entities: 2,
            properties_per_entity: 2,
            contributors: 2,
            scope_depth: 1,
            extraction_probability: 0.5,
            trust_probability: 0.8,
        };
        let doc = wikidata_style_document(&config);
        // A specific value is present iff its section event, contributor
        // event and extraction all hold: 0.8 · 0.8 · 0.5 = 0.32.
        let q = PrxmlQuery::LabelExists("value_e0_p0".into());
        let p = query_probability(&doc, &q).unwrap();
        assert!((p - 0.8 * 0.8 * 0.5).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn generation_is_deterministic() {
        let config = WikidataStyleConfig::default();
        assert_eq!(
            wikidata_style_document(&config),
            wikidata_style_document(&config)
        );
    }
}
