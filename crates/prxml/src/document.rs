//! The PrXML document model.
//!
//! A document is a tree of labeled nodes. Every parent→child edge carries a
//! *condition* describing when the child (and hence its whole subtree) is
//! present:
//!
//! * certain edges — always present;
//! * `ind` edges — present independently with a given probability (a fresh
//!   hidden Boolean variable);
//! * `mux` groups — at most one of the children is present, with given
//!   probabilities (encoded over fresh independent variables by the usual
//!   chain construction);
//! * `cie` edges — present exactly when a conjunction of (possibly negated)
//!   *named global events* holds; events are shared across the document and
//!   carry independent probabilities, which is how the correlation "either
//!   Jane is trustworthy and both her facts are present, or neither is"
//!   from Figure 1 is expressed.

use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_circuit::weights::Weights;

/// A handle to a node of a [`PrXmlDocument`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// The condition attached to a parent→child edge.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeCondition {
    /// The child is always present (when its parent is).
    Certain,
    /// The child is present when the conjunction of these literals holds;
    /// each literal is `(variable, polarity)`.
    Literals(Vec<(VarId, bool)>),
}

/// One node of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct PrXmlNode {
    /// The element label (or text content).
    pub label: String,
    /// Children in document order, with their edge conditions.
    pub children: Vec<(NodeId, EdgeCondition)>,
}

/// A probabilistic XML document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrXmlDocument {
    nodes: Vec<PrXmlNode>,
    root: Option<NodeId>,
    /// Probabilities of every variable (hidden ind/mux variables and named
    /// global events alike).
    probabilities: Weights,
    /// Names of the global events, for display and lookup.
    event_names: BTreeMap<String, VarId>,
    /// Which variables are *named global events* (as opposed to hidden
    /// ind/mux variables); used by the scope analysis.
    global_events: BTreeSet<VarId>,
    next_variable: usize,
}

impl PrXmlDocument {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given label (initially parentless and childless).
    pub fn add_node(&mut self, label: &str) -> NodeId {
        self.nodes.push(PrXmlNode {
            label: label.to_string(),
            children: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Designates the root.
    pub fn set_root(&mut self, node: NodeId) {
        assert!(node.0 < self.nodes.len(), "root out of range");
        self.root = Some(node);
    }

    /// The root node.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, n: NodeId) -> &PrXmlNode {
        &self.nodes[n.0]
    }

    /// The label of a node.
    pub fn label(&self, n: NodeId) -> &str {
        &self.nodes[n.0].label
    }

    /// The variable probabilities (hidden variables and global events).
    pub fn probabilities(&self) -> &Weights {
        &self.probabilities
    }

    /// Mutable access to the probabilities (used by conditioning).
    pub fn probabilities_mut(&mut self) -> &mut Weights {
        &mut self.probabilities
    }

    /// All variables used by the document.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        for node in &self.nodes {
            for (_, condition) in &node.children {
                if let EdgeCondition::Literals(lits) = condition {
                    vars.extend(lits.iter().map(|(v, _)| *v));
                }
            }
        }
        vars
    }

    /// The set of variables that are named global events.
    pub fn global_events(&self) -> &BTreeSet<VarId> {
        &self.global_events
    }

    /// Declares (or retrieves) a named global event with a probability.
    pub fn declare_event(&mut self, name: &str, probability: f64) -> VarId {
        if let Some(&v) = self.event_names.get(name) {
            self.probabilities.set(v, probability);
            return v;
        }
        let v = self.fresh_variable(probability);
        self.event_names.insert(name.to_string(), v);
        self.global_events.insert(v);
        v
    }

    /// Looks up a declared event.
    pub fn find_event(&self, name: &str) -> Option<VarId> {
        self.event_names.get(name).copied()
    }

    fn fresh_variable(&mut self, probability: f64) -> VarId {
        let v = VarId(self.next_variable);
        self.next_variable += 1;
        self.probabilities.set(v, probability);
        v
    }

    /// Attaches `child` under `parent` with a certain edge.
    pub fn add_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.0]
            .children
            .push((child, EdgeCondition::Certain));
    }

    /// Attaches `child` under `parent` through an `ind` edge: present
    /// independently with the given probability. Returns the hidden variable.
    pub fn add_ind_child(&mut self, parent: NodeId, child: NodeId, probability: f64) -> VarId {
        let v = self.fresh_variable(probability);
        self.nodes[parent.0]
            .children
            .push((child, EdgeCondition::Literals(vec![(v, true)])));
        v
    }

    /// Attaches a `mux` group under `parent`: at most one of `choices` is
    /// present, child `i` with probability `choices[i].1`. Probabilities must
    /// sum to at most 1; any remainder is the probability that none is
    /// present. Returns the hidden choice variables (chain encoding).
    pub fn add_mux_children(&mut self, parent: NodeId, choices: &[(NodeId, f64)]) -> Vec<VarId> {
        let total: f64 = choices.iter().map(|(_, p)| *p).sum();
        assert!(total <= 1.0 + 1e-9, "mux probabilities sum to {total} > 1");
        let mut remaining = 1.0;
        let mut previous: Vec<VarId> = Vec::new();
        let mut variables = Vec::new();
        for &(child, p) in choices {
            // P(v_i) = p_i / remaining mass; child i present iff v_i and no
            // earlier v_j. This makes the choices mutually exclusive with the
            // requested marginals while all hidden variables stay independent.
            let conditional = if remaining <= 1e-12 {
                0.0
            } else {
                (p / remaining).min(1.0)
            };
            let v = self.fresh_variable(conditional);
            let mut literals: Vec<(VarId, bool)> = previous.iter().map(|&u| (u, false)).collect();
            literals.push((v, true));
            self.nodes[parent.0]
                .children
                .push((child, EdgeCondition::Literals(literals)));
            previous.push(v);
            variables.push(v);
            remaining -= p;
        }
        variables
    }

    /// Attaches `child` under `parent` through a `cie` edge: present exactly
    /// when the conjunction of the event literals holds.
    pub fn add_cie_child(&mut self, parent: NodeId, child: NodeId, literals: Vec<(VarId, bool)>) {
        self.nodes[parent.0]
            .children
            .push((child, EdgeCondition::Literals(literals)));
    }

    /// Detaches `node` from its parent: the parent→node edge is removed, so
    /// the node and its whole subtree are absent from every possible world.
    /// Node identifiers stay stable (the node record itself is kept).
    /// Returns the removed edge condition, or `None` when the node is the
    /// root or not attached anywhere.
    pub fn detach_node(&mut self, node: NodeId) -> Option<EdgeCondition> {
        if Some(node) == self.root {
            return None;
        }
        for parent in 0..self.nodes.len() {
            if let Some(position) = self.nodes[parent]
                .children
                .iter()
                .position(|(child, _)| *child == node)
            {
                let (_, condition) = self.nodes[parent].children.remove(position);
                return Some(condition);
            }
        }
        None
    }

    /// The private `ind` variable of the edge above `node`, if the node
    /// hangs off a plain independent edge: a single positive literal over a
    /// hidden variable used by no other edge. Re-weighting such a variable
    /// re-weights exactly this node's presence, which is what
    /// `SetProbability` means for a PrXML "fact".
    pub fn ind_edge_variable(&self, node: NodeId) -> Option<VarId> {
        let mut found: Option<VarId> = None;
        for parent in &self.nodes {
            for (child, condition) in &parent.children {
                if *child != node {
                    continue;
                }
                match condition {
                    EdgeCondition::Literals(literals)
                        if literals.len() == 1
                            && literals[0].1
                            && !self.global_events.contains(&literals[0].0) =>
                    {
                        found = Some(literals[0].0);
                    }
                    _ => return None,
                }
            }
        }
        let v = found?;
        // The variable must be private to this one edge (mux chain variables
        // appear on several edges and must not be re-weighted in isolation).
        let occurrences: usize = self
            .nodes
            .iter()
            .flat_map(|n| &n.children)
            .filter(|(_, condition)| match condition {
                EdgeCondition::Literals(literals) => literals.iter().any(|(u, _)| *u == v),
                EdgeCondition::Certain => false,
            })
            .count();
        (occurrences == 1).then_some(v)
    }

    /// The presence circuit: one gate per node, true exactly when the node is
    /// present in the possible world defined by the variable valuation.
    ///
    /// Gates are shared along paths (a node's gate is the AND of its parent's
    /// gate and its edge literals), so the circuit is as tree-shaped as the
    /// document — this is what keeps its treewidth small when event scopes
    /// are bounded.
    pub fn presence_circuit(&self) -> (Circuit, Vec<GateId>) {
        let mut circuit = Circuit::new();
        let true_gate = circuit.add_const(true);
        let false_gate = circuit.add_const(false);
        let mut input_gates: BTreeMap<VarId, GateId> = BTreeMap::new();
        let mut node_gates: Vec<GateId> = vec![false_gate; self.nodes.len()];
        let Some(root) = self.root else {
            return (circuit, node_gates);
        };
        node_gates[root.0] = true_gate;
        // Traverse top-down from the root (children were added after their
        // parents is not guaranteed, so use an explicit traversal).
        let mut stack = vec![root];
        let mut visited = vec![false; self.nodes.len()];
        visited[root.0] = true;
        while let Some(parent) = stack.pop() {
            let parent_gate = node_gates[parent.0];
            for (child, condition) in self.nodes[parent.0].children.clone() {
                let gate = match condition {
                    EdgeCondition::Certain => parent_gate,
                    EdgeCondition::Literals(literals) => {
                        let mut inputs = vec![parent_gate];
                        for (v, polarity) in literals {
                            let input =
                                *input_gates.entry(v).or_insert_with(|| circuit.add_input(v));
                            inputs.push(if polarity {
                                input
                            } else {
                                circuit.add_not(input)
                            });
                        }
                        circuit.add_and(inputs)
                    }
                };
                node_gates[child.0] = gate;
                if !visited[child.0] {
                    visited[child.0] = true;
                    stack.push(child);
                }
            }
        }
        (circuit, node_gates)
    }

    /// The set of nodes present in the possible world defined by a valuation
    /// of the variables (missing variables default to false).
    pub fn world_nodes(&self, valuation: &BTreeMap<VarId, bool>) -> BTreeSet<NodeId> {
        let mut present = BTreeSet::new();
        let Some(root) = self.root else {
            return present;
        };
        let mut stack = vec![root];
        present.insert(root);
        while let Some(parent) = stack.pop() {
            for (child, condition) in &self.nodes[parent.0].children {
                let holds = match condition {
                    EdgeCondition::Certain => true,
                    EdgeCondition::Literals(literals) => literals.iter().all(|(v, polarity)| {
                        valuation.get(v).copied().unwrap_or(false) == *polarity
                    }),
                };
                if holds && present.insert(*child) {
                    stack.push(*child);
                }
            }
        }
        present
    }

    /// The parent of each node (`None` for the root and unattached nodes).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for (child, _) in &node.children {
                parents[child.0] = Some(NodeId(i));
            }
        }
        parents
    }

    /// The PrXML document of the paper's Figure 1: the Wikidata entry about
    /// Chelsea Manning, with an `ind` occupation, a `mux` given name, and two
    /// facts correlated by the contributor event `eJane` (probability 0.9).
    pub fn figure1_example() -> PrXmlDocument {
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("Q298423");
        doc.set_root(root);

        // ind (0.4) → occupation → musician
        let occupation = doc.add_node("occupation");
        let musician = doc.add_node("musician");
        doc.add_child(occupation, musician);
        doc.add_ind_child(root, occupation, 0.4);

        // eJane (0.9) conditions both "place of birth" and "surname".
        let jane = doc.declare_event("eJane", 0.9);
        let place_of_birth = doc.add_node("place of birth");
        let crescent = doc.add_node("Crescent");
        doc.add_child(place_of_birth, crescent);
        doc.add_cie_child(root, place_of_birth, vec![(jane, true)]);

        let surname = doc.add_node("surname");
        let manning = doc.add_node("Manning");
        doc.add_child(surname, manning);
        doc.add_cie_child(root, surname, vec![(jane, true)]);

        // given name → mux { Bradley 0.4, Chelsea 0.6 }
        let given_name = doc.add_node("given name");
        doc.add_child(root, given_name);
        let bradley = doc.add_node("Bradley");
        let chelsea = doc.add_node("Chelsea");
        doc.add_mux_children(given_name, &[(bradley, 0.4), (chelsea, 0.6)]);

        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_structure() {
        let doc = PrXmlDocument::figure1_example();
        assert_eq!(doc.len(), 10);
        assert!(doc.root().is_some());
        assert!(doc.find_event("eJane").is_some());
        // Variables: 1 ind + 1 event + 2 mux.
        assert_eq!(doc.variables().len(), 4);
    }

    #[test]
    fn figure1_worlds_respect_jane_correlation() {
        let doc = PrXmlDocument::figure1_example();
        let jane = doc.find_event("eJane").unwrap();
        // Jane trusted: both her facts are present.
        let world = doc.world_nodes(&BTreeMap::from([(jane, true)]));
        let labels: Vec<&str> = world.iter().map(|&n| doc.label(n)).collect();
        assert!(labels.contains(&"place of birth"));
        assert!(labels.contains(&"surname"));
        // Jane untrusted: neither is.
        let world = doc.world_nodes(&BTreeMap::from([(jane, false)]));
        let labels: Vec<&str> = world.iter().map(|&n| doc.label(n)).collect();
        assert!(!labels.contains(&"place of birth"));
        assert!(!labels.contains(&"surname"));
    }

    #[test]
    fn mux_children_are_mutually_exclusive() {
        let doc = PrXmlDocument::figure1_example();
        // In every valuation of the two mux variables, at most one of
        // Bradley/Chelsea is present.
        let vars: Vec<VarId> = doc.variables().into_iter().collect();
        for bits in 0..(1u32 << vars.len()) {
            let valuation: BTreeMap<VarId, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits & (1 << i) != 0))
                .collect();
            let world = doc.world_nodes(&valuation);
            let bradley = world.iter().any(|&n| doc.label(n) == "Bradley");
            let chelsea = world.iter().any(|&n| doc.label(n) == "Chelsea");
            assert!(!(bradley && chelsea), "mux children both present");
        }
    }

    #[test]
    fn mux_marginals_match_requested_probabilities() {
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("root");
        doc.set_root(root);
        let a = doc.add_node("a");
        let b = doc.add_node("b");
        let c = doc.add_node("c");
        let vars = doc.add_mux_children(root, &[(a, 0.2), (b, 0.5), (c, 0.3)]);
        // Enumerate the hidden variables and accumulate marginals.
        let mut marginals = [0.0f64; 3];
        for bits in 0..(1u32 << vars.len()) {
            let valuation: BTreeMap<VarId, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits & (1 << i) != 0))
                .collect();
            let mut probability = 1.0;
            for (&v, &value) in vars.iter().zip(valuation.values()) {
                probability *= doc.probabilities().weight(v, value).unwrap();
            }
            let world = doc.world_nodes(&valuation);
            for (i, node) in [a, b, c].iter().enumerate() {
                if world.contains(node) {
                    marginals[i] += probability;
                }
            }
        }
        assert!((marginals[0] - 0.2).abs() < 1e-9);
        assert!((marginals[1] - 0.5).abs() < 1e-9);
        assert!((marginals[2] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn presence_circuit_matches_world_semantics() {
        let doc = PrXmlDocument::figure1_example();
        let (circuit, gates) = doc.presence_circuit();
        let vars: Vec<VarId> = doc.variables().into_iter().collect();
        for bits in 0..(1u32 << vars.len()) {
            let valuation: BTreeMap<VarId, bool> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits & (1 << i) != 0))
                .collect();
            let world = doc.world_nodes(&valuation);
            let values = circuit.evaluate_all(&valuation).unwrap();
            for n in 0..doc.len() {
                assert_eq!(
                    values[gates[n].0],
                    world.contains(&NodeId(n)),
                    "node {n} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn parents_are_computed() {
        let doc = PrXmlDocument::figure1_example();
        let parents = doc.parents();
        let root = doc.root().unwrap();
        assert_eq!(parents[root.0], None);
        // Every non-root node has a parent in this document.
        let orphan_count = parents
            .iter()
            .enumerate()
            .filter(|(i, p)| p.is_none() && NodeId(*i) != root)
            .count();
        assert_eq!(orphan_count, 0);
    }

    #[test]
    fn detach_node_removes_the_subtree_from_worlds() {
        let mut doc = PrXmlDocument::figure1_example();
        let jane = doc.find_event("eJane").unwrap();
        let surname = NodeId(
            (0..doc.len())
                .find(|&n| doc.label(NodeId(n)) == "surname")
                .unwrap(),
        );
        assert!(doc.detach_node(surname).is_some());
        let world = doc.world_nodes(&BTreeMap::from([(jane, true)]));
        let labels: Vec<&str> = world.iter().map(|&n| doc.label(n)).collect();
        assert!(!labels.contains(&"surname"));
        assert!(!labels.contains(&"Manning"), "subtree goes with the node");
        assert!(labels.contains(&"place of birth"), "siblings survive");
        // The root cannot be detached; detached nodes cannot be re-detached.
        assert!(doc.detach_node(doc.root().unwrap()).is_none());
        assert!(doc.detach_node(surname).is_none());
    }

    #[test]
    fn ind_edge_variable_is_found_only_for_private_ind_edges() {
        let doc = PrXmlDocument::figure1_example();
        let occupation = NodeId(
            (0..doc.len())
                .find(|&n| doc.label(NodeId(n)) == "occupation")
                .unwrap(),
        );
        assert!(doc.ind_edge_variable(occupation).is_some());
        // cie edges over global events do not qualify.
        let surname = NodeId(
            (0..doc.len())
                .find(|&n| doc.label(NodeId(n)) == "surname")
                .unwrap(),
        );
        assert!(doc.ind_edge_variable(surname).is_none());
        // mux children share chain variables and do not qualify.
        let chelsea = NodeId(
            (0..doc.len())
                .find(|&n| doc.label(NodeId(n)) == "Chelsea")
                .unwrap(),
        );
        assert!(doc.ind_edge_variable(chelsea).is_none());
        // certain edges do not qualify.
        let given_name = NodeId(
            (0..doc.len())
                .find(|&n| doc.label(NodeId(n)) == "given name")
                .unwrap(),
        );
        assert!(doc.ind_edge_variable(given_name).is_none());
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn mux_over_unit_mass_panics() {
        let mut doc = PrXmlDocument::new();
        let root = doc.add_node("root");
        doc.set_root(root);
        let a = doc.add_node("a");
        let b = doc.add_node("b");
        doc.add_mux_children(root, &[(a, 0.8), (b, 0.4)]);
    }
}
