//! Crowd question selection: which event to ask about next.
//!
//! "From our current knowledge and our current estimation of the likely
//! answers, we must decide what is the next question that we should ask to
//! the crowd, to reduce our uncertainty on the final answer" (paper,
//! Section 4). The selector scores each candidate event by the *expected
//! entropy* of the target query after observing that event, and picks the
//! question minimising it (maximum expected information gain). A simulated
//! crowd oracle with configurable reliability closes the loop.

use crate::conditioning::ConditioningError;
use rand::Rng;
use stuc_circuit::circuit::{Circuit, VarId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;

/// Binary entropy (in bits) of a probability.
pub fn entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let term = |x: f64| {
        if x <= 0.0 || x >= 1.0 {
            0.0
        } else {
            -x * x.log2()
        }
    };
    term(p) + term(1.0 - p)
}

fn evaluate(circuit: &Circuit, weights: &Weights) -> Result<f64, ConditioningError> {
    match TreewidthWmc::default().probability(circuit, weights) {
        Ok(p) => Ok(p),
        Err(_) => DpllCounter::default()
            .probability(circuit, weights)
            .map_err(|e| ConditioningError::Probability(e.to_string())),
    }
}

/// Scores candidate questions (events to ask about) against a target query
/// lineage.
#[derive(Debug, Clone, Default)]
pub struct QuestionSelector;

/// The assessment of one candidate question.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionValue {
    /// The event the question would ask about.
    pub event: VarId,
    /// Probability that the answer is "true" under the current distribution.
    pub probability_true: f64,
    /// Expected entropy of the target query after observing the answer.
    pub expected_entropy: f64,
}

impl QuestionSelector {
    /// Evaluates every candidate event and returns them sorted by increasing
    /// expected posterior entropy (best question first).
    pub fn rank_questions(
        &self,
        query_lineage: &Circuit,
        weights: &Weights,
        candidates: &[VarId],
    ) -> Result<Vec<QuestionValue>, ConditioningError> {
        let mut values = Vec::with_capacity(candidates.len());
        for &event in candidates {
            let p_true = weights.get(event).ok_or_else(|| {
                ConditioningError::Probability(format!("{event} has no probability"))
            })?;
            let mut expected = 0.0;
            for value in [true, false] {
                let weight = if value { p_true } else { 1.0 - p_true };
                if weight == 0.0 {
                    continue;
                }
                let mut conditioned = weights.clone();
                conditioned.fix(event, value);
                let posterior = evaluate(query_lineage, &conditioned)?;
                expected += weight * entropy(posterior);
            }
            values.push(QuestionValue {
                event,
                probability_true: p_true,
                expected_entropy: expected,
            });
        }
        values.sort_by(|a, b| a.expected_entropy.total_cmp(&b.expected_entropy));
        Ok(values)
    }

    /// The single best question, if any candidate was given.
    pub fn best_question(
        &self,
        query_lineage: &Circuit,
        weights: &Weights,
        candidates: &[VarId],
    ) -> Result<Option<QuestionValue>, ConditioningError> {
        Ok(self
            .rank_questions(query_lineage, weights, candidates)?
            .into_iter()
            .next())
    }
}

/// A simulated crowd: answers questions about ground-truth event values,
/// lying with probability `1 - reliability`.
#[derive(Debug, Clone)]
pub struct CrowdOracle {
    /// The ground-truth valuation of the events.
    pub ground_truth: std::collections::BTreeMap<VarId, bool>,
    /// Probability that an answer is truthful.
    pub reliability: f64,
}

impl CrowdOracle {
    /// Creates a perfectly reliable oracle.
    pub fn perfect(ground_truth: std::collections::BTreeMap<VarId, bool>) -> Self {
        CrowdOracle {
            ground_truth,
            reliability: 1.0,
        }
    }

    /// Asks the oracle about an event; the answer is flipped with probability
    /// `1 - reliability` using the provided random source.
    pub fn ask(&self, event: VarId, rng: &mut impl Rng) -> bool {
        let truth = self.ground_truth.get(&event).copied().unwrap_or(false);
        if rng.random::<f64>() < self.reliability {
            truth
        } else {
            !truth
        }
    }
}

/// Runs the full iterative loop: repeatedly pick the most informative
/// question, ask the oracle, condition the weights on the answer, and stop
/// when the target query's entropy drops below `target_entropy` or the
/// budget is exhausted. Returns the sequence of asked events and the final
/// query probability.
pub fn interactive_conditioning(
    query_lineage: &Circuit,
    weights: &Weights,
    candidates: &[VarId],
    oracle: &CrowdOracle,
    target_entropy: f64,
    budget: usize,
    rng: &mut impl Rng,
) -> Result<(Vec<VarId>, f64), ConditioningError> {
    let selector = QuestionSelector;
    let mut current = weights.clone();
    let mut remaining: Vec<VarId> = candidates.to_vec();
    let mut asked = Vec::new();
    for _ in 0..budget {
        let p = evaluate(query_lineage, &current)?;
        if entropy(p) <= target_entropy || remaining.is_empty() {
            break;
        }
        let Some(best) = selector.best_question(query_lineage, &current, &remaining)? else {
            break;
        };
        let answer = oracle.ask(best.event, rng);
        current.fix(best.event, answer);
        remaining.retain(|&e| e != best.event);
        asked.push(best.event);
    }
    let final_probability = evaluate(query_lineage, &current)?;
    Ok((asked, final_probability))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    /// Query lineage: e0 AND e1 — e0 is near-certain, e1 is a coin flip, so
    /// asking about e1 is far more informative.
    fn and_lineage() -> (Circuit, Weights) {
        let mut c = Circuit::new();
        let a = c.add_input(VarId(0));
        let b = c.add_input(VarId(1));
        let and = c.add_and(vec![a, b]);
        c.set_output(and);
        let mut w = Weights::new();
        w.set(VarId(0), 0.95);
        w.set(VarId(1), 0.5);
        (c, w)
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(0.0), 0.0);
        assert_eq!(entropy(1.0), 0.0);
        assert!((entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(entropy(0.3) > 0.0 && entropy(0.3) < 1.0);
    }

    #[test]
    fn selector_prefers_the_uncertain_event() {
        let (lineage, weights) = and_lineage();
        let ranked = QuestionSelector
            .rank_questions(&lineage, &weights, &[VarId(0), VarId(1)])
            .unwrap();
        assert_eq!(
            ranked[0].event,
            VarId(1),
            "should ask about the coin flip first"
        );
        assert!(ranked[0].expected_entropy < ranked[1].expected_entropy);
    }

    #[test]
    fn perfect_oracle_resolves_uncertainty() {
        let (lineage, weights) = and_lineage();
        let oracle = CrowdOracle::perfect(BTreeMap::from([(VarId(0), true), (VarId(1), true)]));
        let mut rng = StdRng::seed_from_u64(1);
        let (asked, p) = interactive_conditioning(
            &lineage,
            &weights,
            &[VarId(0), VarId(1)],
            &oracle,
            0.05,
            10,
            &mut rng,
        )
        .unwrap();
        assert!(!asked.is_empty());
        assert!(p > 0.9, "query should be (nearly) resolved, got {p}");
    }

    #[test]
    fn oracle_with_zero_reliability_always_lies() {
        let oracle = CrowdOracle {
            ground_truth: BTreeMap::from([(VarId(0), true)]),
            reliability: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!oracle.ask(VarId(0), &mut rng));
    }

    #[test]
    fn budget_limits_questions() {
        let (lineage, weights) = and_lineage();
        let oracle = CrowdOracle::perfect(BTreeMap::from([(VarId(0), true), (VarId(1), true)]));
        let mut rng = StdRng::seed_from_u64(3);
        let (asked, _) = interactive_conditioning(
            &lineage,
            &weights,
            &[VarId(0), VarId(1)],
            &oracle,
            0.0,
            1,
            &mut rng,
        )
        .unwrap();
        assert_eq!(asked.len(), 1);
    }

    #[test]
    fn already_certain_queries_ask_nothing() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        c.set_output(t);
        let oracle = CrowdOracle::perfect(BTreeMap::new());
        let mut rng = StdRng::seed_from_u64(5);
        let (asked, p) =
            interactive_conditioning(&c, &Weights::new(), &[], &oracle, 0.1, 10, &mut rng).unwrap();
        assert!(asked.is_empty());
        assert_eq!(p, 1.0);
    }
}
