//! # stuc-cond — conditioning uncertain data and choosing what to ask
//!
//! The paper's Section 4: an uncertain instance is *conditioned* when new
//! observations force the outcome of some of its probabilistic events — for
//! instance because a human expert (or a crowd worker) was asked. Two
//! problems arise:
//!
//! 1. **Answer integration** ([`conditioning`]): revising the distribution.
//!    Conditioning on the value of an *event* is cheap (fix the event and
//!    renormalise, which for independent events is a no-op); conditioning on
//!    the presence of a *fact* requires conditioning on its arbitrary
//!    annotation, which is done by Bayes through the lineage back-ends and
//!    stays tractable exactly when the involved circuits do.
//! 2. **Question selection** ([`crowd`]): deciding what to ask next. The
//!    value of a candidate question is measured by the expected reduction in
//!    the uncertainty (entropy) of a target query; a simulated crowd oracle
//!    with configurable reliability closes the loop (experiment E11).

pub mod conditioning;
pub mod crowd;

pub use conditioning::{condition_on_event, conditioned_query_probability, ConditioningError};
pub use crowd::{CrowdOracle, QuestionSelector};
