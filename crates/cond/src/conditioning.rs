//! Conditioning pc-instances on observations.

use stuc_circuit::circuit::{Circuit, VarId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_data::cinstance::PcInstance;
use stuc_data::instance::FactId;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::lineage::cinstance_lineage;

stuc_errors::stuc_error! {
    /// Errors raised by conditioning.
    #[derive(Clone, PartialEq)]
    pub enum ConditioningError {
        /// The conditioning observation has probability zero.
        ImpossibleObservation,
        /// A probability computation failed.
        Probability(String),
    }
    display {
        Self::ImpossibleObservation => "the observation has probability zero",
        Self::Probability(e) => "probability computation failed: {e}",
    }
}

/// Evaluates a lineage circuit with the treewidth back-end, falling back to
/// DPLL when the decomposition is too wide.
fn evaluate(circuit: &Circuit, weights: &Weights) -> Result<f64, ConditioningError> {
    match TreewidthWmc::default().probability(circuit, weights) {
        Ok(p) => Ok(p),
        Err(_) => DpllCounter::default()
            .probability(circuit, weights)
            .map_err(|e| ConditioningError::Probability(e.to_string())),
    }
}

/// Conditions a pc-instance on the observed value of a named event.
///
/// Because the events of a pc-instance are independent, conditioning on one
/// of them simply fixes its probability to 0 or 1 — the cheap case the paper
/// contrasts with fact-level conditioning. The instance is modified in
/// place.
pub fn condition_on_event(pc: &mut PcInstance, event: VarId, value: bool) {
    pc.probabilities_mut().fix(event, value);
}

/// The probability of a Boolean query *given* that an observation circuit is
/// true: `P(query ∧ observation) / P(observation)`, computed through the
/// lineage back-ends (Bayes).
pub fn conditioned_probability(
    query_lineage: &Circuit,
    observation: &Circuit,
    weights: &Weights,
) -> Result<f64, ConditioningError> {
    let p_observation = evaluate(observation, weights)?;
    if p_observation <= 0.0 {
        return Err(ConditioningError::ImpossibleObservation);
    }
    // Conjoin the two circuits: import the observation into a copy of the
    // query lineage and AND the outputs.
    let mut joint = query_lineage.clone();
    let offset = joint.len();
    for (_, gate) in observation.iter() {
        use stuc_circuit::circuit::{Gate, GateId};
        let remapped = match gate {
            Gate::Input(v) => Gate::Input(*v),
            Gate::Const(b) => Gate::Const(*b),
            Gate::And(xs) => Gate::And(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
            Gate::Or(xs) => Gate::Or(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
            Gate::Not(x) => Gate::Not(GateId(x.0 + offset)),
        };
        // Reconstruct gates through the public API to keep invariants.
        match remapped {
            Gate::Input(v) => {
                joint.add_input(v);
            }
            Gate::Const(b) => {
                joint.add_const(b);
            }
            Gate::And(xs) => {
                joint.add_and(xs);
            }
            Gate::Or(xs) => {
                joint.add_or(xs);
            }
            Gate::Not(x) => {
                joint.add_not(x);
            }
        }
    }
    let query_output = query_lineage.output().expect("query lineage has an output");
    let observation_output = stuc_circuit::circuit::GateId(
        observation.output().expect("observation has an output").0 + offset,
    );
    let and = joint.add_and(vec![query_output, observation_output]);
    joint.set_output(and);
    let p_joint = evaluate(&joint, weights)?;
    Ok(p_joint / p_observation)
}

/// The probability of a Boolean conjunctive query on a pc-instance given the
/// observation that a specific fact is (or is not) present.
///
/// This is the expensive direction of conditioning the paper points out: the
/// observation is the fact's arbitrary annotation formula, so the whole
/// computation is Bayes over lineage circuits.
pub fn conditioned_query_probability(
    pc: &PcInstance,
    query: &ConjunctiveQuery,
    observed_fact: FactId,
    observed_present: bool,
) -> Result<f64, ConditioningError> {
    let query_lineage = cinstance_lineage(pc.cinstance(), query);
    let annotation = pc.cinstance().annotation(observed_fact);
    let mut observation = annotation.to_circuit();
    if !observed_present {
        let output = observation
            .output()
            .expect("annotation circuit has an output");
        let negated = observation.add_not(output);
        observation.set_output(negated);
    }
    conditioned_probability(&query_lineage, &observation, pc.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_data::cinstance::CInstance;
    use stuc_data::worlds;

    fn table1_pc(p_pods: f64, p_stoc: f64) -> PcInstance {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let mut w = Weights::new();
        w.set(pods, p_pods);
        w.set(stoc, p_stoc);
        ci.with_probabilities(w)
    }

    #[test]
    fn conditioning_on_event_fixes_probability() {
        let mut pc = table1_pc(0.8, 0.3);
        let pods = pc.cinstance().events().find("pods").unwrap();
        condition_on_event(&mut pc, pods, true);
        assert_eq!(pc.probabilities().get(pods), Some(1.0));
        // The query "some trip to Melbourne exists" is now certain.
        let q = ConjunctiveQuery::parse("Trip(x, \"Melbourne_MEL\")").unwrap();
        let lineage = cinstance_lineage(pc.cinstance(), &q);
        let p = TreewidthWmc::default()
            .probability(&lineage, pc.probabilities())
            .unwrap();
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fact_conditioning_matches_bayes_by_enumeration() {
        let pc = table1_pc(0.8, 0.3);
        // Observe that the Melbourne → Paris return trip is booked
        // (annotation pods ∧ ¬stoc); ask for the probability that some trip
        // to Portland exists — which is then impossible (stoc is false).
        let q = ConjunctiveQuery::parse("Trip(x, \"Portland_PDX\")").unwrap();
        let p = conditioned_query_probability(&pc, &q, FactId(1), true).unwrap();
        assert!(p.abs() < 1e-9, "got {p}");

        // Observe the same fact absent; compute the same conditional by
        // brute-force Bayes over worlds as a cross-check.
        let p = conditioned_query_probability(&pc, &q, FactId(1), false).unwrap();
        let pdx = pc.instance().find_constant("Portland_PDX").unwrap();
        let joint = worlds::query_probability(&pc, |facts| {
            let observation_absent = !facts.contains(&FactId(1));
            let query_holds = facts
                .iter()
                .any(|&f| pc.instance().fact(f).args.get(1) == Some(&pdx));
            observation_absent && query_holds
        })
        .unwrap();
        let evidence = worlds::query_probability(&pc, |facts| !facts.contains(&FactId(1))).unwrap();
        assert!(
            (p - joint / evidence).abs() < 1e-9,
            "{p} vs {}",
            joint / evidence
        );
    }

    #[test]
    fn impossible_observation_is_reported() {
        let pc = table1_pc(0.0, 0.3);
        // Observing the CDG → MEL trip (annotation pods) is impossible.
        let q = ConjunctiveQuery::parse("Trip(x, y)").unwrap();
        assert_eq!(
            conditioned_query_probability(&pc, &q, FactId(0), true),
            Err(ConditioningError::ImpossibleObservation)
        );
    }

    #[test]
    fn conditioning_on_true_observation_is_identity() {
        let pc = table1_pc(0.6, 0.4);
        let q = ConjunctiveQuery::parse("Trip(x, \"Melbourne_MEL\")").unwrap();
        let lineage = cinstance_lineage(pc.cinstance(), &q);
        let mut tautology = Circuit::new();
        let t = tautology.add_const(true);
        tautology.set_output(t);
        let conditional =
            conditioned_probability(&lineage, &tautology, pc.probabilities()).unwrap();
        let unconditional = TreewidthWmc::default()
            .probability(&lineage, pc.probabilities())
            .unwrap();
        assert!((conditional - unconditional).abs() < 1e-9);
    }
}
