//! Zero-dependency observability for the stuc engine and query service.
//!
//! Three cooperating layers, all std-only so every workspace crate can use
//! them without cycles:
//!
//! * [`metrics`] — a process-global registry of atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket latency [`Histogram`]s. Registration takes a
//!   lock once; the handles returned are plain atomics, so the hot path never
//!   blocks. The whole registry renders to Prometheus text exposition format.
//! * [`trace`] — a structured span tracer: a thread-local span stack over a
//!   monotonic clock feeding a bounded ring buffer of finished spans,
//!   exportable as Chrome trace-event JSON (`chrome://tracing`). Disabled by
//!   default; a disabled [`trace::span`] is one relaxed atomic load.
//! * [`timer`] — [`Stopwatch`] and [`StageRecorder`]: one monotonic clock per
//!   operation from which both the wall time and the per-stage breakdown
//!   ([`StageTimings`]) are derived, so the two can never disagree.
//!
//! [`slowlog`] adds a threshold-gated, ring-buffered log of slow operations
//! on top, served by `stuc-serve` under `GET /debug/slow`, and [`profile`]
//! adds a sampling wall-clock profiler: the span RAII mirrors the current
//! stack into a lock-free per-thread shadow, and a background [`Sampler`]
//! aggregates snapshots into collapsed-stack flamegraph text.

pub mod metrics;
pub mod profile;
pub mod slowlog;
pub mod timer;
pub mod trace;

pub use metrics::{registry, Counter, Gauge, Histogram, MetricReading, MetricValue, Registry};
pub use profile::{ProfileReport, Sampler};
pub use slowlog::{SlowEntry, SlowLog};
pub use timer::{next_trace_id, Stage, StageRecorder, StageTimings, Stopwatch};
pub use trace::SpanGuard;
