//! Threshold-gated, ring-buffered log of slow operations.
//!
//! Instrumented call sites report every operation's wall time via
//! [`SlowLog::note`]; only operations at or above the configurable threshold
//! are retained (newest [`DEFAULT_CAPACITY`] of them). The detail string is
//! built lazily so the fast path pays one atomic load and a comparison.
//!
//! Failed evaluations — deadline-exceeded, cancelled, or panicked — are
//! outliers regardless of how fast they died, so [`SlowLog::note_failure`]
//! bypasses the threshold and always retains, tagging the entry with its
//! [`SlowEntry::outcome`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Entries retained by the global slow log.
pub const DEFAULT_CAPACITY: usize = 128;

/// Default slow threshold: operations at or above this are logged.
pub const DEFAULT_THRESHOLD: Duration = Duration::from_millis(100);

/// One retained slow operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Monotonic sequence number (process-wide, starts at 1).
    pub seq: u64,
    /// The operation (an engine entry point or serve endpoint).
    pub what: &'static str,
    /// Call-site detail (query text, backend, gate counts…).
    pub detail: String,
    /// Observed wall time.
    pub wall: Duration,
    /// Trace id of the operation, 0 if none was assigned.
    pub trace_id: u64,
    /// How the operation ended: `"slow"` for threshold-retained successes,
    /// or a failure kind (`"deadline-exceeded"`, `"cancelled"`, `"panic"`)
    /// for entries retained by [`SlowLog::note_failure`].
    pub outcome: &'static str,
}

/// The ring buffer plus its threshold. See the module docs.
#[derive(Debug)]
pub struct SlowLog {
    threshold_nanos: AtomicU64,
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A fresh log with the given threshold and capacity.
    pub fn new(threshold: Duration, capacity: usize) -> Self {
        SlowLog {
            threshold_nanos: AtomicU64::new(duration_nanos(threshold)),
            seq: AtomicU64::new(1),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Current threshold.
    pub fn threshold(&self) -> Duration {
        Duration::from_nanos(self.threshold_nanos.load(Ordering::Relaxed))
    }

    /// Change the threshold; applies to subsequent [`SlowLog::note`] calls.
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_nanos
            .store(duration_nanos(threshold), Ordering::Relaxed);
    }

    /// Report an operation; it is retained only if `wall` reaches the
    /// threshold. Returns whether it was retained. `detail` is only
    /// invoked for retained entries.
    pub fn note(
        &self,
        what: &'static str,
        wall: Duration,
        trace_id: u64,
        detail: impl FnOnce() -> String,
    ) -> bool {
        if duration_nanos(wall) < self.threshold_nanos.load(Ordering::Relaxed) {
            return false;
        }
        self.retain(what, "slow", wall, trace_id, detail());
        true
    }

    /// Report a *failed* operation (deadline exceeded, cancelled,
    /// panicked…). Always retained, regardless of the threshold — a fault
    /// that killed an evaluation in a microsecond is still an outlier.
    /// `outcome` names the failure kind; put the stage it died in (and any
    /// query context) in `detail`.
    pub fn note_failure(
        &self,
        what: &'static str,
        outcome: &'static str,
        wall: Duration,
        trace_id: u64,
        detail: impl FnOnce() -> String,
    ) {
        self.retain(what, outcome, wall, trace_id, detail());
    }

    fn retain(
        &self,
        what: &'static str,
        outcome: &'static str,
        wall: Duration,
        trace_id: u64,
        detail: String,
    ) {
        let entry = SlowEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            what,
            detail,
            wall,
            trace_id,
            outcome,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Discard all retained entries.
    pub fn clear(&self) {
        self.ring.lock().unwrap().clear();
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The process-global slow log (engine entry points and `stuc-serve`
/// report into it; `GET /debug/slow` reads it).
pub fn global() -> &'static SlowLog {
    static GLOBAL: OnceLock<SlowLog> = OnceLock::new();
    GLOBAL.get_or_init(|| SlowLog::new(DEFAULT_THRESHOLD, DEFAULT_CAPACITY))
}
