//! One monotonic clock per operation.
//!
//! Reports used to call `Instant::now()` independently for the wall time and
//! for any finer-grained timing, which let the two drift apart. Here a single
//! [`Stopwatch`] is started once; the wall time and every stage lap are reads
//! of that same clock, so `wall_time >= sum(stages)` holds by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::trace;

/// A started monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start the clock.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The underlying start instant.
    pub fn started_at(&self) -> Instant {
        self.started
    }
}

/// One named, timed pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Stage name; a fixed vocabulary of literals (`"parse"`, `"sweep"`, …).
    pub name: &'static str,
    /// Time spent in the stage (summed if recorded more than once).
    pub duration: Duration,
}

/// Per-stage timing breakdown of one operation, in first-recorded order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageTimings {
    stages: Vec<Stage>,
}

impl StageTimings {
    /// No stages recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The recorded stages, in first-recorded order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Time recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration)
    }

    /// Sum of all stage durations (at most the operation's wall time).
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Add `duration` under `name`, summing with any prior lap of the
    /// same stage.
    pub fn record(&mut self, name: &'static str, duration: Duration) {
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(stage) => stage.duration += duration,
            None => self.stages.push(Stage { name, duration }),
        }
    }

    /// Fold another breakdown into this one, stage by stage.
    pub fn merge(&mut self, other: &StageTimings) {
        for stage in &other.stages {
            self.record(stage.name, stage.duration);
        }
    }
}

/// A [`Stopwatch`] plus a lap cursor: `mark(name)` closes the stage that
/// began at the previous mark (or at start) and attributes the lap to
/// `name`. Marks also emit tracer spans when tracing is enabled, so the
/// chrome trace shows the same stages the report does.
#[derive(Debug)]
pub struct StageRecorder {
    watch: Stopwatch,
    cursor: Duration,
    timings: StageTimings,
}

impl Default for StageRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StageRecorder {
    /// Start the clock with no stages recorded.
    pub fn new() -> Self {
        StageRecorder {
            watch: Stopwatch::start(),
            cursor: Duration::ZERO,
            timings: StageTimings::default(),
        }
    }

    /// The shared clock (use it for the report's wall time).
    pub fn watch(&self) -> Stopwatch {
        self.watch
    }

    /// Total elapsed time on the shared clock.
    pub fn elapsed(&self) -> Duration {
        self.watch.elapsed()
    }

    /// Close the stage running since the previous mark, attributing its
    /// lap to `name`.
    pub fn mark(&mut self, name: &'static str) {
        let now = self.watch.elapsed();
        let lap = now.saturating_sub(self.cursor);
        self.cursor = now;
        self.timings.record(name, lap);
        trace::record_complete(name, self.watch.started_at() + (now - lap), lap);
    }

    /// Advance the cursor without attributing the lap to any stage
    /// (bookkeeping gaps that should not show up in the breakdown).
    pub fn skip(&mut self) {
        self.cursor = self.watch.elapsed();
    }

    /// Fold a nested breakdown (e.g. from a sub-evaluation's report) into
    /// this one without moving the cursor.
    pub fn absorb(&mut self, other: &StageTimings) {
        self.timings.merge(other);
        self.cursor = self.watch.elapsed();
    }

    /// The breakdown so far.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// Finish, returning the breakdown.
    pub fn finish(self) -> StageTimings {
        self.timings
    }
}

/// Next value of the process-wide trace-id sequence (starts at 1).
///
/// Trace ids correlate a query response with the slow-query log; they are
/// unique within a process, not globally.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}
