//! Structured span tracer: thread-local span stack, monotonic-clock timing,
//! bounded ring buffer of finished spans, Chrome trace-event JSON export.
//!
//! Tracing is off by default. A disabled [`span`] costs one relaxed atomic
//! load and constructs an inert guard — cheap enough to leave on every hot
//! path. When enabled, opening a span bumps a thread-local depth counter and
//! reads the clock; closing (guard drop) reads it again and pushes one
//! [`SpanEvent`] into a global ring buffer capped at
//! [`EVENT_CAPACITY`] events (oldest dropped first).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum finished spans retained; older events are dropped first.
pub const EVENT_CAPACITY: usize = 16384;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the tracer on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is the tracer currently recording?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The instant all span timestamps are measured from (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small, monotonically assigned ids: thread 1 is the first thread that
/// ever recorded a span. (`std::thread::ThreadId` has no stable u64 view.)
fn current_thread_id() -> u64 {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a static literal at every call site).
    pub name: &'static str,
    /// Tracer-assigned id of the recording thread.
    pub thread_id: u64,
    /// Start, in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration, in microseconds.
    pub dur_us: u64,
    /// Nesting depth at open time (0 = top level on that thread).
    pub depth: u32,
}

fn events() -> &'static Mutex<VecDeque<SpanEvent>> {
    static EVENTS: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn push_event(event: SpanEvent) {
    let mut ring = events().lock().unwrap();
    if ring.len() == EVENT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// Closes its span on drop. Inert (a no-op to drop) when the tracer was
/// disabled at open time, so toggling mid-span never unbalances the stack.
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    name: &'static str,
    /// `Some` only if this guard bumped the depth counter and must record.
    opened: Option<Instant>,
    depth: u32,
    /// Whether this guard pushed a frame onto the profiler's shadow stack
    /// (and therefore owes a pop), decided at open time so toggling the
    /// profiler mid-span never unbalances the stack.
    profiled: bool,
}

/// Open a named span; the returned guard closes it when dropped.
pub fn span(name: &'static str) -> SpanGuard {
    let profiled = crate::profile::on_span_open(name);
    if !enabled() {
        return SpanGuard {
            name,
            opened: None,
            depth: 0,
            profiled,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        opened: Some(Instant::now()),
        depth,
        profiled,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::on_span_close();
        }
        let Some(opened) = self.opened else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let start = opened.saturating_duration_since(epoch());
        push_event(SpanEvent {
            name: self.name,
            thread_id: current_thread_id(),
            start_us: start.as_micros() as u64,
            dur_us: opened.elapsed().as_micros() as u64,
            depth: self.depth,
        });
    }
}

/// Record an already-measured span (used by
/// [`StageRecorder::mark`](crate::timer::StageRecorder::mark), whose laps
/// are timed by the recorder's own clock). No-op when disabled.
pub fn record_complete(name: &'static str, started: Instant, dur: Duration) {
    if !enabled() {
        return;
    }
    let start = started.saturating_duration_since(epoch());
    push_event(SpanEvent {
        name,
        thread_id: current_thread_id(),
        start_us: start.as_micros() as u64,
        dur_us: dur.as_micros() as u64,
        depth: DEPTH.with(|d| d.get()),
    });
}

/// Current nesting depth on this thread (for tests and diagnostics).
pub fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

/// Copy the ring buffer without draining it.
pub fn snapshot_events() -> Vec<SpanEvent> {
    events().lock().unwrap().iter().cloned().collect()
}

/// Drain the ring buffer.
pub fn drain_events() -> Vec<SpanEvent> {
    events().lock().unwrap().drain(..).collect()
}

/// Discard all buffered events.
pub fn clear_events() {
    events().lock().unwrap().clear();
}

/// Render events as Chrome trace-event JSON, loadable in `chrome://tracing`
/// or Perfetto ("X" complete events, microsecond timestamps).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"stuc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            ev.name, ev.start_us, ev.dur_us, ev.thread_id
        );
    }
    out.push_str("]}");
    out
}
