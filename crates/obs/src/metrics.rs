//! Process-global, lock-free-on-the-hot-path metrics registry.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a write lock on a
//! name-sorted map and returns an `Arc` handle; callers resolve their handles
//! once (engine build, server spawn) and afterwards every update is a single
//! relaxed atomic operation. Rendering walks the sorted map, so the
//! Prometheus text output has a deterministic line order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, cache entry counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over seconds, with quantile readout.
///
/// Bucket upper bounds are fixed at construction (the default ladder doubles
/// from 1µs to ~16.8s), so observation is two relaxed increments plus an
/// addition — no allocation, no lock. Quantiles interpolate linearly inside
/// the bucket holding the requested rank, which bounds the error by the
/// bucket width (a factor of two on the default ladder).
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing finite upper bounds, in seconds.
    bounds: Vec<f64>,
    /// One slot per bound plus a final overflow (+Inf) slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// The default latency ladder: 25 buckets doubling from 1µs to ~16.8s.
    pub fn latency_bounds() -> Vec<f64> {
        (0..25).map(|i| 1e-6 * f64::from(1u32 << i)).collect()
    }

    /// A histogram over the default latency ladder.
    pub fn latency() -> Self {
        Self::with_bounds(Self::latency_bounds())
    }

    /// A histogram with explicit upper bounds (must be strictly increasing).
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_seconds(d.as_secs_f64());
    }

    /// Record one value, in seconds.
    pub fn observe_seconds(&self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = self.bounds.partition_point(|b| *b < secs);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// `(upper_bound, cumulative_count)` per bucket; the last entry is
    /// `(+Inf, total)`. Cumulative, matching Prometheus `_bucket{le=...}`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            cum += slot.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in seconds.
    ///
    /// Returns 0.0 on an empty histogram. Values landing in the overflow
    /// bucket report the highest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).max(1.0);
        let mut cum = 0u64;
        for (i, slot) in self.buckets.iter().enumerate() {
            let here = slot.load(Ordering::Relaxed);
            if (cum + here) as f64 >= target && here > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(b) => *b,
                    // Overflow bucket: no finite upper edge to interpolate
                    // toward, so report the last finite bound.
                    None => return self.bounds.last().copied().unwrap_or(0.0),
                };
                let into = (target - cum as f64) / here as f64;
                return lower + (upper - lower) * into;
            }
            cum += here;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    help: String,
    metric: Metric,
}

/// A read of one registered metric, for programmatic consumers
/// (REPL `:stats`, the richer `/stats` endpoint, tests).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    /// Registered metric name.
    pub name: String,
    /// Registered help text.
    pub help: String,
    /// The value at snapshot time.
    pub reading: MetricReading,
}

/// The value part of a [`MetricValue`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricReading {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations in seconds.
        sum_seconds: f64,
        /// Estimated median.
        p50: f64,
        /// Estimated 90th percentile.
        p90: f64,
        /// Estimated 99th percentile.
        p99: f64,
    },
}

/// Name-sorted collection of metrics; see the module docs for the
/// locking discipline.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, Registered>>,
}

impl Registry {
    /// An empty registry. Most callers want the process-global
    /// [`registry()`] instead.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(name, help, || Metric::Counter(Arc::new(Counter::new())))
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(name, help, || Metric::Gauge(Arc::new(Gauge::new())))
    }

    /// Get or create the histogram `name` over the default latency ladder.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register(name, help, || {
            Metric::Histogram(Arc::new(Histogram::latency()))
        })
    }

    fn register<T: RegisteredKind>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Arc<T> {
        debug_assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name {name:?}"
        );
        if let Some(found) = T::extract(self.inner.read().unwrap().get(name)) {
            return found;
        }
        let mut map = self.inner.write().unwrap();
        let entry: &Registered = map.entry(name.to_string()).or_insert_with(|| Registered {
            help: help.to_string(),
            metric: make(),
        });
        T::extract(Some(entry)).unwrap_or_else(|| {
            panic!(
                "metric {name:?} already registered as a {}",
                entry.metric.kind()
            )
        })
    }

    /// Read every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricValue> {
        let map = self.inner.read().unwrap();
        map.iter()
            .map(|(name, reg)| MetricValue {
                name: name.clone(),
                help: reg.help.clone(),
                reading: match &reg.metric {
                    Metric::Counter(c) => MetricReading::Counter(c.get()),
                    Metric::Gauge(g) => MetricReading::Gauge(g.get()),
                    Metric::Histogram(h) => MetricReading::Histogram {
                        count: h.count(),
                        sum_seconds: h.sum_seconds(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                    },
                },
            })
            .collect()
    }

    /// Render every metric in Prometheus text exposition format,
    /// name-sorted (hence deterministic up to the values themselves).
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.read().unwrap();
        let mut out = String::new();
        for (name, reg) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {}", reg.help);
            let _ = writeln!(out, "# TYPE {name} {}", reg.metric.kind());
            match &reg.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format!("{bound}")
                        };
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum_seconds());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// Internal: ties each handle type to its `Metric` variant so `register`
/// can be generic over the three kinds.
trait RegisteredKind: Sized {
    fn extract(reg: Option<&Registered>) -> Option<Arc<Self>>;
}

impl RegisteredKind for Counter {
    fn extract(reg: Option<&Registered>) -> Option<Arc<Self>> {
        match reg {
            Some(Registered {
                metric: Metric::Counter(c),
                ..
            }) => Some(Arc::clone(c)),
            _ => None,
        }
    }
}

impl RegisteredKind for Gauge {
    fn extract(reg: Option<&Registered>) -> Option<Arc<Self>> {
        match reg {
            Some(Registered {
                metric: Metric::Gauge(g),
                ..
            }) => Some(Arc::clone(g)),
            _ => None,
        }
    }
}

impl RegisteredKind for Histogram {
    fn extract(reg: Option<&Registered>) -> Option<Arc<Self>> {
        match reg {
            Some(Registered {
                metric: Metric::Histogram(h),
                ..
            }) => Some(Arc::clone(h)),
            _ => None,
        }
    }
}

/// The process-global registry backing `/metrics`, `:stats` and every
/// instrumented subsystem.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
