//! Sampling wall-clock profiler: a lock-free per-thread shadow of the span
//! stack, a background sampler thread, and collapsed-stack ("flamegraph")
//! aggregation — zero dependencies, like the rest of this crate.
//!
//! # Design
//!
//! The tracer in [`crate::trace`] already brackets every interesting region
//! with a RAII span guard. Profiling piggybacks on those call sites: when
//! profiling is enabled, opening a span pushes one frame onto this module's
//! [`SpanStack`] — a fixed-depth array the owning thread writes and the
//! sampler thread reads without any lock. Closing the span pops it.
//!
//! A frame is a single `AtomicU32` holding an *intern id* rather than the
//! `&'static str` itself: a `&str` is a two-word fat pointer and cannot be
//! read atomically, so a concurrent sampler could observe the pointer of one
//! name with the length of another. Interning reduces each frame to one
//! word; the id-to-name table only ever grows, so a sampled id is always
//! valid (or zero, meaning "slot not yet written", which the sampler
//! skips). The intern fast path is a thread-local pointer-keyed cache — no
//! lock is taken after the first time a thread sees a given name.
//!
//! The sampler ([`Sampler::start`]) wakes `hz` times per second, snapshots
//! every registered thread's stack, and counts identical stacks in a map.
//! Reads are racy by design: a sample taken mid-push may see a stale or
//! half-updated stack. For a statistical profiler that is one possibly
//! misattributed sample, not a correctness problem — every observable value
//! is a previously published id or zero.
//!
//! # Overhead policy
//!
//! Disabled (the default), a span costs one extra relaxed atomic load.
//! Enabled, a push is a cache lookup plus two relaxed stores and one
//! release store; a pop is one release store. The release bar in
//! `perf_smoke` asserts the whole arrangement stays within 5% of the
//! profiler-off baseline on the warm a2 sweep.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Deepest span nesting the shadow stack records; deeper frames are
/// truncated (the stack still balances — only the snapshot is capped).
pub const MAX_DEPTH: usize = 32;

/// Default sampling frequency, in samples per second per thread.
pub const DEFAULT_HZ: u32 = 99;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn shadow-stack writes on or off process-wide. The sampler only sees
/// stacks recorded while this was on; [`Sampler::start`] enables it
/// automatically for the sampling window.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Are span open/close events currently mirrored to the shadow stacks?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static CONFIGURED_HZ: AtomicU32 = AtomicU32::new(DEFAULT_HZ);

/// Set the process-wide default sampling rate (what `stuc-serve
/// --profile-hz N` configures; `GET /debug/profile` uses it when the
/// request names no `hz=`). Zero is coerced to [`DEFAULT_HZ`].
pub fn set_default_hz(hz: u32) {
    CONFIGURED_HZ.store(if hz == 0 { DEFAULT_HZ } else { hz }, Ordering::Relaxed);
}

/// The process-wide default sampling rate ([`DEFAULT_HZ`] unless
/// [`set_default_hz`] changed it).
pub fn default_hz() -> u32 {
    CONFIGURED_HZ.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Pointer-keyed cache: the same `&'static str` literal has a stable
    /// address, so after the first lookup a thread never locks again.
    static NAME_CACHE: RefCell<HashMap<usize, u32>> = RefCell::new(HashMap::new());
}

/// Intern a span name, returning its 1-based id (0 is reserved for "empty
/// frame slot").
fn intern(name: &'static str) -> u32 {
    NAME_CACHE.with(|cache| {
        let key = name.as_ptr() as usize;
        if let Some(&id) = cache.borrow().get(&key) {
            return id;
        }
        let mut table = names().lock().unwrap();
        // Dedupe by content so equal names from different call sites merge
        // in the flamegraph.
        let id = match table.iter().position(|&n| n == name) {
            Some(pos) => (pos + 1) as u32,
            None => {
                table.push(name);
                table.len() as u32
            }
        };
        drop(table);
        cache.borrow_mut().insert(key, id);
        id
    })
}

/// Resolve an intern id back to its name (sampler side).
fn resolve(id: u32) -> Option<&'static str> {
    let table = names().lock().unwrap();
    table.get((id as usize).checked_sub(1)?).copied()
}

// ---------------------------------------------------------------------------
// Per-thread shadow stacks
// ---------------------------------------------------------------------------

/// Lock-free shadow of one thread's span stack: `depth` frames of intern
/// ids, written only by the owning thread, read by the sampler.
pub struct SpanStack {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl SpanStack {
    fn new() -> Self {
        Self {
            depth: AtomicUsize::new(0),
            frames: [const { AtomicU32::new(0) }; MAX_DEPTH],
        }
    }

    fn push(&self, id: u32) {
        let depth = self.depth.load(Ordering::Relaxed);
        if depth < MAX_DEPTH {
            self.frames[depth].store(id, Ordering::Relaxed);
        }
        // Publish the frame before the new depth becomes visible.
        self.depth.store(depth + 1, Ordering::Release);
    }

    fn pop(&self) {
        let depth = self.depth.load(Ordering::Relaxed);
        self.depth.store(depth.saturating_sub(1), Ordering::Release);
    }

    /// Snapshot the current stack as intern ids, shallowest first. Empty
    /// when the thread is idle (no open span).
    fn snapshot(&self) -> Vec<u32> {
        let depth = self.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        let mut ids = Vec::with_capacity(depth);
        for frame in &self.frames[..depth] {
            let id = frame.load(Ordering::Relaxed);
            if id != 0 {
                ids.push(id);
            }
        }
        ids
    }
}

fn registry() -> &'static Mutex<Vec<Weak<SpanStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<SpanStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static STACK: Arc<SpanStack> = {
        let stack = Arc::new(SpanStack::new());
        let mut threads = registry().lock().unwrap();
        threads.retain(|weak| weak.strong_count() > 0);
        threads.push(Arc::downgrade(&stack));
        stack
    };
}

/// Mirror a span open onto this thread's shadow stack. Called by the span
/// RAII in [`crate::trace`]; returns `true` when a matching
/// [`on_span_close`] is owed (so toggling mid-span never unbalances).
pub(crate) fn on_span_open(name: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let id = intern(name);
    STACK.with(|stack| stack.push(id));
    true
}

/// Mirror a span close; pairs with a `true` return from [`on_span_open`].
pub(crate) fn on_span_close() {
    STACK.with(|stack| stack.pop());
}

/// Number of live registered thread stacks (diagnostics and tests).
pub fn registered_threads() -> usize {
    let mut threads = registry().lock().unwrap();
    threads.retain(|weak| weak.strong_count() > 0);
    threads.len()
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Aggregated result of one sampling window.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Collapsed stacks (`"outer;inner"`) to sample counts, sorted by
    /// stack text — deterministic given the same sample multiset.
    pub stacks: BTreeMap<String, u64>,
    /// Per-thread snapshots taken, including idle (empty-stack) ones.
    pub total_samples: u64,
    /// Snapshots that found no open span on the thread.
    pub idle_samples: u64,
    /// Configured sampling frequency.
    pub hz: u32,
    /// Wall-clock length of the window.
    pub duration: Duration,
}

impl ProfileReport {
    /// Render in collapsed-stack format: one `stack count` line per
    /// distinct stack, sorted, ready for `flamegraph.pl` / speedscope /
    /// inferno. Idle samples are summarised in a trailing comment line so
    /// the busy fraction can be read off the text alone.
    pub fn flamegraph_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            let _ = writeln!(out, "{stack} {count}");
        }
        let _ = writeln!(
            out,
            "# {} samples over {:?} at {} Hz ({} idle)",
            self.total_samples, self.duration, self.hz, self.idle_samples
        );
        out
    }
}

struct SamplerShared {
    stop: AtomicBool,
    counts: Mutex<HashMap<Vec<u32>, u64>>,
    total: AtomicUsize,
    idle: AtomicUsize,
}

/// A running background sampler. Stops (and restores the previous
/// enabled-state) on [`Sampler::stop`] or drop.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<std::thread::JoinHandle<()>>,
    started: Instant,
    hz: u32,
    was_enabled: bool,
}

impl Sampler {
    /// Spawn the background sampler thread at `hz` samples per second
    /// (clamped to 1..=1000). Shadow-stack writes are enabled for the
    /// lifetime of the sampler and restored to their prior state on stop.
    pub fn start(hz: u32) -> Self {
        let hz = hz.clamp(1, 1000);
        let was_enabled = enabled();
        set_enabled(true);
        let shared = Arc::new(SamplerShared {
            stop: AtomicBool::new(false),
            counts: Mutex::new(HashMap::new()),
            total: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
        });
        let worker = Arc::clone(&shared);
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        let handle = std::thread::Builder::new()
            .name("stuc-profiler".into())
            .spawn(move || {
                while !worker.stop.load(Ordering::Relaxed) {
                    let stacks: Vec<Arc<SpanStack>> = {
                        let mut threads = registry().lock().unwrap();
                        threads.retain(|weak| weak.strong_count() > 0);
                        threads.iter().filter_map(Weak::upgrade).collect()
                    };
                    let mut counts = worker.counts.lock().unwrap();
                    for stack in stacks {
                        let ids = stack.snapshot();
                        worker.total.fetch_add(1, Ordering::Relaxed);
                        if ids.is_empty() {
                            worker.idle.fetch_add(1, Ordering::Relaxed);
                        } else {
                            *counts.entry(ids).or_insert(0) += 1;
                        }
                    }
                    drop(counts);
                    std::thread::sleep(period);
                }
            })
            .expect("spawn stuc-profiler thread");
        Self {
            shared,
            handle: Some(handle),
            started: Instant::now(),
            hz,
            was_enabled,
        }
    }

    /// Aggregate what has been collected so far without stopping.
    pub fn snapshot(&self) -> ProfileReport {
        let counts = self.shared.counts.lock().unwrap();
        let mut stacks = BTreeMap::new();
        for (ids, count) in counts.iter() {
            let text: Vec<&str> = ids.iter().map(|&id| resolve(id).unwrap_or("?")).collect();
            *stacks.entry(text.join(";")).or_insert(0) += count;
        }
        ProfileReport {
            stacks,
            total_samples: self.shared.total.load(Ordering::Relaxed) as u64,
            idle_samples: self.shared.idle.load(Ordering::Relaxed) as u64,
            hz: self.hz,
            duration: self.started.elapsed(),
        }
    }

    /// Stop the sampler thread and return the final aggregate.
    pub fn stop(mut self) -> ProfileReport {
        self.halt();
        self.snapshot()
    }

    fn halt(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        set_enabled(self.was_enabled);
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.halt();
        }
    }
}

/// Convenience: sample for `duration` at `hz` and return the aggregate.
/// Blocks the calling thread for the window.
pub fn sample_for(duration: Duration, hz: u32) -> ProfileReport {
    let sampler = Sampler::start(hz);
    std::thread::sleep(duration);
    sampler.stop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    /// The profiler state is process-global; tests that enable it
    /// serialize on this lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn interning_dedupes_by_content_and_is_stable() {
        let a = intern("profile-test-alpha");
        let b = intern("profile-test-beta");
        let a2 = intern("profile-test-alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(resolve(a), Some("profile-test-alpha"));
        assert_eq!(resolve(0), None);
    }

    #[test]
    fn shadow_stack_balances_and_truncates_past_max_depth() {
        let stack = SpanStack::new();
        for _ in 0..(MAX_DEPTH + 4) {
            stack.push(intern("deep"));
        }
        assert_eq!(stack.snapshot().len(), MAX_DEPTH);
        for _ in 0..(MAX_DEPTH + 4) {
            stack.pop();
        }
        assert!(stack.snapshot().is_empty());
        // Popping an already-empty stack saturates instead of wrapping.
        stack.pop();
        assert!(stack.snapshot().is_empty());
    }

    #[test]
    fn sampler_sees_a_busy_thread_and_renders_collapsed_text() {
        let _guard = test_lock();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_worker = Arc::clone(&stop);
        let sampler = Sampler::start(500);
        let busy = std::thread::spawn(move || {
            let _outer = trace::span("profile-busy-outer");
            let _inner = trace::span("profile-busy-inner");
            while !stop_worker.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::Relaxed);
        busy.join().unwrap();
        let report = sampler.stop();
        assert!(report.total_samples > 0);
        let key = "profile-busy-outer;profile-busy-inner";
        assert!(
            report.stacks.contains_key(key),
            "expected stack {key:?} in {:?}",
            report.stacks
        );
        let text = report.flamegraph_collapsed();
        assert!(text.contains(key));
        assert!(text.lines().last().unwrap().starts_with("# "));
    }

    #[test]
    fn sampler_restores_the_previous_enabled_state() {
        let _guard = test_lock();
        set_enabled(false);
        let sampler = Sampler::start(100);
        assert!(enabled());
        let _ = sampler.stop();
        assert!(!enabled());
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        assert!(!on_span_open("profile-disabled"));
        let report = {
            // Zero-length window: start and stop immediately; no thread in
            // this test opens a span while enabled.
            let sampler = Sampler::start(1000);
            std::thread::sleep(Duration::from_millis(20));
            sampler.stop()
        };
        assert!(!report.stacks.keys().any(|k| k.contains("profile-disabled")));
    }
}
